//! Differential proof that the scheduling-template cache is behaviorally
//! invisible.
//!
//! The cache (`swift_scheduler::TemplateCache`) memoizes control-plane
//! decisions — graphlet partition, gang-layout skeleton, shuffle-scheme
//! priors — keyed by canonical DAG shape, and instantiates them per job by
//! parameter patching. It is a pure *cost* optimization: a cached plan must
//! be indistinguishable from one computed from scratch. This suite pins
//! that contract from the outside:
//!
//! * every registry scenario, across three seeds, produces a byte-identical
//!   [`RunReport`] digest and a byte-identical event trace with the cache
//!   on and off (template bookkeeping events excluded — they only exist on
//!   the cache-on side by construction);
//! * a fault injected into a job whose plan came *from the cache* recovers
//!   exactly like a from-scratch run: instantiation shares no mutable state
//!   between jobs, so invalidation and replanning see a normal plan.

use std::sync::Arc;

use swift::cluster::{Cluster, CostModel};
use swift::dag::{DagBuilder, JobDag, Operator, StageProfile};
use swift::ft::FailureKind;
use swift::scheduler::{FailureAt, FailureInjection, JobSpec, SimConfig, Simulation};
use swift::sim::{SimDuration, SimTime};
use swift::trace::scenarios;
use swift::trace::{RecorderConfig, Trace, TraceEventKind};

/// Recorder settings for differential comparison: everything except the
/// template events themselves (which announce cache hits and misses, and
/// so can only appear on the cache-on side).
fn differential_recorder() -> RecorderConfig {
    RecorderConfig {
        template_events: false,
        ..RecorderConfig::full()
    }
}

/// Runs `(scenario, seed)` with the cache forced on or off and returns
/// the trace plus the report digest.
fn run_side(name: &str, seed: u64, templates: bool) -> (Trace, u64) {
    let (trace, report) =
        scenarios::run_traced_with(name, seed, differential_recorder(), templates)
            .expect("registry scenario exists");
    (trace, report.digest())
}

/// The headline gate: for every scenario in the registry and three seeds,
/// cache-on and cache-off runs are byte-identical — same report digest,
/// same rendered event stream.
#[test]
fn cache_on_equals_cache_off_across_registry() {
    for name in scenarios::names() {
        for seed in [1u64, 7, 23] {
            let (trace_on, digest_on) = run_side(name, seed, true);
            let (trace_off, digest_off) = run_side(name, seed, false);
            assert_eq!(
                digest_on, digest_off,
                "{name}/{seed}: report digest diverged with the template cache on"
            );
            assert_eq!(
                trace_on.render_text(),
                trace_off.render_text(),
                "{name}/{seed}: event trace diverged with the template cache on"
            );
            trace_on
                .check_spans()
                .unwrap_or_else(|e| panic!("{name}/{seed}: cache-on span discipline: {e}"));
        }
    }
}

fn fault_profile(input: u64, output: u64, process_us: u64) -> StageProfile {
    StageProfile {
        input_rows_per_task: input / 100,
        input_bytes_per_task: input,
        output_bytes_per_task: output,
        process_us_per_task: process_us,
        locality: vec![],
    }
}

/// A small fan-out/fan-in job whose middle stages run long enough for a
/// mid-run process restart (plus the 1 s detection delay) to land while
/// downstream work is still blocked on the lost task.
fn fanout_dag(job: u64) -> JobDag {
    let mut b = DagBuilder::new(job, "fanout");
    let scan = b
        .stage("scan", 3)
        .op(Operator::TableScan { table: "t".into() })
        .op(Operator::ShuffleWrite)
        .profile(fault_profile(2 << 20, 1 << 20, 420_000))
        .build();
    let grind = b
        .stage("grind", 2)
        .op(Operator::ShuffleRead)
        .op(Operator::Filter)
        .op(Operator::ShuffleWrite)
        .profile(fault_profile(1 << 20, 512 << 10, 320_000))
        .build();
    let skim = b
        .stage("skim", 2)
        .op(Operator::ShuffleRead)
        .op(Operator::Project)
        .op(Operator::ShuffleWrite)
        .profile(fault_profile(1 << 20, 256 << 10, 260_000))
        .build();
    let merge = b
        .stage("merge", 2)
        .op(Operator::ShuffleRead)
        .op(Operator::MergeJoin)
        .op(Operator::AdhocSink)
        .profile(fault_profile(768 << 10, 0, 550_000))
        .build();
    b.edge(scan, grind)
        .edge(scan, skim)
        .edge(grind, merge)
        .edge(skim, merge);
    b.build().expect("fanout DAG is valid")
}

/// Two same-shape jobs, staggered so the second job's plan comes from the
/// cache, with a process restart injected into the second job.
fn faulted_repeat_workload() -> (Vec<JobSpec>, Vec<FailureInjection>) {
    let specs = vec![
        JobSpec {
            dag: Arc::new(fanout_dag(0)),
            submit_at: SimTime::ZERO,
        },
        JobSpec {
            dag: Arc::new(fanout_dag(1)),
            submit_at: SimTime::ZERO + SimDuration::from_millis(150),
        },
    ];
    let injections = vec![FailureInjection {
        job_index: 1,
        stage: "grind".to_string(),
        task_index: 0,
        at: FailureAt::AfterSubmit(SimDuration::from_millis(700)),
        kind: FailureKind::ProcessRestart,
    }];
    (specs, injections)
}

fn run_faulted(templates: bool, recorder: RecorderConfig) -> (Trace, u64) {
    let (specs, injections) = faulted_repeat_workload();
    let cluster = Cluster::new(4, 2, CostModel::default());
    let cfg = SimConfig {
        templates,
        ..SimConfig::swift()
    };
    let mut sim = Simulation::new(cluster, cfg, specs);
    sim.inject_failures(injections);
    let (rec, handle) = swift::trace::TraceRecorder::new("faulted_repeat", 0, recorder);
    sim.set_observer(Box::new(rec));
    let report = sim.run();
    (handle.finish(), report.digest())
}

/// Fine-grained recovery must work when the failed job's plan was
/// *instantiated from the cache* rather than computed from scratch: the
/// second (cache-hit) job loses a task to a process restart and the run
/// still ends byte-identical to the cache-off run.
#[test]
fn recovery_replans_from_an_instantiated_plan() {
    // First, with template events on, prove the setup does what the test
    // name claims: job 1 is served by the cache and then suffers the fault.
    let (trace, _) = run_faulted(true, RecorderConfig::full());
    let hit_job = trace.events.iter().find_map(|e| match e.kind {
        TraceEventKind::TemplateHit { job, .. } => Some(job),
        _ => None,
    });
    assert_eq!(hit_job, Some(1), "job 1's plan must come from the cache");
    let recovery_planned = trace
        .events
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::RecoveryPlanned { job, .. } if job == 1));
    assert!(
        recovery_planned,
        "the injected restart must drive replanning on the cache-served job"
    );
    trace
        .check_spans()
        .expect("faulted cache-on span discipline");

    // Then the differential: identical digest and trace either way.
    let (trace_on, digest_on) = run_faulted(true, differential_recorder());
    let (trace_off, digest_off) = run_faulted(false, differential_recorder());
    assert_eq!(
        digest_on, digest_off,
        "recovery from an instantiated plan diverged from the scratch plan"
    );
    assert_eq!(trace_on.render_text(), trace_off.render_text());
}
