//! Differential proof that the sharded simulator core is behaviorally
//! invisible.
//!
//! The sharded core (`swift_sim::ShardedEventQueue`) partitions pending
//! events across K machine-group lanes and merges them at deterministic
//! window barriers in global `(time, seq)` order — the exact order of the
//! legacy single heap. Sharding is a pure *wall-clock* optimization: no
//! report, trace or counter frame may move by a byte when K, the barrier
//! window, or the thread-refill shim changes. This suite pins that
//! contract from the outside:
//!
//! * every registry scenario, across seeds, produces a byte-identical
//!   [`swift::scheduler::RunReport`] digest, event trace and counter
//!   frames for K ∈ {1, 2, 4, 8}, against the legacy core (K = 0);
//! * the scoped-thread refill shim changes nothing either;
//! * extreme barrier windows (1 µs and 1000 s) merge identically, so the
//!   window is provably a tuning knob, not a semantics knob;
//! * shard telemetry is conserved: per-lane event counts sum to the
//!   report's `events_processed` at every K.

use swift::sim::SimDuration;
use swift::trace::scenarios;
use swift::trace::RecorderConfig;

/// Recorder settings for differential comparison: the full surface plus
/// counter frames, so the comparison covers spans, counters and metrics.
fn differential_recorder() -> RecorderConfig {
    RecorderConfig {
        counter_window: Some(SimDuration::from_millis(250)),
        ..RecorderConfig::full()
    }
}

/// Runs `(scenario, seed)` at a shard count (0 = legacy single queue) and
/// returns `(event text, counter text, report digest)`.
fn run_at(name: &str, seed: u64, shards: u32, threads: bool) -> (String, String, u64) {
    let (trace, report) =
        scenarios::run_traced_sharded(name, seed, differential_recorder(), shards, threads)
            .expect("registry scenario exists");
    (
        trace.render_text(),
        trace.render_counters_text(),
        report.digest(),
    )
}

/// The headline gate: for every scenario in the registry, the legacy core
/// and the sharded core at K ∈ {1, 2, 4, 8} are byte-identical — same
/// report digest, same rendered event stream, same counter frames.
#[test]
fn sharded_equals_single_across_registry() {
    for name in scenarios::names() {
        for seed in [1u64, 23] {
            let (events, counters, digest) = run_at(name, seed, 0, false);
            for k in [1u32, 2, 4, 8] {
                let (ev_k, ctr_k, digest_k) = run_at(name, seed, k, false);
                assert_eq!(
                    digest, digest_k,
                    "{name}/{seed}: report digest diverged at K = {k}"
                );
                assert_eq!(
                    events, ev_k,
                    "{name}/{seed}: event trace diverged at K = {k}"
                );
                assert_eq!(
                    counters, ctr_k,
                    "{name}/{seed}: counter frames diverged at K = {k}"
                );
            }
        }
    }
}

/// The thread-refill shim is wall-clock only: same bytes as sequential
/// refills at the same K.
#[test]
fn thread_refill_shim_is_byte_invisible() {
    for name in ["multijob", "fault"] {
        for k in [2u32, 8] {
            let sequential = run_at(name, 7, k, false);
            let threaded = run_at(name, 7, k, true);
            assert_eq!(
                sequential, threaded,
                "{name}: thread-refill shim changed bytes at K = {k}"
            );
        }
    }
}

/// Runs a scenario with an explicit barrier window and returns the digest.
fn digest_with_window(name: &str, shards: u32, window: SimDuration) -> u64 {
    scenarios::build_sharded_with_window(name, 11, shards, false, Some(window))
        .expect("scenario exists")
        .run()
        .digest()
}

/// A one-µs window (a barrier per distinct timestamp) and a 1000-second
/// window (everything in a couple of runs) merge identically: the barrier
/// window is a pure performance knob.
#[test]
fn barrier_window_is_a_tuning_knob() {
    for name in ["diamond", "fault"] {
        let baseline = digest_with_window(name, 4, SimDuration::from_millis(256));
        assert_eq!(
            baseline,
            digest_with_window(name, 4, SimDuration(1)),
            "{name}: 1µs windows changed the digest"
        );
        assert_eq!(
            baseline,
            digest_with_window(name, 4, SimDuration::from_secs(1_000)),
            "{name}: huge windows changed the digest"
        );
    }
}

/// Shard telemetry conservation: per-lane event counts sum exactly to the
/// report's `events_processed`, and the clamped lane count is respected.
#[test]
fn lane_event_counts_sum_to_events_processed() {
    for name in scenarios::names() {
        for k in [1u32, 2, 4, 8] {
            let sim = scenarios::build_sharded(name, 3, k, false).expect("scenario exists");
            let machines = sim.cluster().machine_count();
            let (report, stats) = sim.run_with_shard_stats();
            let stats = stats.expect("sharded core reports stats");
            assert_eq!(stats.shards, k.clamp(1, machines), "{name}: lane count");
            assert_eq!(
                stats.events_per_shard.iter().sum::<u64>(),
                report.events_processed,
                "{name}/K={k}: lane events must sum to events_processed"
            );
            assert_eq!(
                stats.events_per_shard.len(),
                stats.shards as usize,
                "{name}: one counter per lane"
            );
        }
    }
}

/// The legacy core reports no shard stats — callers can tell which core
/// ran without consulting the config.
#[test]
fn legacy_core_reports_no_shard_stats() {
    let sim = scenarios::build_sharded("tiny", 1, 0, false).expect("scenario exists");
    let (_, stats) = sim.run_with_shard_stats();
    assert!(stats.is_none(), "legacy queue must not fabricate stats");
}

/// Sums one counter series across every frame of a trace.
fn series_total(trace: &swift::trace::Trace, id: swift::metrics::SeriesId) -> u64 {
    trace
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            swift::trace::TraceEventKind::CounterFrame { values, .. } => Some(values),
            _ => None,
        })
        .flat_map(|values| values.iter().filter(|(i, _)| *i == id.0).map(|&(_, v)| v))
        .sum()
}

/// The opt-in `sim.shard.*` counter series telescope to the run totals:
/// merged shard events sum to `events_processed`, and the series only
/// appear when asked for — default frames never mention them.
#[test]
fn shard_series_opt_in_widens_frames_and_telescopes() {
    let opt_in = RecorderConfig {
        shard_series: true,
        ..differential_recorder()
    };
    let (trace, report) =
        scenarios::run_traced_sharded("multijob", 5, opt_in, 4, false).expect("scenario exists");
    assert_eq!(
        series_total(&trace, swift::metrics::SIM_SHARD_EVENTS),
        report.events_processed,
        "shard-event frames must telescope to the report total"
    );
    assert!(
        series_total(&trace, swift::metrics::SIM_SHARD_WINDOW_BARRIERS) > 0,
        "a multi-shard run takes at least one window barrier"
    );
    let counters = trace.render_counters_text();
    assert!(counters.contains("sim.shard.events"));
    assert!(counters.contains("sim.shard.cross_msgs"));

    // Default recorder: no shard series, even on the sharded core.
    let (default_trace, _) =
        scenarios::run_traced_sharded("multijob", 5, differential_recorder(), 4, false)
            .expect("scenario exists");
    assert!(
        !default_trace.render_counters_text().contains("sim.shard."),
        "default frames must stay on the core vocabulary"
    );
}
