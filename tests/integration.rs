//! Cross-crate integration tests: SQL → planner → engine on TPC-H data,
//! workload → simulator, and the consistency between the engine's and the
//! simulator's views of the same job.

use swift::cluster::{Cluster, CostModel};
use swift::dag::partition;
use swift::engine::{Engine, Value};
use swift::scheduler::{JobSpec, PolicyConfig, SimConfig, Simulation};
use swift::sql::{compile, run_sql, PlanOptions};
use swift::workload::{generate_catalog, q9_sim_dag, tpch_sim_dag, Q13_SQL, Q9_SQL};

#[test]
fn q9_sql_runs_and_modes_agree() {
    let engine = Engine::new(generate_catalog(2, 42));
    let (cols, hash) = run_sql(&engine, Q9_SQL, &PlanOptions::default()).unwrap();
    let (_, sorted) = run_sql(
        &engine,
        Q9_SQL,
        &PlanOptions {
            prefer_sort: true,
            ..PlanOptions::default()
        },
    )
    .unwrap();
    assert_eq!(cols, vec!["nation", "o_year", "sum_profit"]);
    assert_eq!(hash, sorted, "hash and sort-merge plans agree");
    assert!(!hash.is_empty());
    // ORDER BY nation asc, o_year desc holds.
    for w in hash.windows(2) {
        let n = w[0][0].total_cmp(&w[1][0]);
        assert!(n.is_le());
        if n.is_eq() {
            assert!(
                w[0][1].total_cmp(&w[1][1]).is_ge(),
                "o_year desc within nation"
            );
        }
    }
}

#[test]
fn q9_aggregates_match_manual_computation() {
    let catalog = generate_catalog(1, 7);
    // Manual evaluation of the Q9 semantics over the generated tables.
    let li = &catalog.get("tpch_lineitem").unwrap().rows;
    let ps = &catalog.get("tpch_partsupp").unwrap().rows;
    let parts = &catalog.get("tpch_part").unwrap().rows;
    let supp = &catalog.get("tpch_supplier").unwrap().rows;
    let orders = &catalog.get("tpch_orders").unwrap().rows;
    let nations = &catalog.get("tpch_nation").unwrap().rows;
    let mut expected: std::collections::BTreeMap<(String, String), f64> = Default::default();
    for l in li {
        let (l_ok, l_pk, l_sk) = (
            l[0].as_i64().unwrap(),
            l[1].as_i64().unwrap(),
            l[2].as_i64().unwrap(),
        );
        let part = parts.iter().find(|p| p[0].as_i64() == Some(l_pk)).unwrap();
        if !part[1].as_str().unwrap().contains("green") {
            continue;
        }
        // The generated partsupp can hold duplicate (partkey, suppkey)
        // pairs; an inner join matches each of them.
        let psrs: Vec<_> = ps
            .iter()
            .filter(|r| r[0].as_i64() == Some(l_pk) && r[1].as_i64() == Some(l_sk))
            .collect();
        if psrs.is_empty() {
            continue;
        }
        let s = supp.iter().find(|r| r[0].as_i64() == Some(l_sk)).unwrap();
        let o = orders.iter().find(|r| r[0].as_i64() == Some(l_ok)).unwrap();
        let n = nations.iter().find(|r| r[0] == s[2]).unwrap();
        let year = o[2].as_str().unwrap()[..4].to_string();
        for psr in psrs {
            let amount = l[4].as_f64().unwrap() * (1.0 - l[5].as_f64().unwrap())
                - psr[2].as_f64().unwrap() * l[3].as_f64().unwrap();
            *expected
                .entry((n[1].as_str().unwrap().to_string(), year.clone()))
                .or_default() += amount;
        }
    }

    let engine = Engine::new(catalog.clone());
    let (_, rows) = run_sql(&engine, Q9_SQL, &PlanOptions::default()).unwrap();
    assert_eq!(rows.len(), expected.len());
    for r in &rows {
        let key = (r[0].to_string(), r[1].to_string());
        let want = expected[&key];
        let got = r[2].as_f64().unwrap();
        assert!(
            (got - want).abs() < 1e-6 * want.abs().max(1.0),
            "{key:?}: {got} vs {want}"
        );
    }
}

#[test]
fn q13_sql_distribution_is_consistent() {
    let engine = Engine::new(generate_catalog(2, 11));
    let (cols, rows) = run_sql(&engine, Q13_SQL, &PlanOptions::default()).unwrap();
    assert_eq!(cols, vec!["c_count", "custdist"]);
    // custdist counts customers; total customers with special orders must
    // match the sum of the distribution.
    let total: i64 = rows
        .iter()
        .map(|r| r[1].as_i64().unwrap())
        .collect::<Vec<_>>()
        .iter()
        .sum();
    assert!(total > 0);
    // Sorted by custdist desc, then c_count desc.
    for w in rows.windows(2) {
        let d = w[0][1].total_cmp(&w[1][1]);
        assert!(d.is_ge());
        if d.is_eq() {
            assert!(w[0][0].total_cmp(&w[1][0]).is_ge());
        }
    }
}

#[test]
fn sql_planned_job_runs_in_simulator_too() {
    // The same EngineJob DAG produced by the SQL planner is a valid
    // simulator workload (profiles filled by the planner).
    let catalog = generate_catalog(2, 3);
    let job = compile(
        Q9_SQL,
        &catalog,
        9,
        &PlanOptions {
            prefer_sort: true,
            ..PlanOptions::default()
        },
    )
    .unwrap();
    let report = Simulation::new(
        Cluster::new(20, 8, CostModel::default()),
        SimConfig::swift(),
        vec![JobSpec::at_zero(job.dag.clone())],
    )
    .run();
    assert!(!report.jobs[0].aborted);
    assert!(report.jobs[0].elapsed.as_secs_f64() > 0.0);
}

#[test]
fn paper_q9_partition_and_simulation_cross_check() {
    let dag = q9_sim_dag(9);
    let part = partition(&dag);
    assert_eq!(part.len(), 4, "Fig. 4: four graphlets");
    // Graphlet gang sizes match Fig. 4's task counts.
    let sizes: Vec<u64> = part
        .graphlets()
        .iter()
        .map(|g| g.total_tasks(&dag))
        .collect();
    assert_eq!(
        sizes,
        vec![956 + 220 + 3 + 403, 403 + 403, 220 + 20 + 100 + 200, 50 + 1]
    );

    // All four policies run it to completion; Swift is fastest.
    let mut times = Vec::new();
    for policy in [
        PolicyConfig::swift(),
        PolicyConfig::jetscope(),
        PolicyConfig::bubble(600, swift::sim::SimDuration::from_millis(500)),
        PolicyConfig::spark(),
    ] {
        let name = policy.name.clone();
        let report = Simulation::new(
            Cluster::new(100, 32, CostModel::default()),
            SimConfig::with_policy(policy),
            vec![JobSpec::at_zero(dag.clone())],
        )
        .run();
        assert!(!report.jobs[0].aborted, "{name}");
        times.push((name, report.jobs[0].elapsed.as_secs_f64()));
    }
    let swift_t = times.iter().find(|(n, _)| n == "swift").unwrap().1;
    let spark_t = times.iter().find(|(n, _)| n == "spark").unwrap().1;
    assert!(
        spark_t > swift_t * 1.5,
        "swift {swift_t:.1}s vs spark {spark_t:.1}s"
    );
}

#[test]
fn all_tpch_queries_simulate_under_all_policies() {
    for q in [1, 5, 9, 13, 18, 22] {
        let dag = tpch_sim_dag(q, q as u64);
        for policy in [PolicyConfig::swift(), PolicyConfig::spark()] {
            let name = policy.name.clone();
            let report = Simulation::new(
                Cluster::new(100, 32, CostModel::default()),
                SimConfig::with_policy(policy),
                vec![JobSpec::at_zero(dag.clone())],
            )
            .run();
            assert!(!report.jobs[0].aborted, "q{q} {name}");
        }
    }
}

#[test]
fn engine_and_sql_roundtrip_terasort_values() {
    use swift::workload::{teragen, terasort_engine_job};
    let rows = 2_000u64;
    let engine = Engine::new(teragen(rows, 99));
    let out = engine.run(&terasort_engine_job(1, 4, 3)).unwrap();
    assert_eq!(out.len(), rows as usize);
    let mut keys: Vec<i64> = out.iter().map(|r| r[0].as_i64().unwrap()).collect();
    let sorted = {
        let mut k = keys.clone();
        k.sort_unstable();
        k
    };
    assert_eq!(keys, sorted, "terasort output globally sorted");
    keys.dedup();
    // Sanity: inputs were random, so nearly all keys distinct.
    assert!(keys.len() as u64 > rows * 9 / 10);
}

#[test]
fn value_displays_roundtrip_through_sql_literals() {
    let engine = Engine::new(generate_catalog(1, 1));
    let (_, rows) = run_sql(
        &engine,
        "select n_name, n_regionkey * 2 + 1 as x from tpch_nation where n_name like 'C%' order by n_name",
        &PlanOptions::default(),
    )
    .unwrap();
    assert_eq!(rows[0][0], Value::Str("CANADA".into()));
    assert_eq!(rows[1][0], Value::Str("CHINA".into()));
}
