//! Simulated time: microsecond-resolution instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An instant on the simulation clock, in microseconds since simulation
/// start. Monotonically non-decreasing as events are processed.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero — the simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant `secs` seconds after the epoch (saturating at
    /// `u64::MAX` microseconds).
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs.saturating_mul(1_000_000))
    }

    /// Builds an instant `ms` milliseconds after the epoch (saturating).
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000))
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reports and figures).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration from `earlier` to `self`; zero if `earlier` is later
    /// (saturating, mirroring `std::time::Instant::saturating_duration_since`).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `secs` seconds (saturating at `u64::MAX` microseconds).
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000_000))
    }

    /// A duration of `ms` milliseconds (saturating).
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000))
    }

    /// A duration of `us` microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// A duration of `secs` (fractional) seconds, rounded to microseconds.
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    /// Saturates at the end of simulated time instead of overflowing: an
    /// instant near `u64::MAX` microseconds plus any duration stays
    /// representable, which chaos campaigns with adversarial schedules
    /// rely on.
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 3_500_000);
        assert_eq!((t - SimTime::from_secs(3)).as_micros(), 500_000);
        assert_eq!(
            t.saturating_since(SimTime::from_secs(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        assert!((SimDuration::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs_f64(-2.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn scaling() {
        assert_eq!(SimDuration::from_secs(2) * 3u64, SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_secs(2) * 0.5, SimDuration::from_secs(1));
        assert_eq!(
            SimDuration::from_secs(5) - SimDuration::from_secs(7),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic_saturates_near_u64_max() {
        // None of these may panic, in debug or release builds.
        let huge_t = SimTime(u64::MAX - 10);
        let huge_d = SimDuration(u64::MAX - 10);
        assert_eq!(huge_t + SimDuration::from_secs(1), SimTime(u64::MAX));
        let mut t = huge_t;
        t += SimDuration(u64::MAX);
        assert_eq!(t, SimTime(u64::MAX));
        assert_eq!(huge_d + huge_d, SimDuration(u64::MAX));
        let mut d = huge_d;
        d += SimDuration(20);
        assert_eq!(d, SimDuration(u64::MAX));
        assert_eq!(huge_d * 3u64, SimDuration(u64::MAX));
        assert_eq!(SimDuration(0) * u64::MAX, SimDuration::ZERO);
        assert_eq!(SimTime::from_secs(u64::MAX), SimTime(u64::MAX));
        assert_eq!(SimTime::from_millis(u64::MAX), SimTime(u64::MAX));
        assert_eq!(SimDuration::from_secs(u64::MAX), SimDuration(u64::MAX));
        assert_eq!(SimDuration::from_millis(u64::MAX), SimDuration(u64::MAX));
    }

    #[test]
    fn float_mul_saturates_instead_of_wrapping() {
        // f64 -> u64 casts in Rust saturate; enormous products must clamp.
        let d = SimDuration::from_secs(1_000_000) * 1e30;
        assert_eq!(d, SimDuration(u64::MAX));
        assert_eq!(SimDuration::from_secs_f64(f64::MAX), SimDuration(u64::MAX));
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "t=1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }
}
