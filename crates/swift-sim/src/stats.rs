//! Small statistics helpers shared by the experiment harnesses.
//!
//! The paper reports averages via "the widely-used four quartile method"
//! (Hyndman & Fan sample quantiles) and presents several CDFs; these
//! helpers compute exactly those summaries.

/// Summary of a sample: min, quartiles, max and mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quartiles {
    /// Smallest sample.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Computes [`Quartiles`] of a non-empty sample. Returns `None` for an
/// empty slice. Uses linear interpolation between order statistics
/// (Hyndman–Fan type 7, the default of R/NumPy, cited by the paper as the
/// "four quartile method" [26]).
pub fn quartiles(samples: &[f64]) -> Option<Quartiles> {
    if samples.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    Some(Quartiles {
        min: v[0],
        q1: quantile_sorted(&v, 0.25),
        median: quantile_sorted(&v, 0.5),
        q3: quantile_sorted(&v, 0.75),
        max: v[v.len() - 1],
        mean,
    })
}

/// Type-7 quantile of an already-sorted sample, `q` in `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// A point of an empirical CDF: `fraction` of samples are `<= value`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CdfPoint {
    /// Sample value.
    pub value: f64,
    /// Cumulative fraction in `(0, 1]`.
    pub fraction: f64,
}

/// Builds the empirical CDF of a sample (sorted ascending, one point per
/// sample). Used for the Fig. 8 and Fig. 11 style plots.
pub fn empirical_cdf(samples: &[f64]) -> Vec<CdfPoint> {
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, value)| CdfPoint {
            value,
            fraction: (i as f64 + 1.0) / n,
        })
        .collect()
}

/// Fraction of samples `<= threshold`.
pub fn fraction_at_most(samples: &[f64], threshold: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&x| x <= threshold).count() as f64 / samples.len() as f64
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_known_sample() {
        // R: quantile(c(1,2,3,4,5), type=7) -> 25%: 2, 50%: 3, 75%: 4
        let q = quartiles(&[5.0, 3.0, 1.0, 4.0, 2.0]).unwrap();
        assert_eq!(q.min, 1.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q3, 4.0);
        assert_eq!(q.max, 5.0);
        assert_eq!(q.mean, 3.0);
    }

    #[test]
    fn quartiles_interpolate() {
        // R: quantile(c(1,2,3,4), type=7) -> 25%: 1.75, 50%: 2.5, 75%: 3.25
        let q = quartiles(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(q.q1, 1.75);
        assert_eq!(q.median, 2.5);
        assert_eq!(q.q3, 3.25);
    }

    #[test]
    fn quartiles_edge_cases() {
        assert!(quartiles(&[]).is_none());
        let q = quartiles(&[7.0]).unwrap();
        assert_eq!(q.median, 7.0);
        assert_eq!(q.q1, 7.0);
        assert_eq!(q.max, 7.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.last().unwrap().fraction, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].value <= w[1].value);
            assert!(w[0].fraction < w[1].fraction);
        }
    }

    #[test]
    fn fraction_at_most_counts_inclusive() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_at_most(&s, 2.0), 0.5);
        assert_eq!(fraction_at_most(&s, 0.5), 0.0);
        assert_eq!(fraction_at_most(&s, 10.0), 1.0);
        assert_eq!(fraction_at_most(&[], 1.0), 0.0);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
