//! Sharded discrete-event queue with deterministic time-windowed merging.
//!
//! [`ShardedEventQueue`] partitions pending events across K *lanes* (one per
//! shard group — e.g. a contiguous range of cluster machines) while popping
//! them in exactly the same total order as the single [`EventQueue`]:
//! `(time, seq)` on a packed `u128` key, where `seq` is a **global**
//! insertion counter shared by every lane. The shard id names the lane an
//! event is stored in and is recorded for telemetry; it is *not* a
//! tie-breaker. That choice is what makes the merged stream byte-identical
//! to the single-threaded core for the same seed at any K: per-lane
//! sequence numbers would reorder same-timestamp cross-shard events.
//!
//! Time advances through fixed-width *windows* separated by deterministic
//! barriers. Each lane keeps four containers:
//!
//! * `run` — the current window's events, bulk-sorted once at the barrier
//!   and popped off the tail (stored descending, so the minimum is `last()`);
//! * `late` — a small 4-ary heap for events scheduled *during* the window
//!   with a timestamp inside it (`schedule_now`-style follow-ups);
//! * `next` — an unsorted staging bucket for events one window ahead;
//! * `far` — a 4-ary heap for everything further out.
//!
//! A pop scans the K lane heads (`run` tail vs `late` head) and takes the
//! global minimum key. When every lane is exhausted the queue reaches a
//! *window barrier*: it finds the earliest pending timestamp `t` across all
//! `next`/`far` containers, advances the horizon to the end of `t`'s
//! window, and refills every lane's `run` (drain `far` below the horizon,
//! absorb all of `next`, one `sort_unstable`). Refills are independent per
//! lane, so they can optionally run on scoped worker threads — the result
//! is byte-identical either way because each lane's sort is deterministic
//! and the merge order is fixed by the global key.
//!
//! Replacing per-event heap sifts with bulk sorts (plus smaller per-lane
//! heaps) is where the single-thread win comes from; the thread shim adds
//! wall-clock parallelism for barrier refills on large windows.

use crate::queue::{MinHeap4, Scheduled};
use crate::time::{SimDuration, SimTime};

/// Minimum number of staged events (across all lanes) before a barrier
/// refill is worth fanning out to scoped threads; below this the spawn
/// overhead dominates. Deterministic: depends only on queue state.
const PAR_REFILL_MIN: usize = 8192;

/// Telemetry counters for a sharded run. All values are deterministic
/// functions of the schedule (and therefore of the seed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shard lanes (K).
    pub shards: u32,
    /// Events popped per shard lane, indexed by shard id.
    pub events_per_shard: Vec<u64>,
    /// Schedules whose handling context shard differed from the target
    /// event's shard — the inter-shard message count.
    pub cross_shard_messages: u64,
    /// Window barriers crossed (lane refills performed K times each).
    pub window_barriers: u64,
    /// Lane-windows in which a lane had no events while at least one other
    /// lane was active — idle capacity under a hypothetical parallel
    /// executor.
    pub stall_windows: u64,
}

struct Lane<E> {
    /// Current window, sorted descending by key; minimum at the tail.
    run: Vec<Scheduled<E>>,
    /// Events scheduled mid-window with `at` inside the window.
    late: MinHeap4<E>,
    /// Unsorted staging for events one window ahead of the horizon.
    next: Vec<Scheduled<E>>,
    /// Minimum key in `next` (`u128::MAX` when empty), maintained on push.
    next_min: u128,
    /// Events at least one full window beyond the horizon at insert time.
    far: MinHeap4<E>,
    /// Events popped from this lane.
    events: u64,
}

impl<E> Lane<E> {
    const fn new() -> Self {
        Lane {
            run: Vec::new(),
            late: MinHeap4::new(),
            next: Vec::new(),
            next_min: u128::MAX,
            far: MinHeap4::new(),
            events: 0,
        }
    }

    /// Key of this lane's earliest ready (current-window) event.
    #[inline]
    fn ready_key(&self) -> u128 {
        let run = self.run.last().map_or(u128::MAX, |s| s.key);
        let late = self.late.peek().map_or(u128::MAX, |s| s.key);
        run.min(late)
    }

    #[inline]
    fn pending(&self) -> usize {
        self.run.len() + self.late.len() + self.next.len() + self.far.len()
    }

    /// Pops this lane's earliest ready event. Caller guarantees one exists.
    #[inline]
    fn take(&mut self) -> Scheduled<E> {
        let run = self.run.last().map_or(u128::MAX, |s| s.key);
        let late = self.late.peek().map_or(u128::MAX, |s| s.key);
        let s = if run <= late {
            self.run.pop()
        } else {
            self.late.pop()
        };
        s.expect("ready lane has an event")
    }

    /// Rebuilds `run` for the window ending at `horizon` (µs, exclusive):
    /// drains `far` below it, absorbs all of `next`, and bulk-sorts. Called
    /// only at barriers, when `run` and `late` are exhausted.
    fn refill(&mut self, horizon: u128) {
        debug_assert!(self.run.is_empty() && self.late.len() == 0);
        while self
            .far
            .peek()
            .is_some_and(|s| u128::from((s.key >> 64) as u64) < horizon)
        {
            self.run.push(self.far.pop().expect("peeked entry exists"));
        }
        debug_assert!(
            self.next
                .iter()
                .all(|s| u128::from((s.key >> 64) as u64) < horizon),
            "staging bucket spilled past the new horizon"
        );
        self.run.append(&mut self.next);
        self.next_min = u128::MAX;
        // Descending, so pops come off the tail. Keys are unique (global
        // sequence in the low bits), so the order is total and the sort
        // being unstable cannot matter.
        self.run.sort_unstable_by_key(|s| std::cmp::Reverse(s.key));
    }
}

/// A K-lane event queue that merges to the exact `(time, seq)` order of
/// [`EventQueue`] — see the module docs for the window-barrier design.
///
/// ```
/// use swift_sim::{ShardedEventQueue, SimDuration, SimTime};
///
/// let mut q: ShardedEventQueue<&str> = ShardedEventQueue::new(4, SimDuration::from_millis(10));
/// q.schedule(3, SimTime::from_secs(2), "second");
/// q.schedule(1, SimTime::from_secs(1), "first");
/// assert_eq!(q.pop(), Some("first"));
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// assert_eq!(q.pop(), Some("second"));
/// assert_eq!(q.pop(), None);
/// ```
pub struct ShardedEventQueue<E> {
    lanes: Vec<Lane<E>>,
    /// Window width in µs (≥ 1).
    window: u64,
    /// Exclusive upper bound of the replay-ready region, in µs; always a
    /// multiple of `window`. Kept as `u128` so the final window at the top
    /// of the u64 time range needs no saturation special-case.
    horizon: u128,
    now: SimTime,
    seq: u64,
    processed: u64,
    /// Shard context attributed as the *source* of subsequent schedules;
    /// `None` outside event handling (initial seeding).
    context: Option<u32>,
    threads: bool,
    cross_shard_messages: u64,
    window_barriers: u64,
    stall_windows: u64,
}

impl<E> std::fmt::Debug for ShardedEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEventQueue")
            .field("shards", &self.lanes.len())
            .field("now", &self.now)
            .field(
                "pending",
                &self.lanes.iter().map(Lane::pending).sum::<usize>(),
            )
            .field("processed", &self.processed)
            .field("window_us", &self.window)
            .finish()
    }
}

impl<E: Send> ShardedEventQueue<E> {
    /// Creates an empty queue with `shards` lanes and the given barrier
    /// window. `shards` is clamped to at least 1 and `window` to at least
    /// one microsecond.
    pub fn new(shards: u32, window: SimDuration) -> Self {
        let k = shards.max(1) as usize;
        ShardedEventQueue {
            lanes: (0..k).map(|_| Lane::new()).collect(),
            window: window.as_micros().max(1),
            horizon: 0,
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            context: None,
            threads: false,
            cross_shard_messages: 0,
            window_barriers: 0,
            stall_windows: 0,
        }
    }

    /// Enables or disables the scoped-thread barrier refill shim. Purely a
    /// wall-clock knob: the pop order (and thus every digest) is identical
    /// either way, because lane refills are independent and each lane's
    /// sort is deterministic.
    pub fn set_thread_refill(&mut self, on: bool) {
        self.threads = on;
    }

    /// Number of shard lanes (K).
    pub fn shards(&self) -> u32 {
        self.lanes.len() as u32
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending across all lanes.
    pub fn pending(&self) -> usize {
        self.lanes.iter().map(Lane::pending).sum()
    }

    /// Alias of [`ShardedEventQueue::pending`], mirroring `EventQueue::len`.
    pub fn len(&self) -> usize {
        self.pending()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Sets the shard whose handler is currently running, so cross-shard
    /// scheduling is attributed to the right source. [`ShardedEventQueue::pop`]
    /// sets this to the popped event's shard automatically; drivers that
    /// drain batches and handle events later should set it per event.
    pub fn set_context(&mut self, shard: u32) {
        self.context = Some(shard % self.lanes.len() as u32);
    }

    /// Clears the handling context (e.g. while seeding the initial
    /// schedule); subsequent schedules count as local to their target.
    pub fn clear_context(&mut self) {
        self.context = None;
    }

    /// Cumulative cross-shard message count (allocation-free; see
    /// [`ShardStats::cross_shard_messages`]).
    pub fn cross_shard_messages(&self) -> u64 {
        self.cross_shard_messages
    }

    /// Cumulative window-barrier count (allocation-free).
    pub fn window_barriers(&self) -> u64 {
        self.window_barriers
    }

    /// Cumulative stalled lane-window count (allocation-free).
    pub fn stall_windows(&self) -> u64 {
        self.stall_windows
    }

    /// Snapshot of the shard telemetry counters.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            shards: self.lanes.len() as u32,
            events_per_shard: self.lanes.iter().map(|l| l.events).collect(),
            cross_shard_messages: self.cross_shard_messages,
            window_barriers: self.window_barriers,
            stall_windows: self.stall_windows,
        }
    }

    /// Schedules `event` on `shard` at absolute time `at`. Same contract as
    /// `EventQueue::schedule`: scheduling into the past panics in debug
    /// builds and fires "now" in release builds. A shard id at or beyond K
    /// wraps (debug builds assert it is in range).
    pub fn schedule(&mut self, shard: u32, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        debug_assert!(
            (shard as usize) < self.lanes.len(),
            "shard {shard} out of range (K = {})",
            self.lanes.len()
        );
        let at = at.max(self.now);
        let key = (u128::from(at.0) << 64) | u128::from(self.seq);
        self.seq += 1;
        let shard = shard % self.lanes.len() as u32;
        if self.context.is_some_and(|src| src != shard) {
            self.cross_shard_messages += 1;
        }
        let t = u128::from(at.0);
        let lane = &mut self.lanes[shard as usize];
        let entry = Scheduled { key, event };
        if t < self.horizon {
            lane.late.push(entry);
        } else if t < self.horizon + u128::from(self.window) {
            lane.next_min = lane.next_min.min(key);
            lane.next.push(entry);
        } else {
            lane.far.push(entry);
        }
    }

    /// Schedules `event` on `shard` after `delay` from the current time.
    pub fn schedule_in(&mut self, shard: u32, delay: SimDuration, event: E) {
        self.schedule(shard, self.now + delay, event);
    }

    /// Schedules `event` on `shard` at the current time (after all events
    /// already queued for this instant, preserving FIFO order).
    pub fn schedule_now(&mut self, shard: u32, event: E) {
        self.schedule(shard, self.now, event);
    }

    /// Lane index holding the globally earliest ready event, if any lane
    /// has one inside the current window.
    #[inline]
    fn min_ready(&self) -> Option<(u128, usize)> {
        let mut best = u128::MAX;
        let mut best_lane = usize::MAX;
        for (i, lane) in self.lanes.iter().enumerate() {
            let k = lane.ready_key();
            if k < best {
                best = k;
                best_lane = i;
            }
        }
        (best != u128::MAX).then_some((best, best_lane))
    }

    /// Pops the ready event from `lane`, advancing the clock and counters.
    #[inline]
    fn take(&mut self, li: usize) -> E {
        let s = self.lanes[li].take();
        self.now = s.at();
        self.processed += 1;
        self.lanes[li].events += 1;
        self.context = Some(li as u32);
        s.event
    }

    /// Crosses a window barrier: advances the horizon to cover the earliest
    /// pending event and refills every lane's run. Returns `false` when no
    /// events are pending anywhere (quiesced).
    fn advance_window(&mut self) -> bool {
        let mut min_key = u128::MAX;
        let mut staged = 0usize;
        for lane in &self.lanes {
            let far = lane.far.peek().map_or(u128::MAX, |s| s.key);
            min_key = min_key.min(lane.next_min).min(far);
            staged += lane.next.len() + lane.far.len();
        }
        if min_key == u128::MAX {
            return false;
        }
        let min_at = (min_key >> 64) as u64;
        let horizon = (u128::from(min_at) / u128::from(self.window) + 1) * u128::from(self.window);
        debug_assert!(horizon > self.horizon);
        self.horizon = horizon;
        self.window_barriers += 1;
        if self.threads && self.lanes.len() > 1 && staged >= PAR_REFILL_MIN {
            // Lane refills are disjoint and deterministic, so scoped worker
            // threads cannot affect the merged order — this is a pure
            // wall-clock shim, proven byte-identical by the K-sweep gates.
            // swift-analyze: allow(SW002) — deterministic per-lane sort fan-out; merge order fixed by the global (time, seq) key
            std::thread::scope(|s| {
                for lane in &mut self.lanes {
                    s.spawn(move || lane.refill(horizon));
                }
            });
        } else {
            for lane in &mut self.lanes {
                lane.refill(horizon);
            }
        }
        let idle = self
            .lanes
            .iter()
            .filter(|l| l.run.is_empty() && l.late.len() == 0)
            .count();
        if idle < self.lanes.len() {
            self.stall_windows += idle as u64;
        }
        true
    }

    /// Pops the earliest pending event and advances the clock to its
    /// timestamp. Returns `None` when the simulation has quiesced.
    pub fn pop(&mut self) -> Option<E> {
        loop {
            if let Some((_, li)) = self.min_ready() {
                return Some(self.take(li));
            }
            if !self.advance_window() {
                return None;
            }
        }
    }

    /// Drains every event scheduled for the earliest pending timestamp into
    /// `out` (in global FIFO order), advancing the clock once. Returns the
    /// number of events drained (0 when the queue is empty). Same contract
    /// as `EventQueue::pop_batch_at_now`: events scheduled while the batch
    /// is handled are not part of it.
    pub fn pop_batch_at_now(&mut self, out: &mut Vec<E>) -> usize {
        self.batch(out, None)
    }

    /// Like [`ShardedEventQueue::pop_batch_at_now`], but also records each
    /// drained event's shard id into `shards` (parallel to `out`), so a
    /// driver that handles the batch later can attribute its follow-up
    /// schedules to the right source shard via
    /// [`ShardedEventQueue::set_context`].
    pub fn pop_batch_with_shards(&mut self, out: &mut Vec<E>, shards: &mut Vec<u32>) -> usize {
        self.batch(out, Some(shards))
    }

    fn batch(&mut self, out: &mut Vec<E>, mut shards: Option<&mut Vec<u32>>) -> usize {
        let first = loop {
            if let Some((_, li)) = self.min_ready() {
                if let Some(shards) = shards.as_deref_mut() {
                    shards.push(li as u32);
                }
                break self.take(li);
            }
            if !self.advance_window() {
                return 0;
            }
        };
        let t = self.now;
        out.push(first);
        let mut n = 1;
        // Same-timestamp events all live inside the current window, so no
        // barrier can intervene mid-batch.
        while let Some((key, li)) = self.min_ready() {
            if (key >> 64) as u64 != t.0 {
                break;
            }
            if let Some(shards) = shards.as_deref_mut() {
                shards.push(li as u32);
            }
            out.push(self.take(li));
            n += 1;
        }
        n
    }

    /// Timestamp of the next pending event anywhere, if any, without
    /// popping it or crossing a barrier.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut min_key = u128::MAX;
        for lane in &self.lanes {
            min_key = min_key
                .min(lane.ready_key())
                .min(lane.next_min)
                .min(lane.far.peek().map_or(u128::MAX, |s| s.key));
        }
        (min_key != u128::MAX).then_some(SimTime((min_key >> 64) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    /// Deterministic xorshift for schedule fuzzing (no external RNG).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// Pops both queues to exhaustion, rescheduling follow-ups from a
    /// deterministic script, and asserts identical event order, clocks and
    /// processed counts.
    fn assert_equivalent(seed: u64, shards: u32, window_ms: u64, threads: bool) {
        let mut rng = Rng(seed | 1);
        let n = 400;
        let mut plan: Vec<(u64, u32)> = Vec::new(); // (time µs, payload)
        for i in 0..n {
            plan.push((rng.next() % 2_000_000, i));
        }

        let mut reference = EventQueue::new();
        for &(t, v) in &plan {
            reference.schedule(SimTime(t), v);
        }
        let mut sharded = ShardedEventQueue::new(shards, SimDuration::from_millis(window_ms));
        sharded.set_thread_refill(threads);
        for &(t, v) in &plan {
            sharded.schedule(v % shards.max(1), SimTime(t), v);
        }

        let mut follow = Rng(seed ^ 0x9e37_79b9);
        let mut follow2 = Rng(seed ^ 0x9e37_79b9);
        let mut next_id = n;
        let mut next_id2 = n;
        loop {
            let a = reference.pop();
            let b = sharded.pop();
            assert_eq!(a, b, "divergent pop (seed {seed}, K {shards})");
            let Some(v) = a else { break };
            assert_eq!(reference.now(), sharded.now());
            // Every third event schedules one or two follow-ups: one nearby
            // (often same-time), one far out — exercising late/next/far.
            if v % 3 == 0 && next_id < n + 600 {
                let near = follow.next() % 1_500; // 0..1.5ms ahead
                reference.schedule_in(SimDuration(near), next_id);
                let far = 500_000 + follow.next() % 3_000_000;
                reference.schedule_in(SimDuration(far), next_id + 1);
                next_id += 2;
            }
            if v % 3 == 0 && next_id2 < n + 600 {
                let near = follow2.next() % 1_500;
                sharded.schedule_in(next_id2 % shards.max(1), SimDuration(near), next_id2);
                let far = 500_000 + follow2.next() % 3_000_000;
                sharded.schedule_in(
                    (next_id2 + 1) % shards.max(1),
                    SimDuration(far),
                    next_id2 + 1,
                );
                next_id2 += 2;
            }
        }
        assert_eq!(reference.processed(), sharded.processed());
        assert_eq!(sharded.pending(), 0);
    }

    #[test]
    fn matches_event_queue_across_k() {
        for seed in [1u64, 7, 42] {
            for k in [1u32, 2, 4, 8] {
                assert_equivalent(seed, k, 10, false);
            }
        }
    }

    #[test]
    fn matches_event_queue_with_thread_refill() {
        for k in [2u32, 8] {
            assert_equivalent(99, k, 1, true);
        }
    }

    #[test]
    fn window_extremes_do_not_change_order() {
        // One-µs windows (a barrier per distinct timestamp) and huge
        // windows (everything in one run) must both merge identically.
        assert_equivalent(5, 4, 1, false);
        assert_equivalent(5, 4, 1_000_000, false);
    }

    #[test]
    fn same_time_is_fifo_across_shards() {
        let mut q = ShardedEventQueue::new(4, SimDuration::from_millis(5));
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.schedule(i % 4, t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i), "global seq must order same-time pops");
        }
    }

    #[test]
    fn batch_drains_one_timestamp_across_lanes() {
        let mut q = ShardedEventQueue::new(2, SimDuration::from_millis(1));
        q.schedule(0, SimTime::from_secs(2), 20);
        q.schedule(1, SimTime::from_secs(1), 10);
        q.schedule(0, SimTime::from_secs(1), 11);
        q.schedule(1, SimTime::from_secs(1), 12);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch_at_now(&mut out), 3);
        assert_eq!(out, vec![10, 11, 12]);
        assert_eq!(q.now(), SimTime::from_secs(1));
        out.clear();
        assert_eq!(q.pop_batch_at_now(&mut out), 1);
        assert_eq!(out, vec![20]);
        assert_eq!(q.processed(), 4);
    }

    #[test]
    fn batch_excludes_events_scheduled_during_handling() {
        let mut q = ShardedEventQueue::new(2, SimDuration::from_millis(1));
        q.schedule(0, SimTime::from_secs(1), "a");
        q.schedule(1, SimTime::from_secs(1), "b");
        let mut out = Vec::new();
        q.pop_batch_at_now(&mut out);
        assert_eq!(out, vec!["a", "b"]);
        q.schedule_now(1, "c");
        q.schedule(0, SimTime::from_secs(1), "d");
        out.clear();
        assert_eq!(q.pop_batch_at_now(&mut out), 2);
        assert_eq!(out, vec!["c", "d"]);
    }

    #[test]
    fn peek_time_sees_past_the_horizon() {
        let mut q: ShardedEventQueue<()> = ShardedEventQueue::new(2, SimDuration::from_millis(1));
        assert_eq!(q.peek_time(), None);
        q.schedule(1, SimTime::from_secs(30), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(30)));
        q.schedule(0, SimTime::from_millis(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
    }

    #[test]
    fn stats_count_events_messages_and_barriers() {
        let mut q = ShardedEventQueue::new(2, SimDuration::from_millis(1));
        q.schedule(0, SimTime::from_millis(1), 0u32); // seeding: no context, no cross count
        q.schedule(1, SimTime::from_millis(5), 1);
        assert_eq!(q.pop(), Some(0));
        // Handling context is shard 0; targeting shard 1 is cross-shard.
        q.schedule_in(1, SimDuration::from_millis(1), 2);
        q.schedule_in(0, SimDuration::from_millis(1), 3);
        while q.pop().is_some() {}
        let s = q.stats();
        assert_eq!(s.shards, 2);
        assert_eq!(s.events_per_shard, vec![2, 2]);
        assert_eq!(s.events_per_shard.iter().sum::<u64>(), q.processed());
        assert_eq!(s.cross_shard_messages, 1);
        assert!(s.window_barriers >= 2, "distinct windows force barriers");
    }

    #[test]
    fn k1_is_a_single_lane_superset_of_event_queue() {
        // At K = 1 every event is same-shard; stats reflect that.
        let mut q = ShardedEventQueue::new(1, SimDuration::from_millis(1));
        for i in 0..10u32 {
            q.schedule(0, SimTime::from_millis(u64::from(i % 3)), i);
        }
        while q.pop().is_some() {}
        let s = q.stats();
        assert_eq!(s.cross_shard_messages, 0);
        assert_eq!(s.events_per_shard, vec![10]);
        assert_eq!(s.stall_windows, 0, "a lone lane can never stall");
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = ShardedEventQueue::new(2, SimDuration::from_millis(1));
        q.schedule(0, SimTime::from_secs(10), ());
        q.pop();
        q.schedule(1, SimTime::from_secs(1), ());
    }
}
