//! The discrete-event queue: a deterministic time-ordered priority queue.

use crate::time::{SimDuration, SimTime};

/// One scheduled entry. Time and insertion sequence are packed into a
/// single `u128` key (`time << 64 | seq`) so heap ordering is one integer
/// compare and the tie-break needs no field of its own: same-timestamp
/// events pop in FIFO order because later insertions get larger sequence
/// numbers in the low bits. Determinism matters: every experiment in the
/// reproduction must be exactly repeatable from its seed.
pub(crate) struct Scheduled<E> {
    pub(crate) key: u128,
    pub(crate) event: E,
}

impl<E> Scheduled<E> {
    #[inline]
    pub(crate) fn at(&self) -> SimTime {
        SimTime((self.key >> 64) as u64)
    }
}

/// A 4-ary min-heap keyed on the packed `u128`. Keys are unique (the
/// sequence number is in the low bits), so the pop order is a total
/// order and independent of heap shape — swapping the container cannot
/// change simulation behavior. Compared to `std::collections::BinaryHeap`
/// this halves the tree depth, which matters because sift-down cache
/// misses dominate the event loop at cluster scale.
pub(crate) struct MinHeap4<E> {
    v: Vec<Scheduled<E>>,
}

impl<E> MinHeap4<E> {
    pub(crate) const fn new() -> Self {
        MinHeap4 { v: Vec::new() }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.v.len()
    }

    #[inline]
    pub(crate) fn peek(&self) -> Option<&Scheduled<E>> {
        self.v.first()
    }

    pub(crate) fn push(&mut self, s: Scheduled<E>) {
        self.v.push(s);
        let mut i = self.v.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.v[parent].key <= self.v[i].key {
                break;
            }
            self.v.swap(i, parent);
            i = parent;
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.v.is_empty() {
            return None;
        }
        let out = self.v.swap_remove(0);
        let n = self.v.len();
        let mut i = 0;
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            let mut min = first;
            let end = (first + 4).min(n);
            for c in first + 1..end {
                if self.v[c].key < self.v[min].key {
                    min = c;
                }
            }
            if self.v[i].key <= self.v[min].key {
                break;
            }
            self.v.swap(i, min);
            i = min;
        }
        Some(out)
    }
}

/// The simulation clock plus pending-event queue.
///
/// `EventQueue` is deliberately minimal: domains (the cluster, the
/// scheduler) define their own event enums and drive a loop of
/// [`EventQueue::pop`] calls, handling each event and scheduling follow-ups.
///
/// ```
/// use swift_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(SimDuration::from_secs(2), "second");
/// q.schedule_in(SimDuration::from_secs(1), "first");
/// assert_eq!(q.pop(), Some("first"));
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// assert_eq!(q.pop(), Some("second"));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: MinHeap4<E>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

// Manual impl so `E: Debug` is not required; pending events are summarised
// by count rather than dumped.
impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: MinHeap4::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Number of events still pending (alias of [`EventQueue::pending`],
    /// for call sites that expect collection naming).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.len() == 0
    }

    /// Schedules `event` at absolute time `at`. Scheduling in the past
    /// (before [`EventQueue::now`]) is a logic error and panics in debug
    /// builds; in release builds the event fires "now" to keep the clock
    /// monotonic.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        self.heap.push(Scheduled {
            key: (u128::from(at.0) << 64) | u128::from(self.seq),
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedules `event` at the current time (after all other events already
    /// queued for this instant, preserving FIFO order).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Pops the earliest pending event and advances the clock to its
    /// timestamp. Returns `None` when the simulation has quiesced.
    pub fn pop(&mut self) -> Option<E> {
        let s = self.heap.pop()?;
        self.now = s.at();
        self.processed += 1;
        Some(s.event)
    }

    /// Drains every event scheduled for the earliest pending timestamp
    /// into `out` (in FIFO order), advancing the clock once. Returns the
    /// number of events drained (0 when the queue is empty).
    ///
    /// Events scheduled *while the batch is handled* — even at the same
    /// timestamp — are not part of the batch: they carry later sequence
    /// numbers, so popping them on the next call preserves the exact
    /// one-at-a-time event order.
    pub fn pop_batch_at_now(&mut self, out: &mut Vec<E>) -> usize {
        let Some(first) = self.heap.pop() else {
            return 0;
        };
        let t = first.at();
        self.now = t;
        self.processed += 1;
        out.push(first.event);
        let mut n = 1;
        while self.heap.peek().is_some_and(|s| s.at() == t) {
            let s = self.heap.pop().expect("peeked entry exists");
            self.processed += 1;
            out.push(s.event);
            n += 1;
        }
        n
    }

    /// Timestamp of the next pending event, if any, without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(Scheduled::at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 5);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(3), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), None);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "a");
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
        // schedule_now lands at the current clock
        q.schedule_now("b");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule_in(SimDuration::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(15)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn batch_drains_exactly_one_timestamp_fifo() {
        let mut q = EventQueue::new();
        // Mixed-timestamp load, interleaved insertion order.
        q.schedule(SimTime::from_secs(2), 20);
        q.schedule(SimTime::from_secs(1), 10);
        q.schedule(SimTime::from_secs(2), 21);
        q.schedule(SimTime::from_secs(1), 11);
        q.schedule(SimTime::from_secs(1), 12);

        let mut out = Vec::new();
        assert_eq!(q.pop_batch_at_now(&mut out), 3);
        assert_eq!(out, vec![10, 11, 12], "FIFO within the batch");
        assert_eq!(q.now(), SimTime::from_secs(1));
        assert_eq!(q.len(), 2);

        out.clear();
        assert_eq!(q.pop_batch_at_now(&mut out), 2);
        assert_eq!(out, vec![20, 21]);
        assert_eq!(q.now(), SimTime::from_secs(2));

        out.clear();
        assert_eq!(q.pop_batch_at_now(&mut out), 0);
        assert!(out.is_empty());
        assert_eq!(q.processed(), 5);
    }

    #[test]
    fn batch_excludes_events_scheduled_during_handling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(1), "b");
        let mut out = Vec::new();
        q.pop_batch_at_now(&mut out);
        assert_eq!(out, vec!["a", "b"]);
        // A handler scheduling at the current instant lands in the *next*
        // batch, exactly as it would pop after the pending ones.
        q.schedule_now("c");
        q.schedule(SimTime::from_secs(1), "d");
        out.clear();
        assert_eq!(q.pop_batch_at_now(&mut out), 2);
        assert_eq!(out, vec!["c", "d"]);
        assert_eq!(q.now(), SimTime::from_secs(1));
    }

    #[test]
    fn batch_interleaves_with_single_pop_identically() {
        // The batched and unbatched drains of the same schedule must agree.
        let schedule = |q: &mut EventQueue<u32>| {
            for i in 0..50u32 {
                q.schedule(SimTime::from_millis(u64::from(i % 7)), i);
            }
        };
        let mut a = EventQueue::new();
        schedule(&mut a);
        let mut one_at_a_time = Vec::new();
        while let Some(e) = a.pop() {
            one_at_a_time.push(e);
        }

        let mut b = EventQueue::new();
        schedule(&mut b);
        let mut batched = Vec::new();
        while b.pop_batch_at_now(&mut batched) > 0 {}
        assert_eq!(one_at_a_time, batched);
    }
}
