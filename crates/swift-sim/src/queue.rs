//! The discrete-event queue: a deterministic time-ordered priority queue.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: ordered by time, then by insertion sequence so
/// same-timestamp events pop in FIFO order. Determinism matters: every
/// experiment in the reproduction must be exactly repeatable from its seed.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulation clock plus pending-event queue.
///
/// `EventQueue` is deliberately minimal: domains (the cluster, the
/// scheduler) define their own event enums and drive a loop of
/// [`EventQueue::pop`] calls, handling each event and scheduling follow-ups.
///
/// ```
/// use swift_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(SimDuration::from_secs(2), "second");
/// q.schedule_in(SimDuration::from_secs(1), "first");
/// assert_eq!(q.pop(), Some("first"));
/// assert_eq!(q.now(), SimTime::from_secs(1));
/// assert_eq!(q.pop(), Some("second"));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

// Manual impl so `E: Debug` is not required; pending events are summarised
// by count rather than dumped.
impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`. Scheduling in the past
    /// (before [`EventQueue::now`]) is a logic error and panics in debug
    /// builds; in release builds the event fires "now" to keep the clock
    /// monotonic.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedules `event` at the current time (after all other events already
    /// queued for this instant, preserving FIFO order).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Pops the earliest pending event and advances the clock to its
    /// timestamp. Returns `None` when the simulation has quiesced.
    pub fn pop(&mut self) -> Option<E> {
        let s = self.heap.pop()?;
        self.now = s.at;
        self.processed += 1;
        Some(s.event)
    }

    /// Timestamp of the next pending event, if any, without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 5);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(3), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), None);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "a");
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
        // schedule_now lands at the current clock
        q.schedule_now("b");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule_in(SimDuration::from_secs(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(15)));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }
}
