//! Seedable RNG and the distributions the reproduction needs.
//!
//! The trace generator (Fig. 8), the network jitter model and the failure
//! injector all sample from a handful of distributions. Uniform sampling
//! comes from an in-tree xoshiro256++ generator (the workspace builds
//! offline, so no `rand`); the shaped distributions (log-normal via
//! Box–Muller, exponential, Zipf, Pareto-bounded) are implemented on top.

/// The xoshiro256++ core: fast, high-quality, and — crucially for this
/// reproduction — fully deterministic across platforms and Rust versions.
/// State is seeded from a `u64` through SplitMix64, per the reference
/// implementation's recommendation.
#[derive(Clone, Debug)]
struct Xoshiro256pp {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// A deterministic RNG with the sampling helpers used across the
/// reproduction. Wraps a xoshiro256++ core seeded from a `u64` so every
/// experiment is exactly repeatable.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: Xoshiro256pp,
    /// Cached spare normal variate from the last Box–Muller draw.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Creates an RNG from a seed. The same seed always produces the same
    /// sequence of samples.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256pp::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child RNG; handy for giving each simulated
    /// machine or job its own stream without cross-coupling draw order.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let seed = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(seed)
    }

    /// Uniform `u64` over the full range.
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, 1)`: the top 53 bits of a draw, scaled.
    pub fn f64(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    ///
    /// Uses Lemire-style rejection sampling so the distribution is exactly
    /// uniform (no modulo bias) and the draw count stays deterministic for
    /// a given seed and call sequence.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Power-of-two spans (including span 1) need no rejection.
        if span.is_power_of_two() {
            return lo + (self.inner.next_u64() & (span - 1));
        }
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.inner.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Uniformly chooses one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.range(0, items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle, deterministic for a given seed.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller (polar-free form, caches the spare).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Log-normal with the given parameters of the *underlying* normal
    /// (`mu`, `sigma`): `exp(mu + sigma * Z)`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Log-normal parameterised by the target distribution's *median* and
    /// the multiplicative spread `sigma` — more convenient for trace
    /// fitting ("median job runtime 18 s, long tail").
    pub fn log_normal_median(&mut self, median: f64, sigma: f64) -> f64 {
        self.log_normal(median.ln(), sigma)
    }

    /// Exponential with mean `mean`.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Zipf-distributed rank in `[1, n]` with exponent `s`, by inverse-CDF
    /// over the precomputable harmonic weights. O(n) per call for small `n`;
    /// use [`ZipfTable`] for repeated sampling.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        ZipfTable::new(n, s).sample(self)
    }
}

/// Precomputed inverse-CDF table for Zipf sampling.
#[derive(Debug)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the table for ranks `1..=n` with exponent `s`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Samples a rank in `[1, n]`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) | Err(i) => (i as u64 + 1).min(self.cdf.len() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn forks_are_decoupled() {
        let mut root = SimRng::new(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        // Not a strong statistical claim — just that the streams differ.
        let s1: Vec<u64> = (0..8).map(|_| (c1.f64() * 1e9) as u64).collect();
        let s2: Vec<u64> = (0..8).map(|_| (c2.f64() * 1e9) as u64).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn log_normal_median_hits_target() {
        let mut rng = SimRng::new(2);
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.log_normal_median(18.0, 1.0)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 18.0).abs() / 18.0 < 0.05, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(3);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(30.0)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = SimRng::new(4);
        let table = ZipfTable::new(100, 1.2);
        let n = 50_000;
        let ones = (0..n).filter(|_| table.sample(&mut rng) == 1).count();
        // With s=1.2 over 100 ranks, rank 1 holds ~27% of the mass.
        let frac = ones as f64 / n as f64;
        assert!(frac > 0.2 && frac < 0.35, "rank-1 fraction {frac}");
        // Range check.
        for _ in 0..1000 {
            let r = table.sample(&mut rng);
            assert!((1..=100).contains(&r));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
