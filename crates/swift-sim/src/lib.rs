//! # swift-sim — deterministic discrete-event simulation kernel
//!
//! The Swift paper evaluates on 100- and 2 000-node production clusters.
//! This reproduction replaces the hardware with a calibrated discrete-event
//! simulation; `swift-sim` is the kernel every simulated experiment runs on:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time;
//! * [`EventQueue`] — a deterministic time-ordered event queue (FIFO among
//!   same-timestamp events) that doubles as the simulation clock;
//! * [`SimRng`] — a seedable RNG with the log-normal / exponential / Zipf
//!   distributions the trace generator and cost models sample from;
//! * [`stats`] — quartile ("four quartile method" [26] in the paper) and
//!   CDF helpers used to report every figure.
//!
//! Determinism is a hard requirement: every experiment must be exactly
//! repeatable from its seed, which is why same-time events pop FIFO and all
//! randomness flows through explicitly seeded [`SimRng`] streams.

#![warn(missing_docs)]

mod queue;
mod rng;
mod shard;
pub mod stats;
mod time;

pub use queue::EventQueue;
pub use rng::{SimRng, ZipfTable};
pub use shard::{ShardStats, ShardedEventQueue};
pub use time::{SimDuration, SimTime};
