//! The engine driver: runs an [`EngineJob`] on real data, moving every
//! shuffle payload through a real Cache Worker store (bounded memory, LRU
//! spill files) and recovering injected task failures through the same
//! `swift-ft` planner the cluster simulation uses.
//!
//! Execution is stage-wise in topological order (tasks of a stage run
//! concurrently on scoped threads). Graphlet structure still governs the
//! data path: pipeline consumers read segments their gang-mates produced,
//! barrier consumers pull staged segments "later" — in both cases through
//! the [`CacheWorkerStore`], which is exactly the Local/Remote Shuffle
//! data path of §III-B. Timing effects of gang scheduling are the
//! simulator's job (`swift-scheduler`); the engine demonstrates
//! *correctness* of the operator set, the shuffle transports and the
//! recovery logic on real rows.

use crate::codec::{decode_rows, encode_rows};
use crate::error::{EngineError, Result};
use crate::plan::{EngineJob, OutputPartitioning, StagePlan};
use crate::task::{run_task, TaskInputs};
use crate::value::{Catalog, Row};
use std::collections::HashSet;
use std::sync::Arc;
use swift_dag::{partition, StageId, TaskId};
use swift_ft::{plan_recovery, ExecutionSnapshot, FailureKind, TaskRunState};
use swift_shuffle::sync::Mutex;
use swift_shuffle::{CacheWorkerStore, SegmentKey};

/// Options controlling one engine run.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Tasks that fail (once) on their first attempt — failure-injection
    /// hooks for exercising §IV-B recovery on real data.
    pub fail_once: Vec<TaskId>,
    /// Maximum attempts per task before giving up (0 means default of 3).
    pub max_attempts: u32,
}

/// Counters from one engine run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Number of graphlets the job partitioned into.
    pub graphlets: usize,
    /// Task executions, including recovery re-runs.
    pub tasks_run: u64,
    /// Task executions that were recovery re-runs.
    pub recovered_tasks: u64,
    /// Bytes moved through the shuffle store.
    pub shuffled_bytes: u64,
    /// Bytes the Cache Worker spilled to disk under memory pressure.
    pub spilled_bytes: u64,
}

/// Result of one engine run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The sink stage's output rows (concatenated across sink tasks in
    /// task order, so a `Single`-partitioned sorted sink stays sorted).
    pub rows: Vec<Row>,
    /// Execution counters.
    pub stats: RunStats,
}

/// A multi-threaded local execution engine for Swift operator DAGs.
#[derive(Debug)]
pub struct Engine {
    catalog: Arc<Catalog>,
    cache_capacity: u64,
}

impl Engine {
    /// Creates an engine over `catalog` with a 256 MiB Cache Worker.
    pub fn new(catalog: Catalog) -> Self {
        Engine {
            catalog: Arc::new(catalog),
            cache_capacity: 256 << 20,
        }
    }

    /// Overrides the Cache Worker memory capacity (small values force real
    /// LRU spill — see the spill tests and the cache-pressure ablation).
    pub fn with_cache_capacity(mut self, bytes: u64) -> Self {
        self.cache_capacity = bytes;
        self
    }

    /// The engine's table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Runs `job` and returns the sink rows.
    pub fn run(&self, job: &EngineJob) -> Result<Vec<Row>> {
        Ok(self.run_with(job, RunOptions::default())?.rows)
    }

    /// Runs `job` with failure injection / recovery options.
    pub fn run_with(&self, job: &EngineJob, opts: RunOptions) -> Result<RunOutcome> {
        job.validate()?;
        let dag = &job.dag;
        let part = partition(dag);
        let store = CacheWorkerStore::new(self.cache_capacity)?;
        let job_key = dag.job_id.raw();
        let max_attempts = if opts.max_attempts == 0 {
            3
        } else {
            opts.max_attempts
        };

        let mut stats = RunStats {
            graphlets: part.len(),
            ..RunStats::default()
        };
        let mut sink_rows: Vec<(u32, Vec<Row>)> = Vec::new();
        let mut finished: HashSet<TaskId> = HashSet::new();
        // Injection bookkeeping: a listed task fails exactly once.
        let mut pending_failures: HashSet<TaskId> = opts.fail_once.iter().copied().collect();

        for &stage_id in dag.topo_order() {
            let stage = dag.stage(stage_id);
            let plan = &job.plans[stage_id.index()];
            let mut to_run: Vec<u32> = (0..stage.task_count).collect();
            let mut attempt = 0u32;
            loop {
                attempt += 1;
                let results = self.run_stage_tasks(
                    job,
                    plan,
                    stage_id,
                    &to_run,
                    &store,
                    job_key,
                    &mut pending_failures,
                )?;
                stats.tasks_run += to_run.len() as u64;
                if attempt > 1 {
                    stats.recovered_tasks += to_run.len() as u64;
                }

                let mut failed: Vec<TaskId> = Vec::new();
                for (idx, res) in to_run.iter().zip(results) {
                    match res {
                        Ok(rows) => {
                            finished.insert(TaskId::new(stage_id, *idx));
                            if plan.outputs.is_empty() {
                                sink_rows.push((*idx, rows));
                            }
                        }
                        Err(EngineError::TaskFailed { .. }) => {
                            failed.push(TaskId::new(stage_id, *idx))
                        }
                        Err(other) => return Err(other),
                    }
                }
                if failed.is_empty() {
                    break;
                }
                if attempt >= max_attempts {
                    return Err(EngineError::TaskFailed {
                        task: format!("{} after {attempt} attempts", failed[0]),
                    });
                }
                // Plan recovery through the same §IV-B logic as the
                // simulator; stage-wise execution means successors have not
                // run yet, so the plan re-runs exactly the failed tasks
                // (idempotent case) and re-fetches their inputs from the
                // Cache Worker store.
                let snap = EngineSnap {
                    finished: &finished,
                    failed: &failed,
                };
                let mut rerun: HashSet<TaskId> = HashSet::new();
                for &f in &failed {
                    let plan = plan_recovery(dag, &part, f, FailureKind::ProcessRestart, &snap);
                    if plan.abort_job {
                        return Err(EngineError::TaskFailed {
                            task: format!("{f} (unrecoverable)"),
                        });
                    }
                    rerun.extend(plan.rerun);
                }
                let mut next: Vec<u32> = rerun
                    .into_iter()
                    .filter(|t| t.stage == stage_id)
                    .map(|t| t.index)
                    .collect();
                next.sort_unstable();
                to_run = next;
            }
        }

        stats.shuffled_bytes = store.spilled_bytes_total() + store.in_memory_bytes();
        stats.spilled_bytes = store.spilled_bytes_total();
        store.delete_job(job_key)?;

        // Order sink output by task index so Single-partitioned sorted
        // results remain globally sorted.
        sink_rows.sort_by_key(|(idx, _)| *idx);
        let rows = sink_rows.into_iter().flat_map(|(_, r)| r).collect();
        Ok(RunOutcome { rows, stats })
    }

    /// Runs the given tasks of one stage concurrently; returns one result
    /// per task in `to_run` order.
    #[allow(clippy::too_many_arguments)]
    fn run_stage_tasks(
        &self,
        job: &EngineJob,
        plan: &StagePlan,
        stage_id: StageId,
        to_run: &[u32],
        store: &CacheWorkerStore,
        job_key: u64,
        pending_failures: &mut HashSet<TaskId>,
    ) -> Result<Vec<std::result::Result<Vec<Row>, EngineError>>> {
        let dag = &job.dag;
        let stage = dag.stage(stage_id);
        let catalog = Arc::clone(&self.catalog);
        // Which of this wave's tasks must fail (consume the injection).
        let failing: HashSet<u32> = to_run
            .iter()
            .copied()
            .filter(|&i| pending_failures.remove(&TaskId::new(stage_id, i)))
            .collect();

        type SlotResult = (usize, std::result::Result<Vec<Row>, EngineError>);
        let results: Mutex<Vec<SlotResult>> = Mutex::new(Vec::with_capacity(to_run.len()));
        std::thread::scope(|scope| {
            for (slot, &task_index) in to_run.iter().enumerate() {
                let catalog = &catalog;
                let results = &results;
                let failing = &failing;
                scope.spawn(move || {
                    let res = (|| -> std::result::Result<Vec<Row>, EngineError> {
                        // Gather inputs from the shuffle store.
                        let mut inputs: TaskInputs = Vec::new();
                        for (edge_idx, e) in dag.incoming_indexed(stage_id) {
                            let m = dag.stage(e.src).task_count;
                            let payloads =
                                store.collect_keep(job_key, edge_idx as u32, task_index, m)?;
                            let mut per_producer = Vec::with_capacity(m as usize);
                            for p in payloads {
                                per_producer.push(decode_rows(p)?);
                            }
                            inputs.push(per_producer);
                        }
                        if failing.contains(&task_index) {
                            return Err(EngineError::TaskFailed {
                                task: format!("{} (injected)", TaskId::new(stage_id, task_index)),
                            });
                        }
                        let rows = run_task(catalog, plan, task_index, stage.task_count, &inputs)?;
                        // Route output to each outgoing edge.
                        for (out_i, (edge_idx, e)) in dag.outgoing_indexed(stage_id).enumerate() {
                            let n = dag.stage(e.dst).task_count;
                            let buckets = route(&rows, &plan.outputs[out_i], n);
                            for (p, bucket) in buckets.into_iter().enumerate() {
                                store.put(
                                    SegmentKey {
                                        job: job_key,
                                        edge: edge_idx as u32,
                                        producer: task_index,
                                        partition: p as u32,
                                    },
                                    encode_rows(&bucket),
                                )?;
                            }
                        }
                        Ok(rows)
                    })();
                    results.lock().push((slot, res));
                });
            }
        });
        let mut collected = results.into_inner();
        collected.sort_by_key(|(slot, _)| *slot);
        Ok(collected.into_iter().map(|(_, r)| r).collect())
    }
}

/// Splits `rows` into `n` per-consumer buckets.
fn route(rows: &[Row], part: &OutputPartitioning, n: u32) -> Vec<Vec<Row>> {
    let n = n as usize;
    let mut buckets: Vec<Vec<Row>> = vec![Vec::new(); n];
    match part {
        OutputPartitioning::Hash(cols) => {
            for row in rows {
                let b = (crate::plan::hash_key(row, cols) % n as u64) as usize;
                buckets[b].push(row.clone());
            }
        }
        OutputPartitioning::Single => {
            buckets[0] = rows.to_vec();
        }
        OutputPartitioning::Broadcast => {
            for b in &mut buckets {
                *b = rows.to_vec();
            }
        }
        OutputPartitioning::RoundRobin => {
            for (i, row) in rows.iter().enumerate() {
                buckets[i % n].push(row.clone());
            }
        }
    }
    buckets
}

/// Snapshot of engine progress for the recovery planner.
struct EngineSnap<'a> {
    finished: &'a HashSet<TaskId>,
    failed: &'a [TaskId],
}

impl ExecutionSnapshot for EngineSnap<'_> {
    fn task_state(&self, task: TaskId) -> TaskRunState {
        if self.finished.contains(&task) {
            TaskRunState::Finished
        } else if self.failed.contains(&task) {
            TaskRunState::Running
        } else {
            TaskRunState::NotStarted
        }
    }

    fn delivered(&self, _from: TaskId, _to: TaskId) -> bool {
        // Stage-wise execution: consumers have not started when a producer
        // stage is still being (re-)run.
        false
    }
}
