//! Scalar expressions and aggregate functions.

use crate::error::EngineError;
use crate::value::{Row, Value};

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// A scalar expression evaluated against one row.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Column by position.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// SQL `LIKE` with `%` wildcards (and `_` single-char).
    Like {
        /// String operand.
        expr: Box<Expr>,
        /// Pattern, e.g. `"%green%"`.
        pattern: String,
    },
    /// `substr(expr, start, len)` with 1-based `start` (SQL convention).
    Substr {
        /// String operand.
        expr: Box<Expr>,
        /// 1-based start.
        start: usize,
        /// Length.
        len: usize,
    },
    /// `IS NULL`.
    IsNull(Box<Expr>),
}

impl Expr {
    /// Convenience: column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Convenience: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Convenience: binary op.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin {
            op,
            l: Box::new(l),
            r: Box::new(r),
        }
    }

    /// Evaluates against `row`.
    pub fn eval(&self, row: &Row) -> Result<Value, EngineError> {
        match self {
            Expr::Col(i) => row.get(*i).cloned().ok_or_else(|| {
                EngineError::Type(format!("column {i} out of range ({} cols)", row.len()))
            }),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Not(e) => match e.eval(row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(EngineError::Type(format!("NOT on non-boolean {other}"))),
            },
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(row)?.is_null())),
            Expr::Like { expr, pattern } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let s = v
                    .as_str()
                    .ok_or_else(|| EngineError::Type(format!("LIKE on non-string {v}")))?;
                Ok(Value::Bool(like_match(s, pattern)))
            }
            Expr::Substr { expr, start, len } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let s = v
                    .as_str()
                    .ok_or_else(|| EngineError::Type(format!("substr on non-string {v}")))?;
                let start = start.saturating_sub(1);
                let out: String = s.chars().skip(start).take(*len).collect();
                Ok(Value::Str(out))
            }
            Expr::Bin { op, l, r } => {
                let lv = l.eval(row)?;
                let rv = r.eval(row)?;
                eval_bin(*op, lv, rv)
            }
        }
    }
}

fn eval_bin(op: BinOp, l: Value, r: Value) -> Result<Value, EngineError> {
    use BinOp::*;
    match op {
        And | Or => {
            // SQL three-valued logic.
            let lb = match &l {
                Value::Bool(b) => Some(*b),
                Value::Null => None,
                other => return Err(EngineError::Type(format!("{op:?} on non-boolean {other}"))),
            };
            let rb = match &r {
                Value::Bool(b) => Some(*b),
                Value::Null => None,
                other => return Err(EngineError::Type(format!("{op:?} on non-boolean {other}"))),
            };
            let out = match (op, lb, rb) {
                (And, Some(false), _) | (And, _, Some(false)) => Some(false),
                (And, Some(true), Some(true)) => Some(true),
                (Or, Some(true), _) | (Or, _, Some(true)) => Some(true),
                (Or, Some(false), Some(false)) => Some(false),
                _ => None,
            };
            Ok(out.map_or(Value::Null, Value::Bool))
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l.total_cmp(&r);
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                Ne => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic stays integral except division.
            if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                return Ok(match op {
                    Add => Value::Int(a.wrapping_add(*b)),
                    Sub => Value::Int(a.wrapping_sub(*b)),
                    Mul => Value::Int(a.wrapping_mul(*b)),
                    Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Float(*a as f64 / *b as f64)
                        }
                    }
                    _ => unreachable!(),
                });
            }
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EngineError::Type(format!(
                        "arithmetic on non-numeric {l} / {r}"
                    )))
                }
            };
            Ok(Value::Float(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                _ => unreachable!(),
            }))
        }
    }
}

/// Glob-style match for SQL `LIKE`: `%` = any run, `_` = any single char.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // Iterative two-pointer with backtracking on the last `%`.
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = pi;
            star_s = si;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `sum(expr)`
    Sum,
    /// `count(expr)` (non-null inputs) / `count(*)` when the input is a
    /// literal.
    Count,
    /// `avg(expr)`
    Avg,
    /// `min(expr)`
    Min,
    /// `max(expr)`
    Max,
}

/// Running accumulator for one aggregate.
#[derive(Clone, Debug)]
pub struct Accumulator {
    func: AggFunc,
    count: u64,
    sum: f64,
    int_sum: i64,
    ints_only: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Self {
        Accumulator {
            func,
            count: 0,
            sum: 0.0,
            int_sum: 0,
            ints_only: true,
            min: None,
            max: None,
        }
    }

    /// Folds one input value.
    pub fn push(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        match v {
            Value::Int(i) => {
                self.int_sum = self.int_sum.wrapping_add(*i);
                self.sum += *i as f64;
            }
            Value::Float(f) => {
                self.ints_only = false;
                self.sum += f;
            }
            _ => {}
        }
        if self.min.as_ref().is_none_or(|m| v.total_cmp(m).is_lt()) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v.total_cmp(m).is_gt()) {
            self.max = Some(v.clone());
        }
    }

    /// Final aggregate value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.ints_only {
                    Value::Int(self.int_sum)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![
            Value::Int(10),
            Value::Str("green apple".into()),
            Value::Float(2.5),
            Value::Null,
        ]
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::bin(BinOp::Mul, Expr::col(0), Expr::lit(3i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(30));
        let e = Expr::bin(BinOp::Add, Expr::col(0), Expr::col(2));
        assert_eq!(e.eval(&row()).unwrap(), Value::Float(12.5));
        let e = Expr::bin(BinOp::Gt, Expr::col(0), Expr::lit(5i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
        let e = Expr::bin(BinOp::Div, Expr::lit(7i64), Expr::lit(2i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Float(3.5));
        let e = Expr::bin(BinOp::Div, Expr::lit(7i64), Expr::lit(0i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
    }

    #[test]
    fn null_propagation() {
        let e = Expr::bin(BinOp::Add, Expr::col(3), Expr::lit(1i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        let e = Expr::bin(BinOp::Eq, Expr::col(3), Expr::col(3));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        let e = Expr::IsNull(Box::new(Expr::col(3)));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        let t = Expr::lit(true);
        let n = Expr::col(3);
        assert_eq!(
            Expr::bin(BinOp::And, t.clone(), n.clone())
                .eval(&row())
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            Expr::bin(BinOp::Or, t, n.clone()).eval(&row()).unwrap(),
            Value::Bool(true)
        );
        let f = Expr::lit(false);
        assert_eq!(
            Expr::bin(BinOp::And, f, n).eval(&row()).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("green apple", "%green%"));
        assert!(like_match("green", "green"));
        assert!(like_match("greet", "gre_t"));
        assert!(!like_match("red", "%green%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%"));
        assert!(like_match("forest green paint", "%green%"));
        assert!(!like_match("greenish", "green"));
    }

    #[test]
    fn substr_is_one_based() {
        let e = Expr::Substr {
            expr: Box::new(Expr::col(1)),
            start: 1,
            len: 5,
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::Str("green".into()));
        let e = Expr::Substr {
            expr: Box::new(Expr::col(1)),
            start: 7,
            len: 5,
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::Str("apple".into()));
    }

    #[test]
    fn accumulators() {
        let vals = [Value::Int(3), Value::Int(5), Value::Null, Value::Int(2)];
        let mut sum = Accumulator::new(AggFunc::Sum);
        let mut cnt = Accumulator::new(AggFunc::Count);
        let mut avg = Accumulator::new(AggFunc::Avg);
        let mut min = Accumulator::new(AggFunc::Min);
        let mut max = Accumulator::new(AggFunc::Max);
        for v in &vals {
            sum.push(v);
            cnt.push(v);
            avg.push(v);
            min.push(v);
            max.push(v);
        }
        assert_eq!(sum.finish(), Value::Int(10));
        assert_eq!(cnt.finish(), Value::Int(3));
        assert_eq!(avg.finish(), Value::Float(10.0 / 3.0));
        assert_eq!(min.finish(), Value::Int(2));
        assert_eq!(max.finish(), Value::Int(5));
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(Accumulator::new(AggFunc::Sum).finish(), Value::Null);
        assert_eq!(Accumulator::new(AggFunc::Count).finish(), Value::Int(0));
        assert_eq!(Accumulator::new(AggFunc::Min).finish(), Value::Null);
    }

    #[test]
    fn mixed_int_float_sum_degrades_to_float() {
        let mut sum = Accumulator::new(AggFunc::Sum);
        sum.push(&Value::Int(1));
        sum.push(&Value::Float(0.5));
        assert_eq!(sum.finish(), Value::Float(1.5));
    }
}
