//! # swift-engine — a real local execution engine for Swift operator DAGs
//!
//! While `swift-cluster`/`swift-scheduler` reproduce the paper's *timing*
//! results in simulation, this crate demonstrates the system's
//! *correctness* on real data: dynamically typed rows ([`Value`],
//! [`Schema`], [`Table`]), scalar expressions and aggregates ([`Expr`],
//! [`AggFunc`]), the full relational operator set of §II-A ([`ExecOp`]:
//! scans, filters, projections, hash and sort-merge joins, hash and
//! streamed aggregation, sorts, limits), and a multi-threaded driver
//! ([`Engine`]) that moves every shuffle payload through the real Cache
//! Worker store of `swift-shuffle` (bounded memory, actual LRU spill
//! files) and recovers injected task failures through the same `swift-ft`
//! planner the simulator uses.
//!
//! ```
//! use swift_engine::*;
//! use swift_dag::{DagBuilder, Operator};
//!
//! // A tiny table and a two-stage count-by-key job.
//! let mut catalog = Catalog::new();
//! let rows = vec![
//!     vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(1)],
//! ];
//! catalog.register(Table::new("t", Schema::new(vec!["k"]), rows));
//!
//! let mut b = DagBuilder::new(1, "count-by-k");
//! let scan = b.stage("scan", 2)
//!     .op(Operator::TableScan { table: "t".into() })
//!     .op(Operator::ShuffleWrite)
//!     .build();
//! let agg = b.stage("agg", 2)
//!     .op(Operator::ShuffleRead)
//!     .op(Operator::HashAggregate)
//!     .op(Operator::AdhocSink)
//!     .build();
//! b.edge(scan, agg);
//! let job = EngineJob {
//!     dag: b.build().unwrap(),
//!     plans: vec![
//!         StagePlan {
//!             ops: vec![ExecOp::Scan { table: "t".into() }],
//!             outputs: vec![OutputPartitioning::Hash(vec![0])],
//!         },
//!         StagePlan {
//!             ops: vec![ExecOp::HashAggregate {
//!                 group: vec![0],
//!                 aggs: vec![AggExpr { func: AggFunc::Count, expr: Expr::lit(1i64) }],
//!             }],
//!             outputs: vec![],
//!         },
//!     ],
//!     output_columns: vec!["k".into(), "n".into()],
//! };
//! let mut out = Engine::new(catalog).run(&job).unwrap();
//! out.sort_by(|a, b| a[0].total_cmp(&b[0]));
//! assert_eq!(out, vec![
//!     vec![Value::Int(1), Value::Int(2)],
//!     vec![Value::Int(2), Value::Int(1)],
//! ]);
//! ```

#![warn(missing_docs)]

mod codec;
mod engine;
mod error;
mod expr;
mod plan;
mod task;
mod value;

pub use codec::{decode_rows, encode_rows};
pub use engine::{Engine, RunOptions, RunOutcome, RunStats};
pub use error::{EngineError, Result};
pub use expr::{like_match, Accumulator, AggFunc, BinOp, Expr};
pub use plan::{
    hash_key, AggExpr, EngineJob, ExecOp, JoinType, OutputPartitioning, SortKey, StagePlan,
    WindowFunc,
};
pub use task::{run_task, sort_rows, TaskInputs};
pub use value::{Catalog, Row, Schema, Table, Value};
