//! Engine error type.

use std::fmt;

/// Errors surfaced by plan construction or execution.
#[derive(Debug)]
pub enum EngineError {
    /// Runtime type mismatch (dynamically typed rows).
    Type(String),
    /// Unknown table, column, or stage reference.
    Unknown(String),
    /// Malformed plan (wrong operator arity, missing edge, ...).
    Plan(String),
    /// Shuffle transport / spill I/O failure.
    Io(std::io::Error),
    /// A task failed (used by failure-injection tests and surfaced when
    /// recovery is disabled or exhausted).
    TaskFailed {
        /// Human-readable description of the failed task.
        task: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Type(m) => write!(f, "type error: {m}"),
            EngineError::Unknown(m) => write!(f, "unknown reference: {m}"),
            EngineError::Plan(m) => write!(f, "invalid plan: {m}"),
            EngineError::Io(e) => write!(f, "shuffle I/O error: {e}"),
            EngineError::TaskFailed { task } => write!(f, "task failed: {task}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;
