//! Dynamically typed values, rows, schemas and tables.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A single scalar value.
///
/// The engine is dynamically typed (like the row format of most shuffle
/// systems): operators check types at runtime and surface
/// [`crate::EngineError::Type`] on mismatch.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Returns the value as `f64` for arithmetic, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the value as `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `bool`, if boolean. SQL three-valued logic:
    /// `Null` is not `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Whether this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total order used by sorts and merge joins: NULLs first, then
    /// booleans, then numerics (Int and Float compare numerically), then
    /// strings. Cross-type comparisons order by type rank, so sorting is
    /// always well-defined.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Equality for join keys and group keys: `Int` and `Float` holding the
    /// same numeric value are equal; NULL never equals anything (SQL
    /// semantics), including NULL.
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.total_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One row: a vector of values positionally matching a [`Schema`].
pub type Row = Vec<Value>;

/// Column names of a row stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<String>,
    index: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from field names. Duplicate names keep the first
    /// index (later fields are only addressable positionally).
    pub fn new<S: Into<String>>(fields: Vec<S>) -> Arc<Self> {
        let fields: Vec<String> = fields.into_iter().map(Into::into).collect();
        let mut index = HashMap::new();
        for (i, f) in fields.iter().enumerate() {
            index.entry(f.clone()).or_insert(i);
        }
        Arc::new(Schema { fields, index })
    }

    /// Field names in order.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of `name`, if present.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }
}

/// An in-memory base table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table name (catalog key).
    pub name: String,
    /// Column names.
    pub schema: Arc<Schema>,
    /// Row data.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates a table, checking row widths in debug builds.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>, rows: Vec<Row>) -> Self {
        let name = name.into();
        debug_assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row width mismatch in table {name}"
        );
        Table { name, schema, rows }
    }

    /// The rows assigned to scan task `task` of `task_count` (round-robin
    /// striping, deterministic).
    pub fn partition(&self, task: u32, task_count: u32) -> Vec<Row> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as u32) % task_count == task)
            .map(|(_, r)| r.clone())
            .collect()
    }
}

/// A named collection of tables the engine can scan.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    pub fn register(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), Arc::new(table));
    }

    /// Looks up a table.
    pub fn get(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cmp_orders_across_types() {
        let mut vals = vec![
            Value::Str("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
            Value::Int(1),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(1),
                Value::Float(1.5),
                Value::Int(2),
                Value::Str("b".into()),
            ]
        );
    }

    #[test]
    fn sql_eq_nulls_never_match() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::Int(1)));
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).sql_eq(&Value::Float(2.5)));
        assert!(Value::Str("x".into()).sql_eq(&Value::Str("x".into())));
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec!["a", "b", "c"]);
        assert_eq!(s.col("b"), Some(1));
        assert_eq!(s.col("z"), None);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn table_partition_covers_all_rows() {
        let s = Schema::new(vec!["x"]);
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let t = Table::new("t", s, rows);
        let mut all: Vec<Row> = (0..3).flat_map(|k| t.partition(k, 3)).collect();
        all.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(all.len(), 10);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r[0], Value::Int(i as i64));
        }
    }

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        c.register(Table::new("t1", Schema::new(vec!["a"]), vec![]));
        c.register(Table::new("t2", Schema::new(vec!["a"]), vec![]));
        assert_eq!(c.table_names(), vec!["t1", "t2"]);
        assert!(c.get("t1").is_some());
        assert!(c.get("nope").is_none());
    }
}
