//! Executable stage plans: the physical counterpart of a job DAG.
//!
//! Each stage of a [`swift_dag::JobDag`] gets one [`StagePlan`]: the
//! operator chain its tasks execute plus the partitioning of its output
//! toward each outgoing edge. [`EngineJob`] bundles the DAG with its plans
//! and validates that they line up.

use crate::error::{EngineError, Result};
use crate::expr::{AggFunc, Expr};
use crate::value::Value;
use swift_dag::JobDag;

/// Join type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JoinType {
    /// Inner join: only matching pairs.
    #[default]
    Inner,
    /// Left outer join: unmatched left rows padded with `right_width`
    /// NULLs (the width must be carried in the plan because an empty build
    /// side has no rows to infer it from).
    Left {
        /// Number of columns on the right side.
        right_width: usize,
    },
}

/// One sort key: column index plus direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortKey {
    /// Column index.
    pub col: usize,
    /// Descending order if `true`.
    pub desc: bool,
}

/// One aggregate output: function applied to an expression over the group.
#[derive(Clone, Debug, PartialEq)]
pub struct AggExpr {
    /// Aggregate function.
    pub func: AggFunc,
    /// Input expression (evaluated per row; `Lit(1)` for `count(*)`).
    pub expr: Expr,
}

/// A physical operator inside a stage. The first operator defines the
/// stage's primary input (a table scan, or — implicitly — the rows arriving
/// on incoming edge 0); subsequent operators transform the stream. Join
/// operators additionally consume another incoming edge.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecOp {
    /// Scan a base table; task `i` reads partition `i` of the table. Must
    /// be the first operator of a source stage.
    Scan {
        /// Table name in the engine catalog.
        table: String,
    },
    /// Keep rows where the predicate evaluates to `true`.
    Filter(Expr),
    /// Replace each row with the given expressions.
    Project(Vec<Expr>),
    /// Hash join: the current stream is the probe (left) side; the build
    /// side arrives on incoming edge `right_edge`. Output rows are
    /// `probe ++ build` (NULL-padded on the right for unmatched left rows
    /// under [`JoinType::Left`]).
    HashJoin {
        /// Index into the stage's incoming edges for the build side.
        right_edge: usize,
        /// Probe-side key columns.
        left_keys: Vec<usize>,
        /// Build-side key columns.
        right_keys: Vec<usize>,
        /// Inner or left outer.
        join_type: JoinType,
    },
    /// Sort-merge join: both inputs must be sorted by their keys
    /// (the planner arranges producing stages to sort). Output rows are
    /// `left ++ right`, NULL-padded under [`JoinType::Left`].
    MergeJoin {
        /// Index into the stage's incoming edges for the right side.
        right_edge: usize,
        /// Left-side key columns.
        left_keys: Vec<usize>,
        /// Right-side key columns.
        right_keys: Vec<usize>,
        /// Inner or left outer.
        join_type: JoinType,
    },
    /// Sort the stream. Implements both `SortBy` (partition-local sort) and
    /// `MergeSort` (merging sorted runs — a full sort is a correct merge).
    Sort(Vec<SortKey>),
    /// Hash aggregation: group by the key columns, computing the
    /// aggregates. Output rows are `group_keys ++ aggregates`.
    HashAggregate {
        /// Group-key columns.
        group: Vec<usize>,
        /// Aggregate outputs.
        aggs: Vec<AggExpr>,
    },
    /// Aggregation over input sorted by the group keys (the paper's "sort
    /// aggregate"): single linear pass, emits groups in key order.
    StreamedAggregate {
        /// Group-key columns.
        group: Vec<usize>,
        /// Aggregate outputs.
        aggs: Vec<AggExpr>,
    },
    /// Window function over sorted partitions (the paper's `Window`
    /// operator): partitions the stream by `partition_by`, orders each
    /// partition by `order_by`, and appends one computed column per row.
    Window {
        /// Partition-key columns.
        partition_by: Vec<usize>,
        /// In-partition ordering.
        order_by: Vec<SortKey>,
        /// The window function.
        func: WindowFunc,
    },
    /// Keep the first `n` rows of the stream.
    Limit(u64),
}

/// Supported window functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowFunc {
    /// 1-based position within the partition.
    RowNumber,
    /// Rank with gaps (ties share a rank).
    Rank,
    /// Running sum of the given column over the partition prefix.
    CumSum(usize),
}

/// How a stage's output rows are routed to the consumer tasks of one
/// outgoing edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OutputPartitioning {
    /// Hash of the given key columns modulo consumer task count.
    Hash(Vec<usize>),
    /// Everything to consumer task 0 (global sorts, final merges).
    Single,
    /// Replicate the full output to every consumer task (broadcast joins).
    Broadcast,
    /// Spread row-by-row (used when no key matters).
    RoundRobin,
}

/// The executable plan of one stage.
#[derive(Clone, Debug, PartialEq)]
pub struct StagePlan {
    /// Operator chain, executed in order by every task of the stage.
    pub ops: Vec<ExecOp>,
    /// Output routing per outgoing edge, in `dag.outgoing(stage)` order.
    /// Empty for sink stages.
    pub outputs: Vec<OutputPartitioning>,
}

/// A complete executable job: DAG structure plus per-stage plans.
#[derive(Clone, Debug)]
pub struct EngineJob {
    /// The job DAG (stage shapes, edges, partitioning metadata).
    pub dag: JobDag,
    /// `plans[stage]` = executable plan of that stage.
    pub plans: Vec<StagePlan>,
    /// Column names of the final (sink) output, for presentation.
    pub output_columns: Vec<String>,
}

impl EngineJob {
    /// Validates plan/DAG consistency: one plan per stage, output
    /// partitioning arity matching outgoing edges, join edge indices in
    /// range, and source/sink shape rules.
    pub fn validate(&self) -> Result<()> {
        if self.plans.len() != self.dag.stage_count() {
            return Err(EngineError::Plan(format!(
                "{} plans for {} stages",
                self.plans.len(),
                self.dag.stage_count()
            )));
        }
        for s in self.dag.stages() {
            let plan = &self.plans[s.id.index()];
            let out_edges = self.dag.outgoing(s.id).count();
            if plan.outputs.len() != out_edges {
                return Err(EngineError::Plan(format!(
                    "stage {} has {} outgoing edges but {} output partitionings",
                    s.name,
                    out_edges,
                    plan.outputs.len()
                )));
            }
            let in_edges = self.dag.incoming(s.id).count();
            for (i, op) in plan.ops.iter().enumerate() {
                match op {
                    ExecOp::Scan { .. } => {
                        if i != 0 {
                            return Err(EngineError::Plan(format!(
                                "stage {}: Scan must be the first operator",
                                s.name
                            )));
                        }
                        if in_edges != 0 {
                            return Err(EngineError::Plan(format!(
                                "stage {}: Scan stage cannot have incoming edges",
                                s.name
                            )));
                        }
                    }
                    ExecOp::HashJoin { right_edge, .. } | ExecOp::MergeJoin { right_edge, .. }
                        if *right_edge >= in_edges =>
                    {
                        return Err(EngineError::Plan(format!(
                            "stage {}: join references edge {right_edge} of {in_edges}",
                            s.name
                        )));
                    }
                    _ => {}
                }
            }
            if plan.ops.is_empty() {
                return Err(EngineError::Plan(format!(
                    "stage {} has no operators",
                    s.name
                )));
            }
            let starts_with_scan = matches!(plan.ops[0], ExecOp::Scan { .. });
            if !starts_with_scan && in_edges == 0 {
                return Err(EngineError::Plan(format!(
                    "stage {} has no input: no scan and no incoming edges",
                    s.name
                )));
            }
        }
        Ok(())
    }
}

/// Stable hash of a key tuple for [`OutputPartitioning::Hash`]. Numeric
/// values that compare equal hash equally (`Int(2)` vs `Float(2.0)`), so
/// co-partitioned joins behave like [`Value::sql_eq`].
pub fn hash_key(row: &[Value], cols: &[usize]) -> u64 {
    // FNV-1a over a canonical byte rendering.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for &c in cols {
        match row.get(c) {
            None | Some(Value::Null) => eat(&[0]),
            Some(Value::Bool(b)) => eat(&[1, *b as u8]),
            Some(Value::Int(i)) => {
                eat(&[2]);
                eat(&i.to_le_bytes());
            }
            Some(Value::Float(f)) => {
                // Canonicalise integral floats to the Int encoding.
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    eat(&[2]);
                    eat(&(*f as i64).to_le_bytes());
                } else {
                    eat(&[3]);
                    eat(&f.to_le_bytes());
                }
            }
            Some(Value::Str(s)) => {
                eat(&[4]);
                eat(s.as_bytes());
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_dag::{DagBuilder, Operator};

    fn simple_job() -> EngineJob {
        let mut b = DagBuilder::new(1, "t");
        let scan = b
            .stage("scan", 2)
            .op(Operator::TableScan { table: "t".into() })
            .op(Operator::ShuffleWrite)
            .build();
        let agg = b
            .stage("agg", 2)
            .op(Operator::ShuffleRead)
            .op(Operator::HashAggregate)
            .op(Operator::AdhocSink)
            .build();
        b.edge(scan, agg);
        let dag = b.build().unwrap();
        EngineJob {
            dag,
            plans: vec![
                StagePlan {
                    ops: vec![ExecOp::Scan { table: "t".into() }],
                    outputs: vec![OutputPartitioning::Hash(vec![0])],
                },
                StagePlan {
                    ops: vec![ExecOp::HashAggregate {
                        group: vec![0],
                        aggs: vec![AggExpr {
                            func: AggFunc::Count,
                            expr: Expr::lit(1i64),
                        }],
                    }],
                    outputs: vec![],
                },
            ],
            output_columns: vec!["k".into(), "n".into()],
        }
    }

    #[test]
    fn valid_job_passes() {
        simple_job().validate().unwrap();
    }

    #[test]
    fn arity_mismatches_fail() {
        let mut j = simple_job();
        j.plans.pop();
        assert!(j.validate().is_err());

        let mut j = simple_job();
        j.plans[0].outputs.clear();
        assert!(j.validate().is_err());

        let mut j = simple_job();
        j.plans[1].ops = vec![ExecOp::HashJoin {
            right_edge: 5,
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
        }];
        assert!(j.validate().is_err());

        let mut j = simple_job();
        j.plans[1].ops.insert(1, ExecOp::Scan { table: "x".into() });
        assert!(j.validate().is_err());
    }

    #[test]
    fn hash_key_is_type_canonical() {
        let a = hash_key(&[Value::Int(42)], &[0]);
        let b = hash_key(&[Value::Float(42.0)], &[0]);
        assert_eq!(a, b);
        let c = hash_key(&[Value::Float(42.5)], &[0]);
        assert_ne!(a, c);
        let d = hash_key(&[Value::Str("42".into())], &[0]);
        assert_ne!(a, d);
    }

    #[test]
    fn hash_key_spreads() {
        // Not a collision test — just that different keys do not all land
        // in one bucket mod small n.
        let buckets: std::collections::HashSet<u64> = (0..100)
            .map(|i| hash_key(&[Value::Int(i)], &[0]) % 8)
            .collect();
        assert!(buckets.len() >= 4, "poor spread: {buckets:?}");
    }
}
