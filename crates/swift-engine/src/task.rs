//! Task execution: running one stage plan over one task's inputs.

use crate::error::{EngineError, Result};
use crate::expr::Accumulator;
use crate::plan::{AggExpr, ExecOp, JoinType, SortKey, StagePlan, WindowFunc};
use crate::value::{Catalog, Row, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// The inputs of one task: `inputs[edge][producer]` = rows that producer
/// task sent to this task's partition, with `edge` indexing the stage's
/// incoming edges in DAG order.
pub type TaskInputs = Vec<Vec<Vec<Row>>>;

/// Executes `plan` for task `task_index` (of `task_count`) and returns its
/// output rows.
pub fn run_task(
    catalog: &Catalog,
    plan: &StagePlan,
    task_index: u32,
    task_count: u32,
    inputs: &TaskInputs,
) -> Result<Vec<Row>> {
    let mut stream: Vec<Row> = match plan.ops.first() {
        Some(ExecOp::Scan { table }) => {
            let t = catalog
                .get(table)
                .ok_or_else(|| EngineError::Unknown(format!("table {table}")))?;
            t.partition(task_index, task_count)
        }
        _ => flatten_edge(inputs, 0)?,
    };

    let rest = if matches!(plan.ops.first(), Some(ExecOp::Scan { .. })) {
        &plan.ops[1..]
    } else {
        &plan.ops[..]
    };

    for op in rest {
        stream = apply(op, stream, inputs)?;
    }
    Ok(stream)
}

fn flatten_edge(inputs: &TaskInputs, edge: usize) -> Result<Vec<Row>> {
    let per_producer = inputs
        .get(edge)
        .ok_or_else(|| EngineError::Plan(format!("missing input edge {edge}")))?;
    Ok(per_producer.iter().flatten().cloned().collect())
}

fn apply(op: &ExecOp, stream: Vec<Row>, inputs: &TaskInputs) -> Result<Vec<Row>> {
    match op {
        ExecOp::Scan { table } => Err(EngineError::Plan(format!("Scan({table}) not first"))),
        ExecOp::Filter(pred) => {
            let mut out = Vec::with_capacity(stream.len());
            for row in stream {
                if pred.eval(&row)?.is_true() {
                    out.push(row);
                }
            }
            Ok(out)
        }
        ExecOp::Project(exprs) => {
            let mut out = Vec::with_capacity(stream.len());
            for row in stream {
                let mut nr = Vec::with_capacity(exprs.len());
                for e in exprs {
                    nr.push(e.eval(&row)?);
                }
                out.push(nr);
            }
            Ok(out)
        }
        ExecOp::HashJoin {
            right_edge,
            left_keys,
            right_keys,
            join_type,
        } => {
            let build = flatten_edge(inputs, *right_edge)?;
            hash_join(stream, build, left_keys, right_keys, *join_type)
        }
        ExecOp::MergeJoin {
            right_edge,
            left_keys,
            right_keys,
            join_type,
        } => {
            let right = flatten_edge(inputs, *right_edge)?;
            merge_join(stream, right, left_keys, right_keys, *join_type)
        }
        ExecOp::Sort(keys) => Ok(sort_rows(stream, keys)),
        ExecOp::HashAggregate { group, aggs } => hash_aggregate(stream, group, aggs),
        ExecOp::StreamedAggregate { group, aggs } => streamed_aggregate(stream, group, aggs),
        ExecOp::Window {
            partition_by,
            order_by,
            func,
        } => Ok(window(stream, partition_by, order_by, *func)),
        ExecOp::Limit(n) => {
            let mut s = stream;
            s.truncate(*n as usize);
            Ok(s)
        }
    }
}

/// Window evaluation: sort by (partition keys, order keys), then stream
/// through each partition maintaining the function's running state. The
/// computed value is appended as a new trailing column.
fn window(
    stream: Vec<Row>,
    partition_by: &[usize],
    order_by: &[SortKey],
    func: WindowFunc,
) -> Vec<Row> {
    let mut keys: Vec<SortKey> = partition_by
        .iter()
        .map(|&c| SortKey {
            col: c,
            desc: false,
        })
        .collect();
    keys.extend_from_slice(order_by);
    let sorted = sort_rows(stream, &keys);
    let mut out = Vec::with_capacity(sorted.len());
    let mut row_number = 0u64;
    let mut rank = 0u64;
    let mut cum = 0.0f64;
    let mut cum_int = 0i64;
    let mut ints_only = true;
    let mut prev: Option<Row> = None;
    for row in sorted {
        let same_partition = prev
            .as_ref()
            .is_some_and(|p| map_key(p, partition_by) == map_key(&row, partition_by));
        if !same_partition {
            row_number = 0;
            rank = 0;
            cum = 0.0;
            cum_int = 0;
            ints_only = true;
        }
        row_number += 1;
        let order_cols: Vec<usize> = order_by.iter().map(|k| k.col).collect();
        let tied = same_partition
            && prev
                .as_ref()
                .is_some_and(|p| key_cmp(p, &row, &order_cols, &order_cols) == Ordering::Equal);
        if !tied {
            rank = row_number;
        }
        let value = match func {
            WindowFunc::RowNumber => Value::Int(row_number as i64),
            WindowFunc::Rank => Value::Int(rank as i64),
            WindowFunc::CumSum(col) => {
                match row.get(col) {
                    Some(Value::Int(i)) => {
                        cum_int = cum_int.wrapping_add(*i);
                        cum += *i as f64;
                    }
                    Some(Value::Float(f)) => {
                        ints_only = false;
                        cum += f;
                    }
                    _ => {}
                }
                if ints_only {
                    Value::Int(cum_int)
                } else {
                    Value::Float(cum)
                }
            }
        };
        prev = Some(row.clone());
        let mut nr = row;
        nr.push(value);
        out.push(nr);
    }
    out
}

/// Key rendering for hash-map grouping: canonical so `Int(2)`/`Float(2.0)`
/// group together (matching [`Value::sql_eq`] up to NULL handling — NULL
/// keys group together here, as SQL GROUP BY does).
fn map_key(row: &Row, cols: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(cols.len() * 9);
    for &c in cols {
        match row.get(c) {
            None | Some(Value::Null) => out.push(0),
            Some(Value::Bool(b)) => {
                out.push(1);
                out.push(*b as u8);
            }
            Some(Value::Int(i)) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Some(Value::Float(f)) => {
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    out.push(2);
                    out.extend_from_slice(&(*f as i64).to_le_bytes());
                } else {
                    out.push(3);
                    out.extend_from_slice(&f.to_le_bytes());
                }
            }
            Some(Value::Str(s)) => {
                out.push(4);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

fn hash_join(
    probe: Vec<Row>,
    build: Vec<Row>,
    lk: &[usize],
    rk: &[usize],
    join_type: JoinType,
) -> Result<Vec<Row>> {
    let right_width = match join_type {
        JoinType::Left { right_width } => right_width,
        JoinType::Inner => build.first().map_or(0, Vec::len),
    };
    let mut table: HashMap<Vec<u8>, Vec<&Row>> = HashMap::with_capacity(build.len());
    for row in &build {
        if rk.iter().any(|&c| row.get(c).is_none_or(Value::is_null)) {
            continue; // NULL keys never join
        }
        table.entry(map_key(row, rk)).or_default().push(row);
    }
    let mut out = Vec::new();
    for l in &probe {
        let null_key = lk.iter().any(|&c| l.get(c).is_none_or(Value::is_null));
        let matches = if null_key {
            None
        } else {
            table.get(&map_key(l, lk))
        };
        match matches {
            Some(rows) => {
                for r in rows {
                    let mut joined = l.clone();
                    joined.extend_from_slice(r);
                    out.push(joined);
                }
            }
            None if matches!(join_type, JoinType::Left { .. }) => {
                let mut joined = l.clone();
                joined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(joined);
            }
            None => {}
        }
    }
    Ok(out)
}

fn key_cmp(a: &Row, b: &Row, ak: &[usize], bk: &[usize]) -> Ordering {
    for (&ca, &cb) in ak.iter().zip(bk) {
        let av = a.get(ca).unwrap_or(&Value::Null);
        let bv = b.get(cb).unwrap_or(&Value::Null);
        let ord = av.total_cmp(bv);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Inner sort-merge join over inputs sorted by their keys. Inputs are
/// defensively re-sorted (the "merge" of pre-sorted runs is then O(n));
/// correctness never depends on the producer having sorted.
fn merge_join(
    left: Vec<Row>,
    right: Vec<Row>,
    lk: &[usize],
    rk: &[usize],
    join_type: JoinType,
) -> Result<Vec<Row>> {
    let right_width = match join_type {
        JoinType::Left { right_width } => right_width,
        JoinType::Inner => right.first().map_or(0, Vec::len),
    };
    let lkeys: Vec<SortKey> = lk
        .iter()
        .map(|&c| SortKey {
            col: c,
            desc: false,
        })
        .collect();
    let rkeys: Vec<SortKey> = rk
        .iter()
        .map(|&c| SortKey {
            col: c,
            desc: false,
        })
        .collect();
    let left = sort_rows(left, &lkeys);
    let right = sort_rows(right, &rkeys);
    let mut out = Vec::new();
    let emit_unmatched = |l: &Row, out: &mut Vec<Row>| {
        if matches!(join_type, JoinType::Left { .. }) {
            let mut joined = l.clone();
            joined.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(joined);
        }
    };
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        // NULL keys never match (but left rows still survive a left join).
        if lk
            .iter()
            .any(|&c| left[i].get(c).is_none_or(Value::is_null))
        {
            emit_unmatched(&left[i], &mut out);
            i += 1;
            continue;
        }
        if rk
            .iter()
            .any(|&c| right[j].get(c).is_none_or(Value::is_null))
        {
            j += 1;
            continue;
        }
        match key_cmp(&left[i], &right[j], lk, rk) {
            Ordering::Less => {
                emit_unmatched(&left[i], &mut out);
                i += 1;
            }
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Find the full equal block on both sides.
                let i_end = (i..left.len())
                    .take_while(|&x| key_cmp(&left[x], &left[i], lk, lk) == Ordering::Equal)
                    .last()
                    .unwrap()
                    + 1;
                let j_end = (j..right.len())
                    .take_while(|&x| key_cmp(&right[x], &right[j], rk, rk) == Ordering::Equal)
                    .last()
                    .unwrap()
                    + 1;
                for l in &left[i..i_end] {
                    for r in &right[j..j_end] {
                        let mut joined = l.clone();
                        joined.extend_from_slice(r);
                        out.push(joined);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    // Left-side tail.
    while i < left.len() {
        emit_unmatched(&left[i], &mut out);
        i += 1;
    }
    Ok(out)
}

/// Stable sort by the given keys.
pub fn sort_rows(mut rows: Vec<Row>, keys: &[SortKey]) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for k in keys {
            let av = a.get(k.col).unwrap_or(&Value::Null);
            let bv = b.get(k.col).unwrap_or(&Value::Null);
            let mut ord = av.total_cmp(bv);
            if k.desc {
                ord = ord.reverse();
            }
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    rows
}

fn finish_group(key_row: &Row, group: &[usize], accs: &[Accumulator]) -> Row {
    let mut out: Row = group
        .iter()
        .map(|&c| key_row.get(c).cloned().unwrap_or(Value::Null))
        .collect();
    out.extend(accs.iter().map(Accumulator::finish));
    out
}

fn hash_aggregate(stream: Vec<Row>, group: &[usize], aggs: &[AggExpr]) -> Result<Vec<Row>> {
    // Deterministic output order: track first-seen order of groups.
    let mut order: Vec<Vec<u8>> = Vec::new();
    let mut table: HashMap<Vec<u8>, (Row, Vec<Accumulator>)> = HashMap::new();
    for row in stream {
        let key = map_key(&row, group);
        let entry = table.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (
                row.clone(),
                aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
            )
        });
        for (acc, a) in entry.1.iter_mut().zip(aggs) {
            acc.push(&a.expr.eval(&row)?);
        }
    }
    // Global aggregate (no GROUP BY): emit one row even for empty input.
    if group.is_empty() && table.is_empty() {
        let accs: Vec<Accumulator> = aggs.iter().map(|a| Accumulator::new(a.func)).collect();
        return Ok(vec![finish_group(&Vec::new(), group, &accs)]);
    }
    Ok(order
        .into_iter()
        .map(|k| {
            let (row, accs) = &table[&k];
            finish_group(row, group, accs)
        })
        .collect())
}

fn streamed_aggregate(stream: Vec<Row>, group: &[usize], aggs: &[AggExpr]) -> Result<Vec<Row>> {
    // Input must be sorted by the group keys; sort defensively so the
    // operator is correct on any input (sorted input makes this a no-op
    // pass for the sort).
    let keys: Vec<SortKey> = group
        .iter()
        .map(|&c| SortKey {
            col: c,
            desc: false,
        })
        .collect();
    let stream = sort_rows(stream, &keys);
    let mut out = Vec::new();
    let mut current: Option<(Row, Vec<Accumulator>)> = None;
    for row in stream {
        let same = current
            .as_ref()
            .map(|(k, _)| map_key(k, group) == map_key(&row, group))
            .unwrap_or(false);
        if !same {
            if let Some((k, accs)) = current.take() {
                out.push(finish_group(&k, group, &accs));
            }
            current = Some((
                row.clone(),
                aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
            ));
        }
        let (_, accs) = current.as_mut().expect("just set");
        for (acc, a) in accs.iter_mut().zip(aggs) {
            acc.push(&a.expr.eval(&row)?);
        }
    }
    if let Some((k, accs)) = current.take() {
        out.push(finish_group(&k, group, &accs));
    }
    if group.is_empty() && out.is_empty() {
        let accs: Vec<Accumulator> = aggs.iter().map(|a| Accumulator::new(a.func)).collect();
        out.push(finish_group(&Vec::new(), group, &accs));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, BinOp, Expr};
    use crate::value::{Schema, Table};

    fn iv(i: i64) -> Value {
        Value::Int(i)
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let rows: Vec<Row> = (0..10).map(|i| vec![iv(i), iv(i % 3)]).collect();
        c.register(Table::new("t", Schema::new(vec!["id", "k"]), rows));
        c
    }

    fn plan(ops: Vec<ExecOp>) -> StagePlan {
        StagePlan {
            ops,
            outputs: vec![],
        }
    }

    #[test]
    fn scan_partitions_by_task() {
        let c = catalog();
        let p = plan(vec![ExecOp::Scan { table: "t".into() }]);
        let a = run_task(&c, &p, 0, 2, &vec![]).unwrap();
        let b = run_task(&c, &p, 1, 2, &vec![]).unwrap();
        assert_eq!(a.len() + b.len(), 10);
    }

    #[test]
    fn filter_project_limit() {
        let c = catalog();
        let p = plan(vec![
            ExecOp::Scan { table: "t".into() },
            ExecOp::Filter(Expr::bin(BinOp::Ge, Expr::col(0), Expr::lit(5i64))),
            ExecOp::Project(vec![Expr::bin(BinOp::Mul, Expr::col(0), Expr::lit(10i64))]),
            ExecOp::Sort(vec![SortKey {
                col: 0,
                desc: false,
            }]),
            ExecOp::Limit(3),
        ]);
        let out = run_task(&c, &p, 0, 1, &vec![]).unwrap();
        assert_eq!(out, vec![vec![iv(50)], vec![iv(60)], vec![iv(70)]]);
    }

    #[test]
    fn hash_join_inner_many_to_many() {
        let left = vec![
            vec![iv(1), iv(10)],
            vec![iv(2), iv(20)],
            vec![iv(1), iv(11)],
        ];
        let right = vec![
            vec![iv(1), iv(100)],
            vec![iv(1), iv(101)],
            vec![iv(3), iv(300)],
        ];
        let inputs: TaskInputs = vec![vec![left], vec![right]];
        let p = plan(vec![ExecOp::HashJoin {
            right_edge: 1,
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
        }]);
        let mut out = run_task(&Catalog::new(), &p, 0, 1, &inputs).unwrap();
        out.sort_by(|a, b| key_cmp(a, b, &[0, 1, 3], &[0, 1, 3]));
        assert_eq!(out.len(), 4, "2 left x 2 right matches on key 1");
        assert!(out.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let left: Vec<Row> = (0..20).map(|i| vec![iv(i % 5), iv(i)]).collect();
        let right: Vec<Row> = (0..15).map(|i| vec![iv(i % 7), iv(i * 2)]).collect();
        let inputs: TaskInputs = vec![vec![left.clone()], vec![right.clone()]];
        let hj = plan(vec![ExecOp::HashJoin {
            right_edge: 1,
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
        }]);
        let mj = plan(vec![ExecOp::MergeJoin {
            right_edge: 1,
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
        }]);
        let mut a = run_task(&Catalog::new(), &hj, 0, 1, &inputs).unwrap();
        let mut b = run_task(&Catalog::new(), &mj, 0, 1, &inputs).unwrap();
        let cmp = |x: &Row, y: &Row| {
            for i in 0..x.len() {
                let o = x[i].total_cmp(&y[i]);
                if o != Ordering::Equal {
                    return o;
                }
            }
            Ordering::Equal
        };
        a.sort_by(cmp);
        b.sort_by(cmp);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn null_keys_never_join() {
        let left = vec![vec![Value::Null, iv(1)], vec![iv(1), iv(2)]];
        let right = vec![vec![Value::Null, iv(9)], vec![iv(1), iv(8)]];
        let inputs: TaskInputs = vec![vec![left], vec![right]];
        for p in [
            plan(vec![ExecOp::HashJoin {
                right_edge: 1,
                left_keys: vec![0],
                right_keys: vec![0],
                join_type: JoinType::Inner,
            }]),
            plan(vec![ExecOp::MergeJoin {
                right_edge: 1,
                left_keys: vec![0],
                right_keys: vec![0],
                join_type: JoinType::Inner,
            }]),
        ] {
            let out = run_task(&Catalog::new(), &p, 0, 1, &inputs).unwrap();
            assert_eq!(out.len(), 1, "only the 1-1 match joins");
        }
    }

    #[test]
    fn aggregates_agree_between_hash_and_streamed() {
        let rows: Vec<Row> = (0..30).map(|i| vec![iv(i % 4), iv(i)]).collect();
        let aggs = vec![
            AggExpr {
                func: AggFunc::Sum,
                expr: Expr::col(1),
            },
            AggExpr {
                func: AggFunc::Count,
                expr: Expr::lit(1i64),
            },
        ];
        let inputs: TaskInputs = vec![vec![rows]];
        let h = plan(vec![ExecOp::HashAggregate {
            group: vec![0],
            aggs: aggs.clone(),
        }]);
        let s = plan(vec![ExecOp::StreamedAggregate {
            group: vec![0],
            aggs,
        }]);
        let mut a = run_task(&Catalog::new(), &h, 0, 1, &inputs).unwrap();
        let b = run_task(&Catalog::new(), &s, 0, 1, &inputs).unwrap();
        a.sort_by(|x, y| x[0].total_cmp(&y[0]));
        assert_eq!(a, b, "streamed output is key-ordered");
        assert_eq!(a.len(), 4);
        // group 0: 0+4+...+28 = 112
        assert_eq!(a[0], vec![iv(0), iv(112), iv(8)]);
    }

    #[test]
    fn global_aggregate_on_empty_input_emits_one_row() {
        let inputs: TaskInputs = vec![vec![vec![]]];
        let p = plan(vec![ExecOp::HashAggregate {
            group: vec![],
            aggs: vec![AggExpr {
                func: AggFunc::Count,
                expr: Expr::lit(1i64),
            }],
        }]);
        let out = run_task(&Catalog::new(), &p, 0, 1, &inputs).unwrap();
        assert_eq!(out, vec![vec![iv(0)]]);
    }

    #[test]
    fn left_join_pads_unmatched_rows() {
        let left = vec![
            vec![iv(1), iv(10)],
            vec![iv(2), iv(20)],
            vec![Value::Null, iv(30)],
        ];
        let right = vec![vec![iv(1), iv(100)]];
        let inputs: TaskInputs = vec![vec![left.clone()], vec![right.clone()]];
        for p in [
            plan(vec![ExecOp::HashJoin {
                right_edge: 1,
                left_keys: vec![0],
                right_keys: vec![0],
                join_type: JoinType::Left { right_width: 2 },
            }]),
            plan(vec![ExecOp::MergeJoin {
                right_edge: 1,
                left_keys: vec![0],
                right_keys: vec![0],
                join_type: JoinType::Left { right_width: 2 },
            }]),
        ] {
            let mut out = run_task(&Catalog::new(), &p, 0, 1, &inputs).unwrap();
            out.sort_by(|a, b| a[1].total_cmp(&b[1]));
            assert_eq!(out.len(), 3, "every left row survives");
            assert_eq!(out[0], vec![iv(1), iv(10), iv(1), iv(100)]);
            assert_eq!(out[1], vec![iv(2), iv(20), Value::Null, Value::Null]);
            assert_eq!(out[2], vec![Value::Null, iv(30), Value::Null, Value::Null]);
        }
    }

    #[test]
    fn left_join_with_empty_build_side_pads_via_width_hint() {
        let left = vec![vec![iv(1), iv(10)]];
        let inputs: TaskInputs = vec![vec![left], vec![vec![]]];
        let p = plan(vec![ExecOp::HashJoin {
            right_edge: 1,
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Left { right_width: 3 },
        }]);
        let out = run_task(&Catalog::new(), &p, 0, 1, &inputs).unwrap();
        assert_eq!(
            out,
            vec![vec![iv(1), iv(10), Value::Null, Value::Null, Value::Null]]
        );
    }

    #[test]
    fn window_row_number_and_rank() {
        // (partition, order): p0 -> values 5, 5, 7; p1 -> value 3.
        let rows = vec![
            vec![iv(0), iv(5)],
            vec![iv(1), iv(3)],
            vec![iv(0), iv(7)],
            vec![iv(0), iv(5)],
        ];
        let inputs: TaskInputs = vec![vec![rows.clone()]];
        let rn = plan(vec![ExecOp::Window {
            partition_by: vec![0],
            order_by: vec![SortKey {
                col: 1,
                desc: false,
            }],
            func: WindowFunc::RowNumber,
        }]);
        let out = run_task(&Catalog::new(), &rn, 0, 1, &inputs).unwrap();
        assert_eq!(
            out,
            vec![
                vec![iv(0), iv(5), iv(1)],
                vec![iv(0), iv(5), iv(2)],
                vec![iv(0), iv(7), iv(3)],
                vec![iv(1), iv(3), iv(1)],
            ]
        );
        let rk = plan(vec![ExecOp::Window {
            partition_by: vec![0],
            order_by: vec![SortKey {
                col: 1,
                desc: false,
            }],
            func: WindowFunc::Rank,
        }]);
        let out = run_task(&Catalog::new(), &rk, 0, 1, &inputs).unwrap();
        // Ties share rank 1; next distinct value gets rank 3 (gaps).
        assert_eq!(out[0][2], iv(1));
        assert_eq!(out[1][2], iv(1));
        assert_eq!(out[2][2], iv(3));
        assert_eq!(out[3][2], iv(1));
    }

    #[test]
    fn window_cumsum_resets_per_partition() {
        let rows = vec![
            vec![iv(0), iv(10)],
            vec![iv(0), iv(5)],
            vec![iv(1), iv(2)],
            vec![iv(1), iv(1)],
        ];
        let inputs: TaskInputs = vec![vec![rows]];
        let p = plan(vec![ExecOp::Window {
            partition_by: vec![0],
            order_by: vec![SortKey {
                col: 1,
                desc: false,
            }],
            func: WindowFunc::CumSum(1),
        }]);
        let out = run_task(&Catalog::new(), &p, 0, 1, &inputs).unwrap();
        // p0 sorted: 5, 10 -> cums 5, 15; p1 sorted: 1, 2 -> cums 1, 3.
        assert_eq!(
            out,
            vec![
                vec![iv(0), iv(5), iv(5)],
                vec![iv(0), iv(10), iv(15)],
                vec![iv(1), iv(1), iv(1)],
                vec![iv(1), iv(2), iv(3)],
            ]
        );
    }

    #[test]
    fn sort_desc_and_stability() {
        let rows = vec![vec![iv(1), iv(1)], vec![iv(2), iv(2)], vec![iv(1), iv(3)]];
        let sorted = sort_rows(rows, &[SortKey { col: 0, desc: true }]);
        assert_eq!(sorted[0][0], iv(2));
        // stable: the two key-1 rows keep their relative order
        assert_eq!(sorted[1][1], iv(1));
        assert_eq!(sorted[2][1], iv(3));
    }
}
