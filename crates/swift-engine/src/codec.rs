//! Binary row codec for shuffle payloads.
//!
//! Shuffle transports move [`bytes::Bytes`]; this codec turns row batches
//! into a compact length-prefixed binary format and back. The format is
//! self-describing per value (1-byte tag), little-endian, with u32 counts —
//! simple, fast, and good enough for intra-process "network" transfer.

use crate::error::{EngineError, Result};
use crate::value::{Row, Value};
use swift_shuffle::bytes::{Bytes, BytesMut};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;

/// Encodes a batch of rows.
pub fn encode_rows(rows: &[Row]) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + rows.len() * 16);
    buf.put_u32_le(rows.len() as u32);
    for row in rows {
        buf.put_u32_le(row.len() as u32);
        for v in row {
            match v {
                Value::Null => buf.put_u8(TAG_NULL),
                Value::Int(i) => {
                    buf.put_u8(TAG_INT);
                    buf.put_i64_le(*i);
                }
                Value::Float(f) => {
                    buf.put_u8(TAG_FLOAT);
                    buf.put_f64_le(*f);
                }
                Value::Str(s) => {
                    buf.put_u8(TAG_STR);
                    buf.put_u32_le(s.len() as u32);
                    buf.put_slice(s.as_bytes());
                }
                Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
                Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
            }
        }
    }
    buf.freeze()
}

/// Decodes a batch of rows previously produced by [`encode_rows`].
pub fn decode_rows(mut data: Bytes) -> Result<Vec<Row>> {
    fn need(data: &Bytes, n: usize) -> Result<()> {
        if data.remaining() < n {
            Err(EngineError::Type(format!(
                "corrupt shuffle payload: wanted {n} more bytes, have {}",
                data.remaining()
            )))
        } else {
            Ok(())
        }
    }
    need(&data, 4)?;
    let n = data.get_u32_le() as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        need(&data, 4)?;
        let w = data.get_u32_le() as usize;
        let mut row = Vec::with_capacity(w);
        for _ in 0..w {
            need(&data, 1)?;
            let tag = data.get_u8();
            row.push(match tag {
                TAG_NULL => Value::Null,
                TAG_INT => {
                    need(&data, 8)?;
                    Value::Int(data.get_i64_le())
                }
                TAG_FLOAT => {
                    need(&data, 8)?;
                    Value::Float(data.get_f64_le())
                }
                TAG_STR => {
                    need(&data, 4)?;
                    let len = data.get_u32_le() as usize;
                    need(&data, len)?;
                    let bytes = data.copy_to_bytes(len);
                    Value::Str(String::from_utf8(bytes.to_vec()).map_err(|e| {
                        EngineError::Type(format!("corrupt shuffle payload: bad utf8: {e}"))
                    })?)
                }
                TAG_BOOL_FALSE => Value::Bool(false),
                TAG_BOOL_TRUE => Value::Bool(true),
                t => {
                    return Err(EngineError::Type(format!(
                        "corrupt shuffle payload: tag {t}"
                    )))
                }
            });
        }
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let rows = vec![
            vec![
                Value::Null,
                Value::Int(-42),
                Value::Float(1.25),
                Value::Str("héllo".into()),
                Value::Bool(true),
                Value::Bool(false),
            ],
            vec![],
            vec![Value::Int(i64::MAX), Value::Int(i64::MIN)],
        ];
        let enc = encode_rows(&rows);
        let dec = decode_rows(enc).unwrap();
        assert_eq!(rows, dec);
    }

    #[test]
    fn empty_batch() {
        let dec = decode_rows(encode_rows(&[])).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn truncated_payload_errors() {
        let enc = encode_rows(&[vec![Value::Str("long string value".into())]]);
        let cut = enc.slice(0..enc.len() - 3);
        assert!(decode_rows(cut).is_err());
    }

    #[test]
    fn garbage_tag_errors() {
        let mut b = BytesMut::new();
        b.put_u32_le(1);
        b.put_u32_le(1);
        b.put_u8(99);
        assert!(decode_rows(b.freeze()).is_err());
    }

    #[test]
    fn float_roundtrip_is_exact() {
        let rows = vec![vec![
            Value::Float(f64::MIN_POSITIVE),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
        ]];
        let dec = decode_rows(encode_rows(&rows)).unwrap();
        match (&dec[0][0], &dec[0][2]) {
            (Value::Float(a), Value::Float(n)) => {
                assert_eq!(*a, f64::MIN_POSITIVE);
                assert!(n.is_nan());
            }
            _ => panic!("wrong types"),
        }
    }
}
