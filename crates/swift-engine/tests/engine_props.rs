//! Property-based tests for engine invariants: codec roundtrips, join
//! algorithm equivalence, aggregation equivalence, and sort correctness.

use proptest::prelude::*;
use swift_engine::{
    decode_rows, encode_rows, run_task, sort_rows, AggExpr, AggFunc, Catalog, ExecOp, Expr,
    JoinType, Row, SortKey, StagePlan, Value,
};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_rows(max_rows: usize, width: usize) -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(proptest::collection::vec(arb_value(), width), 0..max_rows)
}

/// Rows with small integer keys in column 0 (to force join/group matches).
fn arb_keyed_rows(max_rows: usize) -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (0i64..8, any::<i64>()).prop_map(|(k, v)| vec![Value::Int(k), Value::Int(v)]),
        0..max_rows,
    )
}

fn plan(ops: Vec<ExecOp>) -> StagePlan {
    StagePlan { ops, outputs: vec![] }
}

fn canon(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for i in 0..a.len().max(b.len()) {
            let av = a.get(i).unwrap_or(&Value::Null);
            let bv = b.get(i).unwrap_or(&Value::Null);
            let o = av.total_cmp(bv);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_roundtrips_arbitrary_rows(rows in arb_rows(40, 4)) {
        let decoded = decode_rows(encode_rows(&rows)).unwrap();
        // NaN-containing floats still roundtrip bit-exactly; compare via
        // the codec itself to avoid PartialEq NaN pitfalls.
        prop_assert_eq!(encode_rows(&rows), encode_rows(&decoded));
        prop_assert_eq!(rows.len(), decoded.len());
    }

    #[test]
    fn hash_and_merge_joins_agree(left in arb_keyed_rows(30), right in arb_keyed_rows(30)) {
        for join_type in [JoinType::Inner, JoinType::Left { right_width: 2 }] {
            let inputs = vec![vec![left.clone()], vec![right.clone()]];
            let hj = plan(vec![ExecOp::HashJoin {
                right_edge: 1, left_keys: vec![0], right_keys: vec![0], join_type,
            }]);
            let mj = plan(vec![ExecOp::MergeJoin {
                right_edge: 1, left_keys: vec![0], right_keys: vec![0], join_type,
            }]);
            let a = canon(run_task(&Catalog::new(), &hj, 0, 1, &inputs).unwrap());
            let b = canon(run_task(&Catalog::new(), &mj, 0, 1, &inputs).unwrap());
            prop_assert_eq!(a, b, "join_type {:?}", join_type);
        }
    }

    #[test]
    fn inner_join_matches_nested_loop_oracle(left in arb_keyed_rows(25), right in arb_keyed_rows(25)) {
        let mut oracle = Vec::new();
        for l in &left {
            for r in &right {
                if l[0].sql_eq(&r[0]) {
                    let mut j = l.clone();
                    j.extend_from_slice(r);
                    oracle.push(j);
                }
            }
        }
        let inputs = vec![vec![left], vec![right]];
        let hj = plan(vec![ExecOp::HashJoin {
            right_edge: 1, left_keys: vec![0], right_keys: vec![0], join_type: JoinType::Inner,
        }]);
        let got = canon(run_task(&Catalog::new(), &hj, 0, 1, &inputs).unwrap());
        prop_assert_eq!(got, canon(oracle));
    }

    #[test]
    fn left_join_preserves_every_left_row(left in arb_keyed_rows(25), right in arb_keyed_rows(25)) {
        let inputs = vec![vec![left.clone()], vec![right.clone()]];
        let p = plan(vec![ExecOp::HashJoin {
            right_edge: 1,
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Left { right_width: 2 },
        }]);
        let out = run_task(&Catalog::new(), &p, 0, 1, &inputs).unwrap();
        // Each left row appears max(1, matches) times.
        let expected: usize = left
            .iter()
            .map(|l| right.iter().filter(|r| l[0].sql_eq(&r[0])).count().max(1))
            .sum();
        prop_assert_eq!(out.len(), expected);
        prop_assert!(out.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn aggregates_match_oracle(rows in arb_keyed_rows(60)) {
        let aggs = vec![
            AggExpr { func: AggFunc::Sum, expr: Expr::col(1) },
            AggExpr { func: AggFunc::Count, expr: Expr::lit(1i64) },
            AggExpr { func: AggFunc::Min, expr: Expr::col(1) },
            AggExpr { func: AggFunc::Max, expr: Expr::col(1) },
        ];
        let inputs = vec![vec![rows.clone()]];
        let h = plan(vec![ExecOp::HashAggregate { group: vec![0], aggs: aggs.clone() }]);
        let s = plan(vec![ExecOp::StreamedAggregate { group: vec![0], aggs }]);
        let a = canon(run_task(&Catalog::new(), &h, 0, 1, &inputs).unwrap());
        let b = canon(run_task(&Catalog::new(), &s, 0, 1, &inputs).unwrap());
        prop_assert_eq!(&a, &b, "hash and streamed aggregation agree");

        // Oracle.
        let mut groups: std::collections::BTreeMap<i64, (i64, i64, i64, i64)> = Default::default();
        for r in &rows {
            let k = r[0].as_i64().unwrap();
            let v = r[1].as_i64().unwrap();
            let e = groups.entry(k).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 = e.0.wrapping_add(v);
            e.1 += 1;
            e.2 = e.2.min(v);
            e.3 = e.3.max(v);
        }
        let oracle: Vec<Row> = groups
            .into_iter()
            .map(|(k, (sum, n, mn, mx))| {
                vec![Value::Int(k), Value::Int(sum), Value::Int(n), Value::Int(mn), Value::Int(mx)]
            })
            .collect();
        prop_assert_eq!(a, canon(oracle));
    }

    #[test]
    fn sort_produces_ordered_permutation(rows in arb_rows(50, 3), desc in any::<bool>()) {
        let keys = vec![SortKey { col: 0, desc }, SortKey { col: 1, desc: false }];
        let sorted = sort_rows(rows.clone(), &keys);
        prop_assert_eq!(sorted.len(), rows.len());
        prop_assert_eq!(canon(sorted.clone()), canon(rows), "permutation");
        for w in sorted.windows(2) {
            let mut o = w[0][0].total_cmp(&w[1][0]);
            if desc {
                o = o.reverse();
            }
            prop_assert!(o != std::cmp::Ordering::Greater, "primary key ordered");
            if o == std::cmp::Ordering::Equal {
                prop_assert!(
                    w[0][1].total_cmp(&w[1][1]) != std::cmp::Ordering::Greater,
                    "secondary key ordered within ties"
                );
            }
        }
    }

    #[test]
    fn filter_then_limit_is_subset(rows in arb_keyed_rows(50), threshold in -5i64..12, limit in 0u64..20) {
        let inputs = vec![vec![rows.clone()]];
        let p = plan(vec![
            ExecOp::Filter(Expr::bin(
                swift_engine::BinOp::Ge,
                Expr::col(0),
                Expr::lit(threshold),
            )),
            ExecOp::Limit(limit),
        ]);
        let out = run_task(&Catalog::new(), &p, 0, 1, &inputs).unwrap();
        prop_assert!(out.len() as u64 <= limit);
        for r in &out {
            prop_assert!(r[0].as_i64().unwrap() >= threshold);
            prop_assert!(rows.contains(r));
        }
    }
}
