//! Randomized tests for engine invariants, driven by the in-tree seeded
//! RNG (the workspace builds offline, so no proptest): codec roundtrips,
//! join algorithm equivalence, aggregation equivalence, and sort
//! correctness.

use swift_engine::{
    decode_rows, encode_rows, run_task, sort_rows, AggExpr, AggFunc, Catalog, ExecOp, Expr,
    JoinType, Row, SortKey, StagePlan, Value,
};
use swift_sim::SimRng;

const CASES: u64 = 128;

fn random_value(rng: &mut SimRng) -> Value {
    match rng.range(0, 5) {
        0 => Value::Null,
        1 => Value::Int(rng.u64() as i64),
        2 => Value::Float(rng.range_f64(-1e12, 1e12)),
        3 => {
            let len = rng.range(0, 13) as usize;
            Value::Str(
                (0..len)
                    .map(|_| char::from(rng.range(b'a' as u64, b'z' as u64 + 1) as u8))
                    .collect(),
            )
        }
        _ => Value::Bool(rng.chance(0.5)),
    }
}

fn random_rows(rng: &mut SimRng, max_rows: usize, width: usize) -> Vec<Row> {
    let n = rng.range(0, max_rows as u64) as usize;
    (0..n)
        .map(|_| (0..width).map(|_| random_value(rng)).collect())
        .collect()
}

/// Rows with small integer keys in column 0 (to force join/group matches).
fn random_keyed_rows(rng: &mut SimRng, max_rows: usize) -> Vec<Row> {
    let n = rng.range(0, max_rows as u64) as usize;
    (0..n)
        .map(|_| {
            vec![
                Value::Int(rng.range(0, 8) as i64),
                Value::Int(rng.u64() as i64),
            ]
        })
        .collect()
}

fn plan(ops: Vec<ExecOp>) -> StagePlan {
    StagePlan {
        ops,
        outputs: vec![],
    }
}

fn canon(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| {
        for i in 0..a.len().max(b.len()) {
            let av = a.get(i).unwrap_or(&Value::Null);
            let bv = b.get(i).unwrap_or(&Value::Null);
            let o = av.total_cmp(bv);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

#[test]
fn codec_roundtrips_arbitrary_rows() {
    let mut rng = SimRng::new(0xE46_0001);
    for case in 0..CASES {
        let rows = random_rows(&mut rng, 40, 4);
        let decoded = decode_rows(encode_rows(&rows)).unwrap();
        // NaN-containing floats still roundtrip bit-exactly; compare via
        // the codec itself to avoid PartialEq NaN pitfalls.
        assert_eq!(encode_rows(&rows), encode_rows(&decoded), "case {case}");
        assert_eq!(rows.len(), decoded.len(), "case {case}");
    }
}

#[test]
fn hash_and_merge_joins_agree() {
    let mut rng = SimRng::new(0xE46_0002);
    for case in 0..CASES {
        let left = random_keyed_rows(&mut rng, 30);
        let right = random_keyed_rows(&mut rng, 30);
        for join_type in [JoinType::Inner, JoinType::Left { right_width: 2 }] {
            let inputs = vec![vec![left.clone()], vec![right.clone()]];
            let hj = plan(vec![ExecOp::HashJoin {
                right_edge: 1,
                left_keys: vec![0],
                right_keys: vec![0],
                join_type,
            }]);
            let mj = plan(vec![ExecOp::MergeJoin {
                right_edge: 1,
                left_keys: vec![0],
                right_keys: vec![0],
                join_type,
            }]);
            let a = canon(run_task(&Catalog::new(), &hj, 0, 1, &inputs).unwrap());
            let b = canon(run_task(&Catalog::new(), &mj, 0, 1, &inputs).unwrap());
            assert_eq!(a, b, "case {case}, join_type {join_type:?}");
        }
    }
}

#[test]
fn inner_join_matches_nested_loop_oracle() {
    let mut rng = SimRng::new(0xE46_0003);
    for case in 0..CASES {
        let left = random_keyed_rows(&mut rng, 25);
        let right = random_keyed_rows(&mut rng, 25);
        let mut oracle = Vec::new();
        for l in &left {
            for r in &right {
                if l[0].sql_eq(&r[0]) {
                    let mut j = l.clone();
                    j.extend_from_slice(r);
                    oracle.push(j);
                }
            }
        }
        let inputs = vec![vec![left], vec![right]];
        let hj = plan(vec![ExecOp::HashJoin {
            right_edge: 1,
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
        }]);
        let got = canon(run_task(&Catalog::new(), &hj, 0, 1, &inputs).unwrap());
        assert_eq!(got, canon(oracle), "case {case}");
    }
}

#[test]
fn left_join_preserves_every_left_row() {
    let mut rng = SimRng::new(0xE46_0004);
    for case in 0..CASES {
        let left = random_keyed_rows(&mut rng, 25);
        let right = random_keyed_rows(&mut rng, 25);
        let inputs = vec![vec![left.clone()], vec![right.clone()]];
        let p = plan(vec![ExecOp::HashJoin {
            right_edge: 1,
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Left { right_width: 2 },
        }]);
        let out = run_task(&Catalog::new(), &p, 0, 1, &inputs).unwrap();
        // Each left row appears max(1, matches) times.
        let expected: usize = left
            .iter()
            .map(|l| right.iter().filter(|r| l[0].sql_eq(&r[0])).count().max(1))
            .sum();
        assert_eq!(out.len(), expected, "case {case}");
        assert!(out.iter().all(|r| r.len() == 4), "case {case}");
    }
}

#[test]
fn aggregates_match_oracle() {
    let mut rng = SimRng::new(0xE46_0005);
    for case in 0..CASES {
        let rows = random_keyed_rows(&mut rng, 60);
        let aggs = vec![
            AggExpr {
                func: AggFunc::Sum,
                expr: Expr::col(1),
            },
            AggExpr {
                func: AggFunc::Count,
                expr: Expr::lit(1i64),
            },
            AggExpr {
                func: AggFunc::Min,
                expr: Expr::col(1),
            },
            AggExpr {
                func: AggFunc::Max,
                expr: Expr::col(1),
            },
        ];
        let inputs = vec![vec![rows.clone()]];
        let h = plan(vec![ExecOp::HashAggregate {
            group: vec![0],
            aggs: aggs.clone(),
        }]);
        let s = plan(vec![ExecOp::StreamedAggregate {
            group: vec![0],
            aggs,
        }]);
        let a = canon(run_task(&Catalog::new(), &h, 0, 1, &inputs).unwrap());
        let b = canon(run_task(&Catalog::new(), &s, 0, 1, &inputs).unwrap());
        assert_eq!(&a, &b, "case {case}: hash and streamed aggregation agree");

        // Oracle.
        let mut groups: std::collections::BTreeMap<i64, (i64, i64, i64, i64)> = Default::default();
        for r in &rows {
            let k = r[0].as_i64().unwrap();
            let v = r[1].as_i64().unwrap();
            let e = groups.entry(k).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 = e.0.wrapping_add(v);
            e.1 += 1;
            e.2 = e.2.min(v);
            e.3 = e.3.max(v);
        }
        let oracle: Vec<Row> = groups
            .into_iter()
            .map(|(k, (sum, n, mn, mx))| {
                vec![
                    Value::Int(k),
                    Value::Int(sum),
                    Value::Int(n),
                    Value::Int(mn),
                    Value::Int(mx),
                ]
            })
            .collect();
        assert_eq!(a, canon(oracle), "case {case}");
    }
}

#[test]
fn sort_produces_ordered_permutation() {
    let mut rng = SimRng::new(0xE46_0006);
    for case in 0..CASES {
        let rows = random_rows(&mut rng, 50, 3);
        let desc = rng.chance(0.5);
        let keys = vec![
            SortKey { col: 0, desc },
            SortKey {
                col: 1,
                desc: false,
            },
        ];
        let sorted = sort_rows(rows.clone(), &keys);
        assert_eq!(sorted.len(), rows.len(), "case {case}");
        assert_eq!(
            canon(sorted.clone()),
            canon(rows),
            "case {case}: permutation"
        );
        for w in sorted.windows(2) {
            let mut o = w[0][0].total_cmp(&w[1][0]);
            if desc {
                o = o.reverse();
            }
            assert!(
                o != std::cmp::Ordering::Greater,
                "case {case}: primary key ordered"
            );
            if o == std::cmp::Ordering::Equal {
                assert!(
                    w[0][1].total_cmp(&w[1][1]) != std::cmp::Ordering::Greater,
                    "case {case}: secondary key ordered within ties"
                );
            }
        }
    }
}

#[test]
fn filter_then_limit_is_subset() {
    let mut rng = SimRng::new(0xE46_0007);
    for case in 0..CASES {
        let rows = random_keyed_rows(&mut rng, 50);
        let threshold = rng.range(0, 17) as i64 - 5;
        let limit = rng.range(0, 20);
        let inputs = vec![vec![rows.clone()]];
        let p = plan(vec![
            ExecOp::Filter(Expr::bin(
                swift_engine::BinOp::Ge,
                Expr::col(0),
                Expr::lit(threshold),
            )),
            ExecOp::Limit(limit),
        ]);
        let out = run_task(&Catalog::new(), &p, 0, 1, &inputs).unwrap();
        assert!(out.len() as u64 <= limit, "case {case}");
        for r in &out {
            assert!(r[0].as_i64().unwrap() >= threshold, "case {case}");
            assert!(rows.contains(r), "case {case}");
        }
    }
}
