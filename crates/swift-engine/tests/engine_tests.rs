//! End-to-end engine tests: multi-stage jobs on real data through the real
//! Cache Worker shuffle, including forced spill and failure recovery.

use swift_dag::{DagBuilder, Operator, TaskId};
use swift_engine::*;

fn iv(i: i64) -> Value {
    Value::Int(i)
}

/// orders(order_id, customer, amount): 100 rows, 10 customers.
fn orders_catalog() -> Catalog {
    let mut c = Catalog::new();
    let rows: Vec<Row> = (0..100)
        .map(|i| vec![iv(i), iv(i % 10), iv((i * 7) % 50)])
        .collect();
    c.register(Table::new(
        "orders",
        Schema::new(vec!["order_id", "customer", "amount"]),
        rows,
    ));
    let cust: Vec<Row> = (0..10)
        .map(|i| vec![iv(i), Value::Str(format!("cust-{i}"))])
        .collect();
    c.register(Table::new(
        "customers",
        Schema::new(vec!["id", "name"]),
        cust,
    ));
    c
}

/// scan(orders) -> hash-partition by customer -> sum(amount) group by
/// customer -> sort by customer -> sink (single task).
fn sum_by_customer_job(job_id: u64) -> EngineJob {
    let mut b = DagBuilder::new(job_id, "sum-by-customer");
    let scan = b
        .stage("scan", 4)
        .op(Operator::TableScan {
            table: "orders".into(),
        })
        .op(Operator::ShuffleWrite)
        .build();
    let agg = b
        .stage("agg", 3)
        .op(Operator::ShuffleRead)
        .op(Operator::HashAggregate)
        .op(Operator::ShuffleWrite)
        .build();
    let sort = b
        .stage("sort", 1)
        .op(Operator::ShuffleRead)
        .op(Operator::MergeSort)
        .op(Operator::AdhocSink)
        .build();
    b.edge(scan, agg).edge(agg, sort);
    EngineJob {
        dag: b.build().unwrap(),
        plans: vec![
            StagePlan {
                ops: vec![
                    ExecOp::Scan {
                        table: "orders".into(),
                    },
                    ExecOp::Project(vec![Expr::col(1), Expr::col(2)]),
                ],
                outputs: vec![OutputPartitioning::Hash(vec![0])],
            },
            StagePlan {
                ops: vec![ExecOp::HashAggregate {
                    group: vec![0],
                    aggs: vec![AggExpr {
                        func: AggFunc::Sum,
                        expr: Expr::col(1),
                    }],
                }],
                outputs: vec![OutputPartitioning::Single],
            },
            StagePlan {
                ops: vec![ExecOp::Sort(vec![SortKey {
                    col: 0,
                    desc: false,
                }])],
                outputs: vec![],
            },
        ],
        output_columns: vec!["customer".into(), "total".into()],
    }
}

fn expected_sums() -> Vec<Row> {
    // customer k gets orders i with i%10==k; amount = (i*7)%50.
    (0..10)
        .map(|k| {
            let total: i64 = (0..100).filter(|i| i % 10 == k).map(|i| (i * 7) % 50).sum();
            vec![iv(k), iv(total)]
        })
        .collect()
}

#[test]
fn multi_stage_aggregation_is_correct() {
    let engine = Engine::new(orders_catalog());
    let out = engine.run(&sum_by_customer_job(1)).unwrap();
    assert_eq!(out, expected_sums());
}

#[test]
fn tiny_cache_forces_real_spill_with_same_result() {
    // 64-byte cap: every segment spills to a real temp file.
    let engine = Engine::new(orders_catalog()).with_cache_capacity(64);
    let outcome = engine
        .run_with(&sum_by_customer_job(2), RunOptions::default())
        .unwrap();
    assert_eq!(outcome.rows, expected_sums());
    assert!(outcome.stats.spilled_bytes > 0, "spill must have happened");
}

#[test]
fn injected_failure_recovers_with_identical_result() {
    let engine = Engine::new(orders_catalog());
    let job = sum_by_customer_job(3);
    let agg_stage = job.dag.stage_by_name("agg").unwrap().id;
    let outcome = engine
        .run_with(
            &job,
            RunOptions {
                fail_once: vec![TaskId::new(agg_stage, 1)],
                max_attempts: 3,
            },
        )
        .unwrap();
    assert_eq!(outcome.rows, expected_sums());
    assert_eq!(
        outcome.stats.recovered_tasks, 1,
        "exactly the failed task re-ran"
    );
    assert_eq!(outcome.stats.tasks_run, 4 + 3 + 1 + 1);
}

#[test]
fn repeated_failure_exhausts_attempts() {
    let engine = Engine::new(orders_catalog());
    let job = sum_by_customer_job(4);
    let scan = job.dag.stage_by_name("scan").unwrap().id;
    // max_attempts 1: the injected failure is fatal.
    let err = engine
        .run_with(
            &job,
            RunOptions {
                fail_once: vec![TaskId::new(scan, 0)],
                max_attempts: 1,
            },
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::TaskFailed { .. }), "{err}");
}

#[test]
fn join_across_stages() {
    // orders join customers on customer id, both hash-partitioned.
    let mut b = DagBuilder::new(5, "join");
    let o = b
        .stage("orders", 3)
        .op(Operator::TableScan {
            table: "orders".into(),
        })
        .op(Operator::ShuffleWrite)
        .build();
    let c = b
        .stage("customers", 2)
        .op(Operator::TableScan {
            table: "customers".into(),
        })
        .op(Operator::ShuffleWrite)
        .build();
    let j = b
        .stage("join", 2)
        .op(Operator::ShuffleRead)
        .op(Operator::HashJoin)
        .op(Operator::AdhocSink)
        .build();
    b.edge(o, j).edge(c, j);
    let job = EngineJob {
        dag: b.build().unwrap(),
        plans: vec![
            StagePlan {
                ops: vec![ExecOp::Scan {
                    table: "orders".into(),
                }],
                outputs: vec![OutputPartitioning::Hash(vec![1])],
            },
            StagePlan {
                ops: vec![ExecOp::Scan {
                    table: "customers".into(),
                }],
                outputs: vec![OutputPartitioning::Hash(vec![0])],
            },
            StagePlan {
                ops: vec![ExecOp::HashJoin {
                    right_edge: 1,
                    left_keys: vec![1],
                    right_keys: vec![0],
                    join_type: JoinType::Inner,
                }],
                outputs: vec![],
            },
        ],
        output_columns: vec![
            "order_id".into(),
            "customer".into(),
            "amount".into(),
            "id".into(),
            "name".into(),
        ],
    };
    let mut out = Engine::new(orders_catalog()).run(&job).unwrap();
    assert_eq!(out.len(), 100, "every order joins exactly one customer");
    out.sort_by(|a, b| a[0].total_cmp(&b[0]));
    for (i, row) in out.iter().enumerate() {
        assert_eq!(row[0], iv(i as i64));
        assert_eq!(row[1], row[3], "join key matches");
        assert_eq!(row[4], Value::Str(format!("cust-{}", i % 10)));
    }
}

#[test]
fn broadcast_join_matches_hash_partitioned_join() {
    // Small side broadcast to every consumer, big side round-robin: the
    // join result must match the co-partitioned plan.
    let mut b = DagBuilder::new(6, "bcast");
    let o = b
        .stage("orders", 3)
        .op(Operator::TableScan {
            table: "orders".into(),
        })
        .op(Operator::ShuffleWrite)
        .build();
    let c = b
        .stage("customers", 2)
        .op(Operator::TableScan {
            table: "customers".into(),
        })
        .op(Operator::ShuffleWrite)
        .build();
    let j = b
        .stage("join", 4)
        .op(Operator::ShuffleRead)
        .op(Operator::HashJoin)
        .op(Operator::AdhocSink)
        .build();
    b.edge(o, j).edge(c, j);
    let job = EngineJob {
        dag: b.build().unwrap(),
        plans: vec![
            StagePlan {
                ops: vec![ExecOp::Scan {
                    table: "orders".into(),
                }],
                outputs: vec![OutputPartitioning::RoundRobin],
            },
            StagePlan {
                ops: vec![ExecOp::Scan {
                    table: "customers".into(),
                }],
                outputs: vec![OutputPartitioning::Broadcast],
            },
            StagePlan {
                ops: vec![ExecOp::HashJoin {
                    right_edge: 1,
                    left_keys: vec![1],
                    right_keys: vec![0],
                    join_type: JoinType::Inner,
                }],
                outputs: vec![],
            },
        ],
        output_columns: vec![],
    };
    let out = Engine::new(orders_catalog()).run(&job).unwrap();
    assert_eq!(out.len(), 100);
}

#[test]
fn global_sort_via_single_partition_is_totally_ordered() {
    let out = Engine::new(orders_catalog())
        .run(&sum_by_customer_job(7))
        .unwrap();
    for w in out.windows(2) {
        assert!(w[0][0].total_cmp(&w[1][0]).is_lt());
    }
}

#[test]
fn deterministic_across_runs() {
    let engine = Engine::new(orders_catalog());
    let a = engine.run(&sum_by_customer_job(8)).unwrap();
    let b = engine.run(&sum_by_customer_job(8)).unwrap();
    assert_eq!(a, b);
}
