//! Timely failure detection (§IV-A).
//!
//! Three lightweight mechanisms, reproduced here as passive state machines
//! the scheduler drives:
//!
//! 1. **Status self-reporting** — executor processes report restarts
//!    immediately, so Swift Admin learns about process failures at
//!    process-restart latency, not heartbeat latency.
//! 2. **Proxied heartbeats** — one heartbeat manager per machine batches
//!    all its executors' heartbeats; the interval scales with cluster size
//!    (5 s / 10 s / 15 s). [`HeartbeatMonitor`] tracks the last beat per
//!    machine and flags timeouts.
//! 3. **Machine health monitoring** — [`HealthMonitor`] counts recent task
//!    failures per machine and recommends marking flapping machines
//!    read-only ("a large quantity of tasks on the machine failed in a
//!    short time").

use std::collections::BTreeMap;
use swift_sim::{SimDuration, SimTime};

/// The kind of failure affecting a task (§IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The executor process crashed and restarted; self-reported to Swift
    /// Admin immediately (detection latency ≈ process restart time).
    ProcessRestart,
    /// The whole machine crashed; detected by heartbeat timeout.
    MachineCrash,
    /// The machine is flapping (many task failures in a short window);
    /// the health monitor marks it read-only.
    MachineUnhealthy,
    /// Deterministic application error (memory access violation, missing
    /// table, ...). Re-running cannot help: report to the Job Monitor and
    /// do not recover (§IV-C).
    ApplicationError,
}

impl FailureKind {
    /// Whether recovery (re-running tasks) can possibly help. `false` for
    /// deterministic application errors — re-running "does not help, but
    /// wastes resources".
    pub fn recoverable(self) -> bool {
        self != FailureKind::ApplicationError
    }

    /// Stable lower-snake label, used by trace exporters and CLIs.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::ProcessRestart => "process_restart",
            FailureKind::MachineCrash => "machine_crash",
            FailureKind::MachineUnhealthy => "machine_unhealthy",
            FailureKind::ApplicationError => "application_error",
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tracks per-machine heartbeats (sent by the per-machine heartbeat
/// manager) and reports machines whose beat is overdue.
#[derive(Clone, Debug)]
pub struct HeartbeatMonitor {
    interval: SimDuration,
    /// Missed-beat tolerance: a machine is declared dead after
    /// `interval × grace_beats` of silence.
    grace_beats: u32,
    last_beat: BTreeMap<u32, SimTime>,
}

impl HeartbeatMonitor {
    /// Creates a monitor with the given beat interval and a tolerance of
    /// `grace_beats` missed beats (≥ 1).
    pub fn new(interval: SimDuration, grace_beats: u32) -> Self {
        assert!(
            grace_beats >= 1,
            "at least one missed beat must be tolerated"
        );
        HeartbeatMonitor {
            interval,
            grace_beats,
            last_beat: BTreeMap::new(),
        }
    }

    /// The configured heartbeat interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Registers a machine at time `now` (first beat).
    pub fn register(&mut self, machine: u32, now: SimTime) {
        self.last_beat.insert(machine, now);
    }

    /// Removes a machine (failed or drained).
    pub fn deregister(&mut self, machine: u32) {
        self.last_beat.remove(&machine);
    }

    /// Records a heartbeat from `machine` at `now`. Beats from machines
    /// that are not registered are dropped: a late beat from a machine
    /// already deregistered for failure handling must not resurrect it
    /// behind the recovery path's back.
    pub fn beat(&mut self, machine: u32, now: SimTime) {
        if let Some(t) = self.last_beat.get_mut(&machine) {
            *t = now;
        }
    }

    /// Machines whose last beat is older than `interval × grace_beats`,
    /// sorted by id for determinism. The caller deregisters them once
    /// failure handling starts.
    pub fn overdue(&self, now: SimTime) -> Vec<u32> {
        let deadline = self.interval * self.grace_beats as u64;
        let mut out: Vec<u32> = self
            .last_beat
            .iter()
            .filter(|(_, &t)| now.saturating_since(t) > deadline)
            .map(|(&m, _)| m)
            .collect();
        out.sort_unstable();
        out
    }

    /// Worst-case detection latency for a machine crash: the crash happens
    /// right after a beat, so detection takes a full grace window.
    pub fn worst_case_detection(&self) -> SimDuration {
        self.interval * self.grace_beats as u64
    }
}

/// Decision produced by the health monitor for one machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthDecision {
    /// Machine looks fine.
    Healthy,
    /// Too many recent task failures: mark read-only and drain (§IV-A).
    MarkReadOnly,
}

/// Sliding-window count of task failures per machine.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    window: SimDuration,
    threshold: u32,
    /// Recent failure timestamps per machine (pruned lazily).
    failures: BTreeMap<u32, Vec<SimTime>>,
}

impl HealthMonitor {
    /// A machine with more than `threshold` task failures within `window`
    /// is recommended for read-only draining.
    pub fn new(window: SimDuration, threshold: u32) -> Self {
        assert!(threshold >= 1);
        HealthMonitor {
            window,
            threshold,
            failures: BTreeMap::new(),
        }
    }

    /// Records a task failure on `machine` at `now` and returns the
    /// resulting decision.
    pub fn record_task_failure(&mut self, machine: u32, now: SimTime) -> HealthDecision {
        let v = self.failures.entry(machine).or_default();
        v.push(now);
        v.retain(|&t| now.saturating_since(t) <= self.window);
        if v.len() as u32 >= self.threshold {
            HealthDecision::MarkReadOnly
        } else {
            HealthDecision::Healthy
        }
    }

    /// Recent failure count for a machine (within the window ending at the
    /// last recorded failure).
    pub fn recent_failures(&self, machine: u32) -> u32 {
        self.failures.get(&machine).map_or(0, |v| v.len() as u32)
    }

    /// Clears a machine's history (e.g. after it is drained or revived).
    pub fn reset(&mut self, machine: u32) {
        self.failures.remove(&machine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn application_errors_are_not_recoverable() {
        assert!(!FailureKind::ApplicationError.recoverable());
        assert!(FailureKind::ProcessRestart.recoverable());
        assert!(FailureKind::MachineCrash.recoverable());
        assert!(FailureKind::MachineUnhealthy.recoverable());
    }

    #[test]
    fn heartbeat_timeout_detection() {
        let mut hb = HeartbeatMonitor::new(SimDuration::from_secs(5), 2);
        hb.register(0, SimTime::ZERO);
        hb.register(1, SimTime::ZERO);
        hb.beat(1, SimTime::from_secs(9));
        // At t=10s machine 0's last beat (t=0) is exactly 10s old: not yet
        // overdue (strict >); at t=11s it is.
        assert!(hb.overdue(SimTime::from_secs(10)).is_empty());
        assert_eq!(hb.overdue(SimTime::from_secs(11)), vec![0]);
        hb.deregister(0);
        assert!(hb.overdue(SimTime::from_secs(30)).contains(&1));
    }

    #[test]
    fn worst_case_detection_latency() {
        let hb = HeartbeatMonitor::new(SimDuration::from_secs(15), 2);
        assert_eq!(hb.worst_case_detection(), SimDuration::from_secs(30));
    }

    #[test]
    fn health_monitor_flags_flapping_machine() {
        let mut hm = HealthMonitor::new(SimDuration::from_secs(60), 3);
        let t = SimTime::from_secs;
        assert_eq!(hm.record_task_failure(4, t(0)), HealthDecision::Healthy);
        assert_eq!(hm.record_task_failure(4, t(10)), HealthDecision::Healthy);
        assert_eq!(
            hm.record_task_failure(4, t(20)),
            HealthDecision::MarkReadOnly
        );
        assert_eq!(hm.recent_failures(4), 3);
    }

    #[test]
    fn overdue_list_is_independent_of_registration_order() {
        // Regression for the HashMap-era monitor: the overdue list (and any
        // Debug dump of the monitor) must not depend on registration order.
        let machines = [7, 2, 9, 0, 4];
        let mut forward = HeartbeatMonitor::new(SimDuration::from_secs(5), 2);
        for &m in &machines {
            forward.register(m, SimTime::ZERO);
        }
        let mut backward = HeartbeatMonitor::new(SimDuration::from_secs(5), 2);
        for &m in machines.iter().rev() {
            backward.register(m, SimTime::ZERO);
        }
        let t = SimTime::from_secs(11);
        assert_eq!(forward.overdue(t), backward.overdue(t));
        assert_eq!(format!("{forward:?}"), format!("{backward:?}"));
    }

    #[test]
    fn health_monitor_window_expires() {
        let mut hm = HealthMonitor::new(SimDuration::from_secs(60), 3);
        let t = SimTime::from_secs;
        hm.record_task_failure(4, t(0));
        hm.record_task_failure(4, t(10));
        // 100s later the earlier failures left the window.
        assert_eq!(hm.record_task_failure(4, t(110)), HealthDecision::Healthy);
        assert_eq!(hm.recent_failures(4), 1);
    }

    #[test]
    #[should_panic(expected = "at least one missed beat")]
    fn zero_grace_beats_is_rejected() {
        // grace_beats = 0 would declare every machine dead the instant a
        // beat is in flight; the constructor must refuse it.
        let _ = HeartbeatMonitor::new(SimDuration::from_secs(5), 0);
    }

    #[test]
    fn beat_after_deregister_does_not_resurrect() {
        let mut hb = HeartbeatMonitor::new(SimDuration::from_secs(5), 2);
        hb.register(3, SimTime::ZERO);
        hb.deregister(3);
        // A beat that was already in flight when the machine was handed to
        // failure handling arrives late: it must be dropped, not re-enroll
        // the machine.
        hb.beat(3, SimTime::from_secs(4));
        assert!(hb.overdue(SimTime::from_secs(100)).is_empty());
        // Explicit re-registration does enroll it again.
        hb.register(3, SimTime::from_secs(100));
        assert_eq!(hb.overdue(SimTime::from_secs(200)), vec![3]);
    }

    #[test]
    fn overdue_boundary_is_strict() {
        let mut hb = HeartbeatMonitor::new(SimDuration::from_secs(5), 3);
        hb.register(7, SimTime::from_secs(1));
        let deadline = SimTime::from_secs(1) + hb.worst_case_detection();
        // Exactly interval × grace_beats of silence is still tolerated...
        assert!(hb.overdue(deadline).is_empty());
        // ...one millisecond more is not.
        assert_eq!(hb.overdue(deadline + SimDuration::from_millis(1)), vec![7]);
    }

    #[test]
    fn health_window_boundary_is_inclusive() {
        let mut hm = HealthMonitor::new(SimDuration::from_secs(60), 2);
        let t = SimTime::from_secs;
        hm.record_task_failure(9, t(0));
        // A failure exactly `window` old is still inside the window...
        assert_eq!(
            hm.record_task_failure(9, t(60)),
            HealthDecision::MarkReadOnly
        );
        hm.reset(9);
        hm.record_task_failure(9, t(0));
        // ...but one past it has expired.
        assert_eq!(hm.record_task_failure(9, t(61)), HealthDecision::Healthy);
        assert_eq!(hm.recent_failures(9), 1);
    }

    #[test]
    fn health_monitor_is_per_machine() {
        let mut hm = HealthMonitor::new(SimDuration::from_secs(60), 2);
        let t = SimTime::from_secs;
        hm.record_task_failure(1, t(0));
        assert_eq!(hm.record_task_failure(2, t(1)), HealthDecision::Healthy);
        assert_eq!(
            hm.record_task_failure(1, t(2)),
            HealthDecision::MarkReadOnly
        );
        hm.reset(1);
        assert_eq!(hm.recent_failures(1), 0);
    }
}
