//! # swift-ft — lightweight fault tolerance and recovery
//!
//! Implements §IV of the Swift paper as policy logic the scheduler (and the
//! real engine) drive:
//!
//! * **Timely failure detection** (§IV-A): executor status self-reporting
//!   ([`FailureKind::ProcessRestart`]), proxied heartbeats with
//!   cluster-size-scaled intervals ([`HeartbeatMonitor`]), and machine
//!   health monitoring with read-only draining ([`HealthMonitor`]).
//! * **Fine-grained recovery** (§IV-B): [`plan_recovery`] computes the
//!   minimal re-run set and channel updates for all five cases —
//!   intra-graphlet idempotent / non-idempotent, input failure, output
//!   failure, and §IV-C's useless (deterministic application) failures.
//! * **Job-restart baseline** ([`plan_job_restart`]) used by the Fig. 14
//!   and Fig. 15 comparisons.

#![warn(missing_docs)]

mod detection;
mod recovery;
mod validate;

pub use detection::{FailureKind, HealthDecision, HealthMonitor, HeartbeatMonitor};
pub use recovery::{
    plan_job_restart, plan_recovery, ChannelAction, ChannelUpdate, ExecutionSnapshot, RecoveryCase,
    RecoveryPlan, TaskRunState,
};
pub use validate::validate_recovery_plan;
