//! Fine-grained failure recovery on the graphlet basis (§IV-B, §IV-C).
//!
//! Given a failed task, the planner computes the *minimal* set of tasks to
//! re-run plus the channel updates needed, distinguishing:
//!
//! * **intra-graphlet** failures — idempotent tasks re-run alone (their
//!   gang-scheduled predecessors merely re-send buffered output);
//!   non-idempotent tasks additionally force every already-executed
//!   downstream task to re-run, because their re-run may produce different
//!   data/order;
//! * **input failures** (predecessors in another graphlet) — predecessors
//!   wrote to their Cache Workers, so the re-launched task simply re-fetches;
//!   no producer involvement;
//! * **output failures** (successors in another graphlet) — the new
//!   instance writes to its local Cache Worker again; consumers are
//!   untouched;
//! * **useless failures** (§IV-C) — deterministic application errors abort
//!   the job instead of wasting resources on retries.

use crate::detection::FailureKind;
use std::collections::BTreeSet;
use swift_dag::{EdgeKind, JobDag, Partition, StageId, TaskId};

/// Run state of a task as seen by the Job Monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskRunState {
    /// Not yet scheduled (or scheduled but plan not begun).
    NotStarted,
    /// Currently executing.
    Running,
    /// Completed successfully.
    Finished,
}

impl TaskRunState {
    /// Whether the task has executed at all (running or finished) — the
    /// §IV-B1b criterion for the non-idempotent re-run cascade.
    pub fn executed(self) -> bool {
        self != TaskRunState::NotStarted
    }
}

/// The Job Monitor state the planner reads. The simulation scheduler and
/// the real engine both implement this.
pub trait ExecutionSnapshot {
    /// Current run state of `task`.
    fn task_state(&self, task: TaskId) -> TaskRunState;

    /// Whether consumer `to` has already received everything it needs from
    /// producer `from` (used for the "If T6 and T7 have received the
    /// desired data from T4, no step will be taken" shortcut).
    fn delivered(&self, from: TaskId, to: TaskId) -> bool;
}

/// Which §IV-B/§IV-C case a recovery plan falls under (for reporting; the
/// plan itself is computed edge-wise and handles mixed topologies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryCase {
    /// §IV-C: deterministic application error — abort, don't retry.
    Useless,
    /// Failed task had finished and all consumers already hold its data.
    NoActionNeeded,
    /// §IV-B1a: idempotent task within one graphlet.
    IntraIdempotent,
    /// §IV-B1b: non-idempotent task; executed successors re-run too.
    IntraNonIdempotent,
    /// §IV-B2: predecessors in a different graphlet (Cache Worker re-fetch).
    InputFailure,
    /// §IV-B3: successors in a different graphlet (local CW re-write).
    OutputFailure,
    /// More than one of the above aspects applies.
    Mixed,
}

impl RecoveryCase {
    /// Stable lower-snake label, used by trace exporters and CLIs.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryCase::Useless => "useless",
            RecoveryCase::NoActionNeeded => "no_action_needed",
            RecoveryCase::IntraIdempotent => "intra_idempotent",
            RecoveryCase::IntraNonIdempotent => "intra_non_idempotent",
            RecoveryCase::InputFailure => "input_failure",
            RecoveryCase::OutputFailure => "output_failure",
            RecoveryCase::Mixed => "mixed",
        }
    }
}

impl std::fmt::Display for RecoveryCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a data channel must be adjusted for a re-launched task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelAction {
    /// Intra-graphlet pipeline edge: the (still live) producer updates its
    /// output channel to the new instance and re-sends buffered shuffle
    /// data — without re-running.
    Resend,
    /// Cross-graphlet barrier edge: the new instance proactively pulls the
    /// data from the producer-side Cache Workers; producers uninvolved.
    CacheFetch,
    /// The new producer instance replaces the failed one in an existing
    /// consumer's input channel set (output side of the failed task).
    Reconnect,
}

/// One channel adjustment in a [`RecoveryPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelUpdate {
    /// Producing task (original instance id; re-launches keep the id).
    pub producer: TaskId,
    /// Consuming task.
    pub consumer: TaskId,
    /// What must happen on this channel.
    pub action: ChannelAction,
}

/// The outcome of planning recovery for one failed task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// The task whose failure triggered the plan.
    pub failed: TaskId,
    /// Reporting classification.
    pub case: RecoveryCase,
    /// §IV-C: abort the job instead of recovering.
    pub abort_job: bool,
    /// Tasks to re-launch, sorted; empty iff `abort_job` or no action.
    pub rerun: Vec<TaskId>,
    /// Channel adjustments accompanying the re-launches, sorted.
    pub updates: Vec<ChannelUpdate>,
}

impl RecoveryPlan {
    /// Total number of tasks the plan re-runs.
    pub fn rerun_count(&self) -> usize {
        self.rerun.len()
    }
}

/// All task instances of `stage`.
fn tasks_of(dag: &JobDag, stage: StageId) -> impl Iterator<Item = TaskId> + '_ {
    (0..dag.stage(stage).task_count).map(move |i| TaskId::new(stage, i))
}

/// Plans recovery for `failed` under failure `kind` given the job's
/// partition and the current execution snapshot.
pub fn plan_recovery(
    dag: &JobDag,
    part: &Partition,
    failed: TaskId,
    kind: FailureKind,
    snap: &dyn ExecutionSnapshot,
) -> RecoveryPlan {
    if !kind.recoverable() {
        return RecoveryPlan {
            failed,
            case: RecoveryCase::Useless,
            abort_job: true,
            rerun: Vec::new(),
            updates: Vec::new(),
        };
    }

    let failed_stage = failed.stage;
    let g_failed = part.graphlet_of(failed_stage);

    // Shortcut (§IV-B1a): a finished idempotent task whose every consumer
    // already received its data needs no recovery at all.
    let idempotent = dag.stage(failed_stage).idempotent;
    if idempotent && snap.task_state(failed) == TaskRunState::Finished {
        let all_delivered = dag.outgoing(failed_stage).all(|e| {
            tasks_of(dag, e.dst)
                .all(|c| !snap.task_state(c).executed() || snap.delivered(failed, c))
        });
        // Every executed consumer has the data; not-yet-started consumers
        // will need it, so also require that *all* consumers exist and have
        // it (otherwise the data must be regenerated for them) — unless the
        // edge is a barrier edge, whose data survives in the Cache Worker.
        let future_safe = dag.outgoing(failed_stage).all(|e| {
            e.kind == EdgeKind::Barrier || tasks_of(dag, e.dst).all(|c| snap.delivered(failed, c))
        });
        if all_delivered && future_safe {
            return RecoveryPlan {
                failed,
                case: RecoveryCase::NoActionNeeded,
                abort_job: false,
                rerun: Vec::new(),
                updates: Vec::new(),
            };
        }
    }

    // Re-run set: the failed task, plus — for non-idempotent stages — every
    // executed task downstream of it (transitively), because re-running a
    // non-idempotent task invalidates everything derived from its output.
    let mut rerun: BTreeSet<TaskId> = BTreeSet::new();
    rerun.insert(failed);
    if !idempotent {
        let mut frontier = vec![failed_stage];
        let mut seen = vec![false; dag.stage_count()];
        seen[failed_stage.index()] = true;
        while let Some(s) = frontier.pop() {
            for e in dag.outgoing(s) {
                for c in tasks_of(dag, e.dst) {
                    if snap.task_state(c).executed() {
                        rerun.insert(c);
                    }
                }
                if !seen[e.dst.index()] {
                    seen[e.dst.index()] = true;
                    frontier.push(e.dst);
                }
            }
        }
    }

    // Channel updates.
    let mut updates: BTreeSet<(TaskId, TaskId, u8)> = BTreeSet::new();
    let act_code = |a: ChannelAction| match a {
        ChannelAction::Resend => 0u8,
        ChannelAction::CacheFetch => 1,
        ChannelAction::Reconnect => 2,
    };
    for &task in &rerun {
        // Input side: producers not themselves re-running must either
        // re-send (pipeline, intra-graphlet) or be re-fetched from their
        // Cache Workers (barrier, cross-graphlet).
        for e in dag.incoming(task.stage) {
            let action = if e.kind == EdgeKind::Barrier
                || part.graphlet_of(e.src) != part.graphlet_of(task.stage)
            {
                ChannelAction::CacheFetch
            } else {
                ChannelAction::Resend
            };
            for p in tasks_of(dag, e.src) {
                if !rerun.contains(&p) && snap.task_state(p).executed() {
                    updates.insert((p, task, act_code(action)));
                }
            }
        }
        // Output side: consumers that already exist and are not re-running
        // must learn about the new producer instance — but only on
        // intra-graphlet pipeline edges; on barrier edges the new instance
        // just writes to its local Cache Worker again (§IV-B3).
        for e in dag.outgoing(task.stage) {
            if e.kind == EdgeKind::Barrier {
                continue;
            }
            for c in tasks_of(dag, e.dst) {
                if !rerun.contains(&c) && snap.task_state(c).executed() {
                    updates.insert((task, c, act_code(ChannelAction::Reconnect)));
                }
            }
        }
    }

    // Classification for reporting.
    let cross_pred = dag
        .incoming(failed_stage)
        .any(|e| part.graphlet_of(e.src) != g_failed);
    let cross_succ = dag
        .outgoing(failed_stage)
        .any(|e| part.graphlet_of(e.dst) != g_failed);
    let case = match (cross_pred, cross_succ) {
        (true, true) => RecoveryCase::Mixed,
        (true, false) => RecoveryCase::InputFailure,
        (false, true) => RecoveryCase::OutputFailure,
        (false, false) => {
            if idempotent {
                RecoveryCase::IntraIdempotent
            } else {
                RecoveryCase::IntraNonIdempotent
            }
        }
    };

    let updates: Vec<ChannelUpdate> = updates
        .into_iter()
        .map(|(producer, consumer, code)| ChannelUpdate {
            producer,
            consumer,
            action: match code {
                0 => ChannelAction::Resend,
                1 => ChannelAction::CacheFetch,
                _ => ChannelAction::Reconnect,
            },
        })
        .collect();

    RecoveryPlan {
        failed,
        case,
        abort_job: false,
        rerun: rerun.into_iter().collect(),
        updates,
    }
}

/// The baseline policy the paper compares against (Figs. 14 & 15): restart
/// the whole job, re-running every task.
pub fn plan_job_restart(dag: &JobDag, failed: TaskId) -> RecoveryPlan {
    let rerun: Vec<TaskId> = dag
        .stages()
        .iter()
        .flat_map(|s| tasks_of(dag, s.id))
        .collect();
    RecoveryPlan {
        failed,
        case: RecoveryCase::Mixed,
        abort_job: false,
        rerun,
        updates: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use swift_dag::{partition, DagBuilder, Operator};

    /// Snapshot backed by hash maps.
    #[derive(Default)]
    struct Snap {
        states: HashMap<TaskId, TaskRunState>,
        delivered: HashMap<(TaskId, TaskId), bool>,
        default_delivered: bool,
    }

    impl ExecutionSnapshot for Snap {
        fn task_state(&self, task: TaskId) -> TaskRunState {
            *self.states.get(&task).unwrap_or(&TaskRunState::NotStarted)
        }
        fn delivered(&self, from: TaskId, to: TaskId) -> bool {
            *self
                .delivered
                .get(&(from, to))
                .unwrap_or(&self.default_delivered)
        }
    }

    /// Fig. 6 topology: T1,T2 -> T4 -> T6,T7 all in one graphlet (pipeline
    /// edges), one task per stage.
    fn fig6(idempotent_t4: bool) -> (swift_dag::JobDag, swift_dag::Partition) {
        let mut b = DagBuilder::new(1, "fig6");
        let t1 = b
            .stage("T1", 1)
            .op(Operator::TableScan { table: "a".into() })
            .op(Operator::ShuffleWrite)
            .build();
        let t2 = b
            .stage("T2", 1)
            .op(Operator::TableScan { table: "b".into() })
            .op(Operator::ShuffleWrite)
            .build();
        let mut t4b = b
            .stage("T4", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::HashJoin)
            .op(Operator::ShuffleWrite);
        if !idempotent_t4 {
            t4b = t4b.non_idempotent();
        }
        let t4 = t4b.build();
        let t6 = b
            .stage("T6", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::Filter)
            .op(Operator::ShuffleWrite)
            .build();
        let t7 = b
            .stage("T7", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::Filter)
            .op(Operator::ShuffleWrite)
            .build();
        b.edge(t1, t4).edge(t2, t4).edge(t4, t6).edge(t4, t7);
        let dag = b.build().unwrap();
        let part = partition(&dag);
        assert_eq!(part.len(), 1, "Fig. 6 is one graphlet");
        (dag, part)
    }

    fn tid(dag: &swift_dag::JobDag, name: &str) -> TaskId {
        TaskId::new(dag.stage_by_name(name).unwrap().id, 0)
    }

    #[test]
    fn useless_failure_aborts_without_rerun() {
        let (dag, part) = fig6(true);
        let t4 = tid(&dag, "T4");
        let plan = plan_recovery(
            &dag,
            &part,
            t4,
            FailureKind::ApplicationError,
            &Snap::default(),
        );
        assert!(plan.abort_job);
        assert_eq!(plan.case, RecoveryCase::Useless);
        assert!(plan.rerun.is_empty());
        assert!(plan.updates.is_empty());
    }

    #[test]
    fn idempotent_finished_and_delivered_needs_nothing() {
        let (dag, part) = fig6(true);
        let t4 = tid(&dag, "T4");
        let mut snap = Snap {
            default_delivered: true,
            ..Default::default()
        };
        snap.states.insert(t4, TaskRunState::Finished);
        for n in ["T1", "T2", "T6", "T7"] {
            snap.states.insert(tid(&dag, n), TaskRunState::Finished);
        }
        let plan = plan_recovery(&dag, &part, t4, FailureKind::ProcessRestart, &snap);
        assert_eq!(plan.case, RecoveryCase::NoActionNeeded);
        assert!(plan.rerun.is_empty());
    }

    #[test]
    fn idempotent_rerun_with_resend_from_predecessors() {
        // Fig. 6(a): T4 fails before T6/T7 got its data. T4 re-runs alone;
        // T1, T2 re-send; T6, T7 (already running) reconnect to T4'.
        let (dag, part) = fig6(true);
        let t4 = tid(&dag, "T4");
        let mut snap = Snap::default();
        for n in ["T1", "T2"] {
            snap.states.insert(tid(&dag, n), TaskRunState::Finished);
        }
        snap.states.insert(t4, TaskRunState::Running);
        for n in ["T6", "T7"] {
            snap.states.insert(tid(&dag, n), TaskRunState::Running);
        }
        let plan = plan_recovery(&dag, &part, t4, FailureKind::ProcessRestart, &snap);
        assert_eq!(plan.case, RecoveryCase::IntraIdempotent);
        assert_eq!(plan.rerun, vec![t4]);
        let resends: Vec<_> = plan
            .updates
            .iter()
            .filter(|u| u.action == ChannelAction::Resend)
            .collect();
        assert_eq!(resends.len(), 2, "T1 and T2 re-send");
        assert!(resends.iter().all(|u| u.consumer == t4));
        let reconnects: Vec<_> = plan
            .updates
            .iter()
            .filter(|u| u.action == ChannelAction::Reconnect)
            .collect();
        assert_eq!(reconnects.len(), 2, "T6 and T7 reconnect");
        assert!(reconnects.iter().all(|u| u.producer == t4));
    }

    #[test]
    fn non_idempotent_cascades_to_executed_successors() {
        // Fig. 6(b): non-idempotent T4 fails; executed successors T6, T7
        // re-run as well.
        let (dag, part) = fig6(false);
        let t4 = tid(&dag, "T4");
        let t6 = tid(&dag, "T6");
        let t7 = tid(&dag, "T7");
        let mut snap = Snap::default();
        for n in ["T1", "T2"] {
            snap.states.insert(tid(&dag, n), TaskRunState::Finished);
        }
        snap.states.insert(t4, TaskRunState::Running);
        snap.states.insert(t6, TaskRunState::Finished);
        snap.states.insert(t7, TaskRunState::Running);
        let plan = plan_recovery(&dag, &part, t4, FailureKind::ProcessRestart, &snap);
        assert_eq!(plan.case, RecoveryCase::IntraNonIdempotent);
        assert_eq!(plan.rerun, vec![t4, t6, t7]);
    }

    #[test]
    fn non_idempotent_spares_unstarted_successors() {
        let (dag, part) = fig6(false);
        let t4 = tid(&dag, "T4");
        let mut snap = Snap::default();
        snap.states.insert(t4, TaskRunState::Running);
        for n in ["T1", "T2"] {
            snap.states.insert(tid(&dag, n), TaskRunState::Finished);
        }
        // T6/T7 not started: only T4 re-runs.
        let plan = plan_recovery(&dag, &part, t4, FailureKind::MachineCrash, &snap);
        assert_eq!(plan.rerun, vec![t4]);
    }

    /// Fig. 7(a): T1,T2 in graphlet 1 (they sort), T4 (+T6,T7) in graphlet 2.
    fn fig7a() -> (swift_dag::JobDag, swift_dag::Partition) {
        let mut b = DagBuilder::new(1, "fig7a");
        let sorted_scan = |b: &mut DagBuilder, n: &str| {
            b.stage(n, 1)
                .op(Operator::TableScan {
                    table: n.to_lowercase(),
                })
                .op(Operator::MergeSort)
                .op(Operator::ShuffleWrite)
                .build()
        };
        let t1 = sorted_scan(&mut b, "T1");
        let t2 = sorted_scan(&mut b, "T2");
        let t4 = b
            .stage("T4", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::MergeJoin)
            .op(Operator::ShuffleWrite)
            .build();
        let t6 = b
            .stage("T6", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::Filter)
            .op(Operator::ShuffleWrite)
            .build();
        let t7 = b
            .stage("T7", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::Filter)
            .op(Operator::ShuffleWrite)
            .build();
        b.edge(t1, t4).edge(t2, t4).edge(t4, t6).edge(t4, t7);
        let dag = b.build().unwrap();
        let part = partition(&dag);
        assert_eq!(part.len(), 3, "T1 and T2 form their own graphlets");
        (dag, part)
    }

    #[test]
    fn input_failure_refetches_from_cache_workers() {
        // Fig. 7(a): predecessors in other graphlets are NOT notified; the
        // re-launched T4' pulls from their Cache Workers.
        let (dag, part) = fig7a();
        let t4 = tid(&dag, "T4");
        let mut snap = Snap::default();
        for n in ["T1", "T2"] {
            snap.states.insert(tid(&dag, n), TaskRunState::Finished);
        }
        snap.states.insert(t4, TaskRunState::Running);
        let plan = plan_recovery(&dag, &part, t4, FailureKind::ProcessRestart, &snap);
        assert_eq!(plan.case, RecoveryCase::InputFailure);
        assert_eq!(plan.rerun, vec![t4]);
        let fetches: Vec<_> = plan
            .updates
            .iter()
            .filter(|u| u.action == ChannelAction::CacheFetch)
            .collect();
        assert_eq!(fetches.len(), 2);
        assert!(plan
            .updates
            .iter()
            .all(|u| u.action != ChannelAction::Resend));
    }

    /// Fig. 7(b): T4 sorts, so T6/T7 are in a different graphlet.
    fn fig7b() -> (swift_dag::JobDag, swift_dag::Partition) {
        let mut b = DagBuilder::new(1, "fig7b");
        let t1 = b
            .stage("T1", 1)
            .op(Operator::TableScan { table: "a".into() })
            .op(Operator::ShuffleWrite)
            .build();
        let t2 = b
            .stage("T2", 1)
            .op(Operator::TableScan { table: "b".into() })
            .op(Operator::ShuffleWrite)
            .build();
        let t4 = b
            .stage("T4", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::HashJoin)
            .op(Operator::MergeSort)
            .op(Operator::ShuffleWrite)
            .build();
        let t6 = b
            .stage("T6", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::Filter)
            .op(Operator::ShuffleWrite)
            .build();
        let t7 = b
            .stage("T7", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::Filter)
            .op(Operator::ShuffleWrite)
            .build();
        b.edge(t1, t4).edge(t2, t4).edge(t4, t6).edge(t4, t7);
        let dag = b.build().unwrap();
        let part = partition(&dag);
        assert_eq!(part.len(), 3, "{{T1,T2,T4}}, {{T6}}, {{T7}}");
        (dag, part)
    }

    #[test]
    fn output_failure_needs_no_output_updates() {
        // Fig. 7(b): T4' only writes to its local Cache Worker; T6/T7 (not
        // yet scheduled — different graphlet) need no channel updates.
        let (dag, part) = fig7b();
        let t4 = tid(&dag, "T4");
        let mut snap = Snap::default();
        for n in ["T1", "T2"] {
            snap.states.insert(tid(&dag, n), TaskRunState::Finished);
        }
        snap.states.insert(t4, TaskRunState::Running);
        let plan = plan_recovery(&dag, &part, t4, FailureKind::ProcessRestart, &snap);
        assert_eq!(plan.case, RecoveryCase::OutputFailure);
        assert_eq!(plan.rerun, vec![t4]);
        // Input side: intra-graphlet pipeline -> resend; no reconnects.
        assert!(plan
            .updates
            .iter()
            .all(|u| u.action == ChannelAction::Resend));
        assert_eq!(plan.updates.len(), 2);
    }

    #[test]
    fn job_restart_reruns_everything() {
        let (dag, _) = fig6(true);
        let plan = plan_job_restart(&dag, tid(&dag, "T4"));
        assert_eq!(plan.rerun_count() as u64, dag.total_tasks());
    }

    #[test]
    fn multi_task_stages_update_all_pairs() {
        // 2-task stages: failing one task of B resends from both A tasks.
        let mut b = DagBuilder::new(1, "wide");
        let a = b
            .stage("A", 2)
            .op(Operator::TableScan { table: "t".into() })
            .op(Operator::ShuffleWrite)
            .build();
        let bb = b
            .stage("B", 2)
            .op(Operator::ShuffleRead)
            .op(Operator::Filter)
            .op(Operator::AdhocSink)
            .build();
        b.edge(a, bb);
        let dag = b.build().unwrap();
        let part = partition(&dag);
        let failed = TaskId::new(bb, 1);
        let mut snap = Snap::default();
        snap.states
            .insert(TaskId::new(a, 0), TaskRunState::Finished);
        snap.states
            .insert(TaskId::new(a, 1), TaskRunState::Finished);
        snap.states
            .insert(TaskId::new(bb, 0), TaskRunState::Running);
        snap.states.insert(failed, TaskRunState::Running);
        let plan = plan_recovery(&dag, &part, failed, FailureKind::ProcessRestart, &snap);
        assert_eq!(plan.rerun, vec![failed]);
        assert_eq!(plan.updates.len(), 2);
        assert!(plan
            .updates
            .iter()
            .all(|u| u.action == ChannelAction::Resend && u.consumer == failed));
    }
}
