//! Independent validation of recovery plans against the §IV-B case
//! analysis.
//!
//! [`validate_recovery_plan`] re-derives, with a deliberately different
//! algorithm from [`plan_recovery`](crate::plan_recovery) (fixed-point
//! edge relaxation instead of stack-based traversal), what a correct plan
//! must and must not contain:
//!
//! * **soundness** — everything the case analysis requires re-running is
//!   in the plan (the failed task; for non-idempotent stages, every
//!   executed transitive downstream task);
//! * **minimality** — nothing else is: each re-run task carries a §IV-B
//!   justification, so fine-grained recovery never silently degenerates
//!   toward job restart;
//! * **channel discipline** — Resend only on intra-graphlet pipeline
//!   input edges, CacheFetch only on cross-graphlet/barrier input edges,
//!   Reconnect only toward executed, non-re-running pipeline consumers.
//!
//! The chaos harness calls this on every plan the simulator produces; the
//! planner's own unit tests also use it as a second opinion.

use crate::detection::FailureKind;
use crate::recovery::{ChannelAction, ExecutionSnapshot, RecoveryPlan, TaskRunState};
use std::collections::BTreeSet;
use swift_dag::{EdgeKind, JobDag, Partition, StageId, TaskId};

fn tasks_of(dag: &JobDag, stage: StageId) -> impl Iterator<Item = TaskId> + '_ {
    (0..dag.stage(stage).task_count).map(move |i| TaskId::new(stage, i))
}

/// Stages transitively downstream of `from` (excluding `from` itself),
/// computed by fixed-point relaxation over the edge list — deliberately
/// not the planner's traversal.
fn downstream_stages(dag: &JobDag, from: StageId) -> Vec<bool> {
    let mut reach = vec![false; dag.stage_count()];
    loop {
        let mut changed = false;
        for e in dag.edges() {
            let src_in = e.src == from || reach[e.src.index()];
            if src_in && !reach[e.dst.index()] {
                reach[e.dst.index()] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    reach
}

/// Whether §IV-B1a's shortcut applies: a finished idempotent task all of
/// whose consumers (present and future) are already served.
fn no_action_justified(dag: &JobDag, failed: TaskId, snap: &dyn ExecutionSnapshot) -> bool {
    if !dag.stage(failed.stage).idempotent {
        return false;
    }
    if snap.task_state(failed) != TaskRunState::Finished {
        return false;
    }
    dag.outgoing(failed.stage).all(|e| {
        tasks_of(dag, e.dst).all(|c| {
            if e.kind == EdgeKind::Barrier {
                // Barrier output survives in the Cache Worker; only
                // already-executed consumers needed a live delivery.
                !snap.task_state(c).executed() || snap.delivered(failed, c)
            } else {
                // Pipeline output lived in the dead executor: every
                // consumer, even future ones, must already hold the data.
                snap.delivered(failed, c)
            }
        })
    })
}

/// Checks `plan` against an independent §IV-B derivation. Returns the list
/// of violations — empty means the plan is exactly right (sound, minimal,
/// channel-correct).
pub fn validate_recovery_plan(
    dag: &JobDag,
    part: &Partition,
    failed: TaskId,
    kind: FailureKind,
    snap: &dyn ExecutionSnapshot,
    plan: &RecoveryPlan,
) -> Vec<String> {
    let mut violations = Vec::new();

    if plan.failed != failed {
        violations.push(format!(
            "plan is for task {} but {} failed",
            plan.failed, failed
        ));
    }

    // §IV-C: deterministic application errors abort, everything else
    // recovers.
    if !kind.recoverable() {
        if !plan.abort_job {
            violations.push(format!(
                "{kind:?} is a useless failure but the plan does not abort"
            ));
        }
        if !plan.rerun.is_empty() || !plan.updates.is_empty() {
            violations.push("aborting plan still schedules reruns or channel updates".into());
        }
        return violations;
    }
    if plan.abort_job {
        violations.push(format!(
            "{kind:?} is recoverable but the plan aborts the job"
        ));
        return violations;
    }

    let rerun: BTreeSet<TaskId> = plan.rerun.iter().copied().collect();
    if rerun.len() != plan.rerun.len() {
        violations.push("rerun list contains duplicates".into());
    }

    let no_action = no_action_justified(dag, failed, snap);
    if rerun.is_empty() {
        if !no_action {
            violations.push(format!(
                "empty rerun set, but task {failed} is not a finished idempotent task with all consumers served"
            ));
        }
        // An empty plan must also not touch any channels.
        if !plan.updates.is_empty() {
            violations.push("no-action plan still carries channel updates".into());
        }
        return violations;
    }
    if !rerun.contains(&failed) {
        violations.push(format!("failed task {failed} is not in its own rerun set"));
    }

    // Required set: the failed task, plus — iff its stage is
    // non-idempotent — every executed task strictly downstream.
    let idempotent = dag.stage(failed.stage).idempotent;
    let downstream = downstream_stages(dag, failed.stage);
    if !idempotent {
        for s in dag.stages() {
            if !downstream[s.id.index()] {
                continue;
            }
            for t in tasks_of(dag, s.id) {
                if snap.task_state(t).executed() && !rerun.contains(&t) {
                    violations.push(format!(
                        "non-idempotent cascade misses executed downstream task {t}"
                    ));
                }
            }
        }
    }

    // Minimality: every re-run task must be justified.
    for &t in &rerun {
        if t == failed {
            continue;
        }
        let justified = !idempotent && downstream[t.stage.index()] && snap.task_state(t).executed();
        if !justified {
            violations.push(format!(
                "rerun of {t} has no §IV-B justification (idempotent failed stage: {idempotent}, downstream: {}, executed: {:?})",
                downstream[t.stage.index()],
                snap.task_state(t)
            ));
        }
    }

    // Channel discipline.
    for u in &plan.updates {
        let Some(edge) = dag
            .edges()
            .iter()
            .find(|e| e.src == u.producer.stage && e.dst == u.consumer.stage)
        else {
            violations.push(format!(
                "channel update {} -> {} follows no DAG edge",
                u.producer, u.consumer
            ));
            continue;
        };
        let cross = part.graphlet_of(edge.src) != part.graphlet_of(edge.dst);
        match u.action {
            ChannelAction::Resend => {
                if edge.kind == EdgeKind::Barrier || cross {
                    violations.push(format!(
                        "Resend {} -> {} on a {} edge: barrier/cross-graphlet inputs re-fetch from Cache Workers",
                        u.producer,
                        u.consumer,
                        if cross { "cross-graphlet" } else { "barrier" }
                    ));
                }
                if !rerun.contains(&u.consumer) {
                    violations.push(format!(
                        "Resend toward {} which is not re-running",
                        u.consumer
                    ));
                }
                if rerun.contains(&u.producer) || !snap.task_state(u.producer).executed() {
                    violations.push(format!(
                        "Resend from {} which is re-running or never executed",
                        u.producer
                    ));
                }
            }
            ChannelAction::CacheFetch => {
                if edge.kind != EdgeKind::Barrier && !cross {
                    violations.push(format!(
                        "CacheFetch {} -> {} on an intra-graphlet pipeline edge: live producers re-send instead",
                        u.producer, u.consumer
                    ));
                }
                if !rerun.contains(&u.consumer) {
                    violations.push(format!(
                        "CacheFetch toward {} which is not re-running",
                        u.consumer
                    ));
                }
            }
            ChannelAction::Reconnect => {
                if edge.kind == EdgeKind::Barrier {
                    violations.push(format!(
                        "Reconnect {} -> {} on a barrier edge: §IV-B3 says the new instance just re-writes its Cache Worker",
                        u.producer, u.consumer
                    ));
                }
                if !rerun.contains(&u.producer) {
                    violations.push(format!(
                        "Reconnect from {} which is not re-running",
                        u.producer
                    ));
                }
                if rerun.contains(&u.consumer) || !snap.task_state(u.consumer).executed() {
                    violations.push(format!(
                        "Reconnect toward {} which is re-running or never executed",
                        u.consumer
                    ));
                }
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{plan_recovery, ChannelUpdate};
    use std::collections::HashMap;
    use swift_dag::{partition, DagBuilder, Operator};

    #[derive(Default)]
    struct Snap {
        states: HashMap<TaskId, TaskRunState>,
    }

    impl ExecutionSnapshot for Snap {
        fn task_state(&self, task: TaskId) -> TaskRunState {
            *self.states.get(&task).unwrap_or(&TaskRunState::NotStarted)
        }
        fn delivered(&self, _from: TaskId, _to: TaskId) -> bool {
            false
        }
    }

    fn diamond(idempotent_mid: bool) -> (JobDag, Partition) {
        let mut b = DagBuilder::new(1, "diamond");
        let a = b
            .stage("A", 1)
            .op(Operator::TableScan { table: "t".into() })
            .op(Operator::ShuffleWrite)
            .build();
        let mut mb = b
            .stage("M", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::HashJoin)
            .op(Operator::ShuffleWrite);
        if !idempotent_mid {
            mb = mb.non_idempotent();
        }
        let m = mb.build();
        let c = b
            .stage("C", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::AdhocSink)
            .build();
        b.edge(a, m).edge(m, c);
        let dag = b.build().unwrap();
        let part = partition(&dag);
        (dag, part)
    }

    fn t(dag: &JobDag, name: &str) -> TaskId {
        TaskId::new(dag.stage_by_name(name).unwrap().id, 0)
    }

    fn running_all(dag: &JobDag) -> Snap {
        let mut snap = Snap::default();
        for s in dag.stages() {
            for i in 0..s.task_count {
                snap.states
                    .insert(TaskId::new(s.id, i), TaskRunState::Running);
            }
        }
        snap
    }

    #[test]
    fn planner_output_validates_clean() {
        for idem in [true, false] {
            let (dag, part) = diamond(idem);
            let snap = running_all(&dag);
            for kind in [
                FailureKind::ProcessRestart,
                FailureKind::MachineCrash,
                FailureKind::ApplicationError,
            ] {
                for name in ["A", "M", "C"] {
                    let failed = t(&dag, name);
                    let plan = plan_recovery(&dag, &part, failed, kind, &snap);
                    let v = validate_recovery_plan(&dag, &part, failed, kind, &snap, &plan);
                    assert!(v.is_empty(), "idem={idem} kind={kind:?} {name}: {v:?}");
                }
            }
        }
    }

    #[test]
    fn overbroad_rerun_is_flagged() {
        let (dag, part) = diamond(true);
        let snap = running_all(&dag);
        let failed = t(&dag, "M");
        let mut plan = plan_recovery(&dag, &part, failed, FailureKind::ProcessRestart, &snap);
        // Tamper: drag the downstream consumer in even though M is
        // idempotent — job-restart-like overkill.
        plan.rerun.push(t(&dag, "C"));
        plan.rerun.sort();
        let v = validate_recovery_plan(
            &dag,
            &part,
            failed,
            FailureKind::ProcessRestart,
            &snap,
            &plan,
        );
        assert!(
            v.iter().any(|m| m.contains("no §IV-B justification")),
            "expected minimality violation, got {v:?}"
        );
    }

    #[test]
    fn missing_cascade_is_flagged() {
        let (dag, part) = diamond(false);
        let snap = running_all(&dag);
        let failed = t(&dag, "M");
        let mut plan = plan_recovery(&dag, &part, failed, FailureKind::ProcessRestart, &snap);
        // Tamper: forget the executed downstream task.
        plan.rerun.retain(|&x| x != t(&dag, "C"));
        let v = validate_recovery_plan(
            &dag,
            &part,
            failed,
            FailureKind::ProcessRestart,
            &snap,
            &plan,
        );
        assert!(
            v.iter().any(|m| m.contains("cascade misses")),
            "expected soundness violation, got {v:?}"
        );
    }

    #[test]
    fn wrong_channel_action_is_flagged() {
        let (dag, part) = diamond(true);
        let snap = running_all(&dag);
        let failed = t(&dag, "M");
        let mut plan = plan_recovery(&dag, &part, failed, FailureKind::ProcessRestart, &snap);
        // Tamper: claim the upstream pipeline producer must be re-fetched
        // from a Cache Worker (only correct across graphlets).
        // Only meaningful if A->M is intra-graphlet in this topology.
        if part.graphlet_of(t(&dag, "A").stage) == part.graphlet_of(failed.stage) {
            plan.updates.push(ChannelUpdate {
                producer: t(&dag, "A"),
                consumer: failed,
                action: ChannelAction::CacheFetch,
            });
            let v = validate_recovery_plan(
                &dag,
                &part,
                failed,
                FailureKind::ProcessRestart,
                &snap,
                &plan,
            );
            assert!(
                v.iter().any(|m| m.contains("intra-graphlet pipeline edge")),
                "expected channel violation, got {v:?}"
            );
        }
    }

    #[test]
    fn abort_without_useless_failure_is_flagged() {
        let (dag, part) = diamond(true);
        let snap = running_all(&dag);
        let failed = t(&dag, "M");
        let mut plan = plan_recovery(&dag, &part, failed, FailureKind::ProcessRestart, &snap);
        plan.abort_job = true;
        plan.rerun.clear();
        plan.updates.clear();
        let v = validate_recovery_plan(
            &dag,
            &part,
            failed,
            FailureKind::ProcessRestart,
            &snap,
            &plan,
        );
        assert!(v.iter().any(|m| m.contains("recoverable")), "got {v:?}");
    }
}
