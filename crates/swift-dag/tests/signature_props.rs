//! Seeded property tests for the canonical DAG-shape signature — the key
//! of the scheduling-template cache. Driven by the in-tree seeded RNG
//! (the workspace builds offline, so no proptest).
//!
//! The contract under test, from both directions:
//!
//! * **Equal shapes collide.** Rebuilding a job under any stage insertion
//!   order and any job id must produce the same canonical fingerprint —
//!   otherwise repeated query shapes would never hit the cache.
//! * **Different shapes don't.** Adding an edge, crossing a shuffle-size
//!   bucket boundary, or changing a stage's resource class must change
//!   the fingerprint — otherwise the cache would serve a wrong plan (the
//!   exact-confirmation step would catch it, but only by degrading every
//!   lookup to a miss; the *signature* is what must discriminate).
//!
//! Class functions mirror the scheduler's shape: a power-of-two
//! task-count bucket per stage and a threshold bucket per edge, so
//! within-bucket parameter changes deliberately *do* collide (that is
//! the template abstraction) — pinned by a control case below.

use swift_dag::{
    canonical_fingerprint, permuted_clone, DagBuilder, JobDag, Operator, ShapeClasses, ShapeProbe,
    Stage, StageId,
};
use swift_sim::SimRng;

const CASES: u64 = 128;

/// Production thresholds from §III-B: shuffle edge sizes 10 000 and
/// 90 000 split small / medium / large.
fn edge_bucket(size: u64) -> u64 {
    match size {
        0..=9_999 => 0,
        10_000..=89_999 => 1,
        _ => 2,
    }
}

/// Power-of-two task-count bucket plus the sort bit — a simplified
/// stand-in for the scheduler's resource class.
fn stage_class(s: &Stage) -> u64 {
    let bucket = u64::from(u32::BITS - s.task_count.leading_zeros());
    bucket << 1 | u64::from(s.sorts_output())
}

fn classes_of(dag: &JobDag) -> ShapeClasses {
    ShapeClasses {
        stage: dag.stages().iter().map(stage_class).collect(),
        edge: dag
            .edges()
            .iter()
            .map(|e| edge_bucket(dag.edge_shuffle_size(e)))
            .collect(),
    }
}

fn canon(dag: &JobDag) -> swift_dag::ShapeFingerprint {
    canonical_fingerprint(dag, &classes_of(dag)).0
}

/// A random layered DAG spec: per-stage (task count, sorts?) plus an
/// acyclic edge set over lower-to-higher indices. Specs make mutation
/// testing trivial — edit the spec, rebuild, compare signatures.
#[derive(Clone)]
struct Spec {
    job: u64,
    stages: Vec<(u32, bool)>,
    edges: Vec<(usize, usize)>,
}

fn random_spec(rng: &mut SimRng) -> Spec {
    let n = rng.range(2, 16) as usize;
    let mut stages = Vec::with_capacity(n);
    for _ in 0..n {
        stages.push((rng.range(1, 300) as u32, rng.chance(0.4)));
    }
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if j == i + 1 || (rng.chance(0.4) && j <= i + 3) {
                edges.push((i, j));
            }
        }
    }
    Spec {
        job: rng.u64(),
        stages,
        edges,
    }
}

fn build(spec: &Spec) -> JobDag {
    let mut b = DagBuilder::new(spec.job, "sig-prop");
    let mut ids = Vec::with_capacity(spec.stages.len());
    for (i, &(tasks, sorts)) in spec.stages.iter().enumerate() {
        let mut sb = b
            .stage(format!("S{i}"), tasks)
            .op(Operator::ShuffleRead)
            .op(Operator::HashJoin);
        if sorts {
            sb = sb.op(Operator::MergeSort);
        }
        ids.push(sb.op(Operator::ShuffleWrite).build());
    }
    for &(i, j) in &spec.edges {
        b.edge(ids[i], ids[j]);
    }
    b.build().expect("spec DAG must be valid")
}

/// Rebuilding a job under a shuffled stage insertion order and a fresh
/// job id yields the identical canonical fingerprint, the identical
/// canonical hash and the identical permutation-invariant multiset key.
#[test]
fn permuted_rebuilds_collide() {
    let mut rng = SimRng::new(0x516_0001);
    for case in 0..CASES {
        let dag = build(&random_spec(&mut rng));
        let mut order: Vec<StageId> = (0..dag.stage_count() as u32).map(StageId).collect();
        rng.shuffle(&mut order);
        let perm = permuted_clone(&dag, &order, rng.u64());

        let (fp_a, fp_b) = (canon(&dag), canon(&perm));
        assert_eq!(fp_a, fp_b, "case {case}: canonical fingerprints diverged");
        assert_eq!(fp_a.hash64(), fp_b.hash64(), "case {case}: hashes diverged");

        let mut probe = ShapeProbe::default();
        probe.fill(&dag, stage_class, |_, s| edge_bucket(s));
        let key_a = probe.multiset_key64();
        probe.fill(&perm, stage_class, |_, s| edge_bucket(s));
        let key_b = probe.multiset_key64();
        assert_eq!(key_a, key_b, "case {case}: multiset pre-screen diverged");
    }
}

/// Adding one edge (anywhere a forward edge is missing) changes the
/// canonical fingerprint.
#[test]
fn added_edge_does_not_collide() {
    let mut rng = SimRng::new(0x516_0002);
    let mut mutated_cases = 0;
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        let n = spec.stages.len();
        let missing: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .filter(|p| !spec.edges.contains(p))
            .collect();
        let Some(&extra) = missing.get(rng.range(0, 1 + missing.len() as u64) as usize) else {
            continue; // fully connected; nothing to add
        };
        let mut mutated = spec.clone();
        mutated.edges.push(extra);
        mutated.edges.sort_unstable();
        let (a, b) = (canon(&build(&spec)), canon(&build(&mutated)));
        assert_ne!(a, b, "case {case}: extra edge {extra:?} went unnoticed");
        assert_ne!(a.hash64(), b.hash64(), "case {case}: hash collided");
        mutated_cases += 1;
    }
    assert!(mutated_cases > CASES / 2, "mutation coverage collapsed");
}

/// Crossing the small/medium shuffle-size threshold changes the edge
/// class — and therefore the fingerprint — even when every stage keeps
/// its resource class; staying inside the bucket collides by design.
#[test]
fn size_bucket_crossing_does_not_collide() {
    // 99 producer tasks; 101 consumer tasks puts the edge size at
    // 99 × 101 = 9 999 (small), 102 at 10 098 (medium). Both consumer
    // counts sit in the same power-of-two bucket, so only the edge
    // class moves.
    let two_stage = |dst_tasks: u32| {
        build(&Spec {
            job: 9,
            stages: vec![(99, false), (dst_tasks, false)],
            edges: vec![(0, 1)],
        })
    };
    let small = canon(&two_stage(101));
    let medium = canon(&two_stage(102));
    assert_ne!(
        small, medium,
        "threshold crossing must change the signature"
    );

    // Control: a within-bucket change (size 9 900, still small; same
    // task-count bucket) is invisible — that imprecision is exactly what
    // makes repeated query shapes cacheable.
    let also_small = canon(&two_stage(100));
    assert_eq!(small, also_small, "within-bucket sizes must collide");
}

/// Moving a stage across a power-of-two task-count boundary changes its
/// resource class — and the fingerprint — even with the edge bucket held
/// fixed.
#[test]
fn resource_class_change_does_not_collide() {
    // 8 → 16 tasks crosses the bucket boundary; with 4 consumer tasks
    // the edge size stays far below the first threshold either way.
    let src_tasks = |t: u32| {
        build(&Spec {
            job: 11,
            stages: vec![(t, false), (4, false)],
            edges: vec![(0, 1)],
        })
    };
    let a = canon(&src_tasks(8));
    let b = canon(&src_tasks(16));
    assert_ne!(a, b, "resource-class change must change the signature");

    // Control: 9 → 15 stays inside the 8..16 bucket and collides.
    assert_eq!(canon(&src_tasks(9)), canon(&src_tasks(15)));
}
