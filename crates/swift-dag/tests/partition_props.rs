//! Property-based tests for graphlet partitioning invariants.
//!
//! The partitioner (Algorithms 1 & 2 of the paper) must, for *any* valid
//! job DAG:
//!
//! 1. cover every stage exactly once (graphlets are a partition);
//! 2. never place the two endpoints of a barrier edge in one graphlet;
//! 3. always place the two endpoints of a pipeline edge in one graphlet
//!    (graphlets are the connected components of the pipeline subgraph);
//! 4. produce an acyclic graphlet dependency graph with a valid
//!    submission order.

use proptest::prelude::*;
use swift_dag::{partition, DagBuilder, EdgeKind, JobDag, Operator, StageId};

/// Strategy: a random layered DAG with `n` stages. Each stage is randomly
/// sorting (producing barrier out-edges) or streaming; edges only go from
/// lower to higher stage index, so the graph is acyclic by construction.
fn arb_dag() -> impl Strategy<Value = JobDag> {
    (2usize..24, any::<u64>()).prop_flat_map(|(n, seed)| {
        let edge_flags = proptest::collection::vec(any::<bool>(), n * (n - 1) / 2);
        let sort_flags = proptest::collection::vec(any::<bool>(), n);
        let task_counts = proptest::collection::vec(1u32..20, n);
        (edge_flags, sort_flags, task_counts).prop_map(move |(edges, sorts, tasks)| {
            let mut b = DagBuilder::new(seed, format!("prop-{n}"));
            let mut ids = Vec::with_capacity(n);
            for i in 0..n {
                let mut sb = b
                    .stage(format!("S{i}"), tasks[i])
                    .op(Operator::ShuffleRead)
                    .op(Operator::HashJoin);
                if sorts[i] {
                    sb = sb.op(Operator::MergeSort);
                }
                ids.push(sb.op(Operator::ShuffleWrite).build());
            }
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    // Keep the graph sparse-ish: connect ~half the pairs of
                    // adjacent-ish layers, always connect i -> i+1 so the
                    // graph is connected.
                    if j == i + 1 || (edges[k] && j <= i + 3) {
                        b.edge(ids[i], ids[j]);
                    }
                    k += 1;
                }
            }
            b.build().expect("constructed DAG must be valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn graphlets_cover_every_stage_exactly_once(dag in arb_dag()) {
        let p = partition(&dag);
        let mut seen = vec![0u32; dag.stage_count()];
        for g in p.graphlets() {
            for s in &g.stages {
                seen[s.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "coverage counts: {seen:?}");
    }

    #[test]
    fn crossing_edges_are_always_barriers(dag in arb_dag()) {
        // The converse (every barrier edge crosses) holds only for
        // tree-shaped plans — see `barrier_edges_cross_in_tree_dags`.
        let p = partition(&dag);
        for e in dag.edges() {
            if p.graphlet_of(e.src) != p.graphlet_of(e.dst) {
                prop_assert_eq!(e.kind, EdgeKind::Barrier,
                    "pipeline edge {:?}->{:?} crosses graphlets", e.src, e.dst);
            }
        }
    }

    #[test]
    fn graphlet_dependency_graph_is_acyclic(dag in arb_dag()) {
        // submission_order() is a Kahn topo sort; it covers every graphlet
        // iff the dependency graph is acyclic.
        let p = partition(&dag);
        prop_assert_eq!(p.submission_order().len(), p.len());
    }

    #[test]
    fn barrier_edges_cross_in_tree_dags(
        (n, sorts, tasks) in (2usize..20).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(1u32..20, n),
        ))
    ) {
        // A pure chain (every stage has exactly one consumer) is the shape
        // planners emit; there the paper's guarantee holds exactly.
        let mut b = DagBuilder::new(1, "chain");
        let mut ids = Vec::new();
        for i in 0..n {
            let mut sb = b.stage(format!("S{i}"), tasks[i]).op(Operator::ShuffleRead);
            if sorts[i] {
                sb = sb.op(Operator::MergeSort);
            }
            ids.push(sb.op(Operator::ShuffleWrite).build());
        }
        for w in ids.windows(2) {
            b.edge(w[0], w[1]);
        }
        let dag = b.build().unwrap();
        let p = partition(&dag);
        for e in dag.edges() {
            if e.kind == EdgeKind::Barrier {
                prop_assert_ne!(p.graphlet_of(e.src), p.graphlet_of(e.dst));
            } else {
                prop_assert_eq!(p.graphlet_of(e.src), p.graphlet_of(e.dst));
            }
        }
    }

    #[test]
    fn pipeline_edges_never_cross_graphlets(dag in arb_dag()) {
        let p = partition(&dag);
        for e in dag.edges() {
            if e.kind == EdgeKind::Pipeline {
                prop_assert_eq!(p.graphlet_of(e.src), p.graphlet_of(e.dst),
                    "pipeline edge {:?}->{:?} crosses graphlets", e.src, e.dst);
            }
        }
    }

    #[test]
    fn submission_order_is_a_valid_topological_order(dag in arb_dag()) {
        let p = partition(&dag);
        let order = p.submission_order();
        prop_assert_eq!(order.len(), p.len());
        let mut pos = vec![usize::MAX; p.len()];
        for (i, g) in order.iter().enumerate() {
            pos[g.index()] = i;
        }
        for g in p.graphlets() {
            for dep in p.dependencies(g.id) {
                prop_assert!(pos[dep.index()] < pos[g.id.index()],
                    "dependency {:?} of {:?} scheduled later", dep, g.id);
            }
        }
    }

    #[test]
    fn trigger_stages_are_exactly_crossing_barrier_producers(dag in arb_dag()) {
        let p = partition(&dag);
        for g in p.graphlets() {
            for &s in &g.stages {
                let has_crossing_out = dag
                    .outgoing(s)
                    .any(|e| p.graphlet_of(e.dst) != p.graphlet_of(e.src));
                prop_assert_eq!(g.trigger_stages.contains(&s), has_crossing_out);
            }
        }
    }

    #[test]
    fn dependencies_follow_crossing_barrier_edges_exactly(dag in arb_dag()) {
        let p = partition(&dag);
        for e in dag.edges() {
            let from = p.graphlet_of(e.src);
            let to = p.graphlet_of(e.dst);
            if from != to {
                prop_assert!(p.dependencies(to).contains(&from));
                prop_assert!(p.dependents(from).contains(&to));
            }
        }
        // And nothing else: every recorded dependency is backed by an edge.
        for g in p.graphlets() {
            for &dep in p.dependencies(g.id) {
                let backed = dag.edges().iter().any(|e| {
                    p.graphlet_of(e.src) == dep && p.graphlet_of(e.dst) == g.id
                });
                prop_assert!(backed, "dependency {dep:?} of {:?} not backed by an edge", g.id);
            }
        }
    }

    #[test]
    fn partition_is_deterministic(dag in arb_dag()) {
        let a = partition(&dag);
        let b = partition(&dag);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn stage_membership_lookup_consistent(dag in arb_dag()) {
        let p = partition(&dag);
        for s in 0..dag.stage_count() {
            let sid = StageId(s as u32);
            let g = p.graphlet_of(sid);
            prop_assert!(p.graphlet(g).contains(sid));
        }
    }
}
