//! Randomized tests for graphlet partitioning invariants, driven by the
//! in-tree seeded RNG (the workspace builds offline, so no proptest).
//!
//! The partitioner (Algorithms 1 & 2 of the paper) must, for *any* valid
//! job DAG:
//!
//! 1. cover every stage exactly once (graphlets are a partition);
//! 2. never place the two endpoints of a barrier edge in one graphlet;
//! 3. always place the two endpoints of a pipeline edge in one graphlet
//!    (graphlets are the connected components of the pipeline subgraph);
//! 4. produce an acyclic graphlet dependency graph with a valid
//!    submission order.
//!
//! Each test replays the same seeded case set, so failures reproduce by
//! re-running the test; the failing case index is in the panic message.

use swift_dag::{partition, DagBuilder, EdgeKind, JobDag, Operator, StageId};
use swift_sim::SimRng;

const CASES: u64 = 256;

/// A random layered DAG with 2..24 stages. Each stage is randomly sorting
/// (producing barrier out-edges) or streaming; edges only go from lower to
/// higher stage index, so the graph is acyclic by construction.
fn random_dag(rng: &mut SimRng) -> JobDag {
    let n = rng.range(2, 24) as usize;
    let seed = rng.u64();
    let mut b = DagBuilder::new(seed, format!("prop-{n}"));
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let mut sb = b
            .stage(format!("S{i}"), rng.range(1, 20) as u32)
            .op(Operator::ShuffleRead)
            .op(Operator::HashJoin);
        if rng.chance(0.5) {
            sb = sb.op(Operator::MergeSort);
        }
        ids.push(sb.op(Operator::ShuffleWrite).build());
    }
    for i in 0..n {
        for j in (i + 1)..n {
            // Keep the graph sparse-ish: connect ~half the pairs of
            // adjacent-ish layers, always connect i -> i+1 so the graph is
            // connected.
            let flag = rng.chance(0.5);
            if j == i + 1 || (flag && j <= i + 3) {
                b.edge(ids[i], ids[j]);
            }
        }
    }
    b.build().expect("constructed DAG must be valid")
}

/// Runs `check` against `CASES` seeded random DAGs, reporting the failing
/// case index.
fn for_random_dags(test_salt: u64, check: impl Fn(&JobDag)) {
    let mut rng = SimRng::new(0xDA6_0000 ^ test_salt);
    for case in 0..CASES {
        let dag = random_dag(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&dag)));
        if result.is_err() {
            panic!("case {case} of salt {test_salt} failed (assertion above)");
        }
    }
}

#[test]
fn graphlets_cover_every_stage_exactly_once() {
    for_random_dags(1, |dag| {
        let p = partition(dag);
        let mut seen = vec![0u32; dag.stage_count()];
        for g in p.graphlets() {
            for s in &g.stages {
                seen[s.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage counts: {seen:?}");
    });
}

#[test]
fn crossing_edges_are_always_barriers() {
    // The converse (every barrier edge crosses) holds only for tree-shaped
    // plans — see `barrier_edges_cross_in_tree_dags`.
    for_random_dags(2, |dag| {
        let p = partition(dag);
        for e in dag.edges() {
            if p.graphlet_of(e.src) != p.graphlet_of(e.dst) {
                assert_eq!(
                    e.kind,
                    EdgeKind::Barrier,
                    "pipeline edge {:?}->{:?} crosses graphlets",
                    e.src,
                    e.dst
                );
            }
        }
    });
}

#[test]
fn graphlet_dependency_graph_is_acyclic() {
    // submission_order() is a Kahn topo sort; it covers every graphlet iff
    // the dependency graph is acyclic.
    for_random_dags(3, |dag| {
        let p = partition(dag);
        assert_eq!(p.submission_order().len(), p.len());
    });
}

#[test]
fn barrier_edges_cross_in_tree_dags() {
    // A pure chain (every stage has exactly one consumer) is the shape
    // planners emit; there the paper's guarantee holds exactly.
    let mut rng = SimRng::new(0xDA6_0004);
    for _case in 0..CASES {
        let n = rng.range(2, 20) as usize;
        let mut b = DagBuilder::new(1, "chain");
        let mut ids = Vec::new();
        for i in 0..n {
            let mut sb = b
                .stage(format!("S{i}"), rng.range(1, 20) as u32)
                .op(Operator::ShuffleRead);
            if rng.chance(0.5) {
                sb = sb.op(Operator::MergeSort);
            }
            ids.push(sb.op(Operator::ShuffleWrite).build());
        }
        for w in ids.windows(2) {
            b.edge(w[0], w[1]);
        }
        let dag = b.build().unwrap();
        let p = partition(&dag);
        for e in dag.edges() {
            if e.kind == EdgeKind::Barrier {
                assert_ne!(p.graphlet_of(e.src), p.graphlet_of(e.dst));
            } else {
                assert_eq!(p.graphlet_of(e.src), p.graphlet_of(e.dst));
            }
        }
    }
}

#[test]
fn pipeline_edges_never_cross_graphlets() {
    for_random_dags(5, |dag| {
        let p = partition(dag);
        for e in dag.edges() {
            if e.kind == EdgeKind::Pipeline {
                assert_eq!(
                    p.graphlet_of(e.src),
                    p.graphlet_of(e.dst),
                    "pipeline edge {:?}->{:?} crosses graphlets",
                    e.src,
                    e.dst
                );
            }
        }
    });
}

#[test]
fn submission_order_is_a_valid_topological_order() {
    for_random_dags(6, |dag| {
        let p = partition(dag);
        let order = p.submission_order();
        assert_eq!(order.len(), p.len());
        let mut pos = vec![usize::MAX; p.len()];
        for (i, g) in order.iter().enumerate() {
            pos[g.index()] = i;
        }
        for g in p.graphlets() {
            for dep in p.dependencies(g.id) {
                assert!(
                    pos[dep.index()] < pos[g.id.index()],
                    "dependency {:?} of {:?} scheduled later",
                    dep,
                    g.id
                );
            }
        }
    });
}

#[test]
fn trigger_stages_are_exactly_crossing_barrier_producers() {
    for_random_dags(7, |dag| {
        let p = partition(dag);
        for g in p.graphlets() {
            for &s in &g.stages {
                let has_crossing_out = dag
                    .outgoing(s)
                    .any(|e| p.graphlet_of(e.dst) != p.graphlet_of(e.src));
                assert_eq!(g.trigger_stages.contains(&s), has_crossing_out);
            }
        }
    });
}

#[test]
fn dependencies_follow_crossing_barrier_edges_exactly() {
    for_random_dags(8, |dag| {
        let p = partition(dag);
        for e in dag.edges() {
            let from = p.graphlet_of(e.src);
            let to = p.graphlet_of(e.dst);
            if from != to {
                assert!(p.dependencies(to).contains(&from));
                assert!(p.dependents(from).contains(&to));
            }
        }
        // And nothing else: every recorded dependency is backed by an edge.
        for g in p.graphlets() {
            for &dep in p.dependencies(g.id) {
                let backed = dag
                    .edges()
                    .iter()
                    .any(|e| p.graphlet_of(e.src) == dep && p.graphlet_of(e.dst) == g.id);
                assert!(
                    backed,
                    "dependency {dep:?} of {:?} not backed by an edge",
                    g.id
                );
            }
        }
    });
}

#[test]
fn partition_is_deterministic() {
    for_random_dags(9, |dag| {
        let a = partition(dag);
        let b = partition(dag);
        assert_eq!(a, b);
    });
}

#[test]
fn stage_membership_lookup_consistent() {
    for_random_dags(10, |dag| {
        let p = partition(dag);
        for s in 0..dag.stage_count() {
            let sid = StageId(s as u32);
            let g = p.graphlet_of(sid);
            assert!(p.graphlet(g).contains(sid));
        }
    });
}
