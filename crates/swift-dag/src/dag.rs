//! The job DAG: stages connected by classified shuffle edges.

use crate::edge::{classify_edge, Edge, EdgeKind};
use crate::ids::{JobId, StageId};
use crate::operator::Operator;
use crate::stage::{Stage, StageProfile};
use std::collections::VecDeque;
use std::fmt;

/// Errors produced while building or validating a [`JobDag`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// An edge references a stage id that does not exist.
    UnknownStage(StageId),
    /// A self-loop `s -> s` was added.
    SelfLoop(StageId),
    /// The same `(src, dst)` edge was added twice.
    DuplicateEdge(StageId, StageId),
    /// The graph contains a directed cycle (job DAGs must be acyclic).
    Cycle,
    /// The job has no stages.
    Empty,
    /// A stage has `task_count == 0`.
    ZeroTasks(StageId),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownStage(s) => write!(f, "edge references unknown stage {s}"),
            DagError::SelfLoop(s) => write!(f, "self-loop on stage {s}"),
            DagError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            DagError::Cycle => write!(f, "job graph contains a cycle"),
            DagError::Empty => write!(f, "job graph has no stages"),
            DagError::ZeroTasks(s) => write!(f, "stage {s} has zero tasks"),
        }
    }
}

impl std::error::Error for DagError {}

/// An immutable, validated job DAG.
///
/// Construct one with [`DagBuilder`]; validation (acyclicity, edge sanity)
/// happens at [`DagBuilder::build`] so every existing `JobDag` is
/// well-formed. Stage ids are dense indices into [`JobDag::stages`].
#[derive(Clone, Debug, PartialEq)]
pub struct JobDag {
    /// Id of the job this DAG describes.
    pub job_id: JobId,
    /// Human-readable job name (e.g. `"tpch-q9"`).
    pub name: String,
    stages: Vec<Stage>,
    edges: Vec<Edge>,
    /// `outgoing[s]` = indices into `edges` with `src == s`.
    outgoing: Vec<Vec<u32>>,
    /// `incoming[s]` = indices into `edges` with `dst == s`.
    incoming: Vec<Vec<u32>>,
    topo: Vec<StageId>,
}

impl JobDag {
    /// All stages, indexed by [`StageId`].
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total number of task instances across all stages.
    pub fn total_tasks(&self) -> u64 {
        self.stages.iter().map(|s| s.task_count as u64).sum()
    }

    /// Looks up a stage by id.
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.index()]
    }

    /// Looks up a stage by its name, if present.
    pub fn stage_by_name(&self, name: &str) -> Option<&Stage> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Edges leaving `id` (this stage is the producer).
    pub fn outgoing(&self, id: StageId) -> impl Iterator<Item = &Edge> {
        self.outgoing[id.index()]
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// Edges entering `id` (this stage is the consumer).
    pub fn incoming(&self, id: StageId) -> impl Iterator<Item = &Edge> {
        self.incoming[id.index()]
            .iter()
            .map(move |&i| &self.edges[i as usize])
    }

    /// Like [`JobDag::outgoing`], but yields `(edge_index, &Edge)` where
    /// `edge_index` is the edge's position in [`JobDag::edges`] — the
    /// stable identifier shuffle transports key segments by.
    pub fn outgoing_indexed(&self, id: StageId) -> impl Iterator<Item = (usize, &Edge)> {
        self.outgoing[id.index()]
            .iter()
            .map(move |&i| (i as usize, &self.edges[i as usize]))
    }

    /// Like [`JobDag::incoming`], but yields `(edge_index, &Edge)`.
    pub fn incoming_indexed(&self, id: StageId) -> impl Iterator<Item = (usize, &Edge)> {
        self.incoming[id.index()]
            .iter()
            .map(move |&i| (i as usize, &self.edges[i as usize]))
    }

    /// Direct upstream stages of `id`.
    pub fn predecessors(&self, id: StageId) -> impl Iterator<Item = StageId> + '_ {
        self.incoming(id).map(|e| e.src)
    }

    /// Direct downstream stages of `id`.
    pub fn successors(&self, id: StageId) -> impl Iterator<Item = StageId> + '_ {
        self.outgoing(id).map(|e| e.dst)
    }

    /// A topological order of the stages, stable with respect to stage id
    /// (among ready stages the smallest id comes first), so partitioning and
    /// scheduling are deterministic.
    pub fn topo_order(&self) -> &[StageId] {
        &self.topo
    }

    /// Stages with no incoming edges (the job's sources).
    pub fn roots(&self) -> impl Iterator<Item = StageId> + '_ {
        self.stages
            .iter()
            .filter(|s| self.incoming[s.id.index()].is_empty())
            .map(|s| s.id)
    }

    /// Stages with no outgoing edges (the job's sinks).
    pub fn leaves(&self) -> impl Iterator<Item = StageId> + '_ {
        self.stages
            .iter()
            .filter(|s| self.outgoing[s.id.index()].is_empty())
            .map(|s| s.id)
    }

    /// The shuffle edge size (`M × N`, §III-B) of the given edge.
    pub fn edge_shuffle_size(&self, edge: &Edge) -> u64 {
        edge.shuffle_edge_size(
            self.stage(edge.src).task_count,
            self.stage(edge.dst).task_count,
        )
    }

    /// The largest shuffle edge size over all edges of the job; `0` for a
    /// single-stage job. Used to bucket jobs into small/medium/large shuffle
    /// classes for the Fig. 12 experiment.
    pub fn max_shuffle_edge_size(&self) -> u64 {
        self.edges
            .iter()
            .map(|e| self.edge_shuffle_size(e))
            .max()
            .unwrap_or(0)
    }

    /// Renders the DAG in a compact single-line-per-stage text form, handy
    /// for examples and debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "job {} ({} stages, {} tasks)\n",
            self.name,
            self.stage_count(),
            self.total_tasks()
        ));
        for s in &self.stages {
            let ops: Vec<String> = s.operators.iter().map(|o| o.to_string()).collect();
            out.push_str(&format!(
                "  {} [{} tasks] {}\n",
                s.name,
                s.task_count,
                ops.join(" -> ")
            ));
            for e in self.outgoing(s.id) {
                let kind = match e.kind {
                    EdgeKind::Pipeline => "pipeline",
                    EdgeKind::Barrier => "barrier",
                };
                out.push_str(&format!("    --{kind}--> {}\n", self.stage(e.dst).name));
            }
        }
        out
    }
}

/// Builder for [`JobDag`].
///
/// ```
/// use swift_dag::{DagBuilder, Operator, EdgeKind};
///
/// let mut b = DagBuilder::new(1, "example");
/// let scan = b.stage("M1", 4).op(Operator::TableScan { table: "t".into() }).op(Operator::ShuffleWrite).build();
/// let agg = b.stage("R1", 2).op(Operator::ShuffleRead).op(Operator::HashAggregate).op(Operator::AdhocSink).build();
/// b.edge(scan, agg); // kind inferred from the operators (pipeline here)
/// let dag = b.build().unwrap();
/// assert_eq!(dag.edges()[0].kind, EdgeKind::Pipeline);
/// ```
#[derive(Debug)]
pub struct DagBuilder {
    job_id: JobId,
    name: String,
    stages: Vec<Stage>,
    edges: Vec<Edge>,
}

impl DagBuilder {
    /// Starts a new builder for job `job_id` named `name`.
    pub fn new(job_id: u64, name: impl Into<String>) -> Self {
        DagBuilder {
            job_id: JobId(job_id),
            name: name.into(),
            stages: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Begins defining a stage with `task_count` parallel tasks; finish with
    /// [`StageBuilder::build`], which returns the new [`StageId`].
    pub fn stage(&mut self, name: impl Into<String>, task_count: u32) -> StageBuilder<'_> {
        StageBuilder {
            dag: self,
            name: name.into(),
            task_count,
            operators: Vec::new(),
            idempotent: true,
            profile: StageProfile::default(),
        }
    }

    /// Adds an edge whose kind is inferred from the endpoint stages'
    /// operators via [`classify_edge`].
    pub fn edge(&mut self, src: StageId, dst: StageId) -> &mut Self {
        let kind = if let (Some(s), Some(d)) =
            (self.stages.get(src.index()), self.stages.get(dst.index()))
        {
            classify_edge(s, d)
        } else {
            // Unknown endpoints are caught in `build`; kind is irrelevant.
            EdgeKind::Pipeline
        };
        self.edges.push(Edge::new(src, dst, kind));
        self
    }

    /// Adds an edge with an explicit kind, overriding the heuristic.
    pub fn edge_kind(&mut self, src: StageId, dst: StageId, kind: EdgeKind) -> &mut Self {
        self.edges.push(Edge::new(src, dst, kind));
        self
    }

    /// Validates and freezes the DAG.
    pub fn build(self) -> Result<JobDag, DagError> {
        let n = self.stages.len();
        if n == 0 {
            return Err(DagError::Empty);
        }
        for s in &self.stages {
            if s.task_count == 0 {
                return Err(DagError::ZeroTasks(s.id));
            }
        }
        let mut outgoing: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut incoming: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::new();
        for (i, e) in self.edges.iter().enumerate() {
            if e.src.index() >= n {
                return Err(DagError::UnknownStage(e.src));
            }
            if e.dst.index() >= n {
                return Err(DagError::UnknownStage(e.dst));
            }
            if e.src == e.dst {
                return Err(DagError::SelfLoop(e.src));
            }
            if !seen.insert((e.src, e.dst)) {
                return Err(DagError::DuplicateEdge(e.src, e.dst));
            }
            outgoing[e.src.index()].push(i as u32);
            incoming[e.dst.index()].push(i as u32);
        }
        // Kahn's algorithm with a min-id ready set for determinism.
        let mut indeg: Vec<usize> = incoming.iter().map(Vec::len).collect();
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| std::cmp::Reverse(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            topo.push(StageId(i));
            for &ei in &outgoing[i as usize] {
                let d = self.edges[ei as usize].dst.index();
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    ready.push(std::cmp::Reverse(d as u32));
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cycle);
        }
        Ok(JobDag {
            job_id: self.job_id,
            name: self.name,
            stages: self.stages,
            edges: self.edges,
            outgoing,
            incoming,
            topo,
        })
    }
}

/// In-progress stage definition; see [`DagBuilder::stage`].
#[derive(Debug)]
pub struct StageBuilder<'a> {
    dag: &'a mut DagBuilder,
    name: String,
    task_count: u32,
    operators: Vec<Operator>,
    idempotent: bool,
    profile: StageProfile,
}

impl StageBuilder<'_> {
    /// Appends an operator to the stage's chain.
    pub fn op(mut self, op: Operator) -> Self {
        self.operators.push(op);
        self
    }

    /// Appends several operators at once.
    pub fn ops(mut self, ops: impl IntoIterator<Item = Operator>) -> Self {
        self.operators.extend(ops);
        self
    }

    /// Marks the stage's tasks as non-idempotent (§IV-B1b): re-running them
    /// may produce different output, so recovery must also re-run executed
    /// successors. Stages are idempotent by default.
    pub fn non_idempotent(mut self) -> Self {
        self.idempotent = false;
        self
    }

    /// Sets the stage's size/cost profile.
    pub fn profile(mut self, profile: StageProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Finalizes the stage and returns its id.
    pub fn build(self) -> StageId {
        let id = StageId(self.dag.stages.len() as u32);
        self.dag.stages.push(Stage {
            id,
            name: self.name,
            operators: self.operators,
            task_count: self.task_count,
            idempotent: self.idempotent,
            profile: self.profile,
        });
        id
    }
}

/// Breadth-first reachability helper: all stages reachable from `start`
/// following edge direction (excluding `start` itself unless on a cycle,
/// which a valid [`JobDag`] cannot have).
pub fn descendants(dag: &JobDag, start: StageId) -> Vec<StageId> {
    let mut seen = vec![false; dag.stage_count()];
    let mut queue: VecDeque<StageId> = dag.successors(start).collect();
    let mut out = Vec::new();
    while let Some(s) = queue.pop_front() {
        if seen[s.index()] {
            continue;
        }
        seen[s.index()] = true;
        out.push(s);
        queue.extend(dag.successors(s));
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> JobDag {
        // a -> b, a -> c, b -> d, c -> d
        let mut b = DagBuilder::new(1, "diamond");
        let a = b
            .stage("A", 2)
            .op(Operator::TableScan { table: "t".into() })
            .op(Operator::ShuffleWrite)
            .build();
        let b1 = b
            .stage("B", 2)
            .op(Operator::ShuffleRead)
            .op(Operator::Filter)
            .op(Operator::ShuffleWrite)
            .build();
        let c = b
            .stage("C", 2)
            .op(Operator::ShuffleRead)
            .op(Operator::Project)
            .op(Operator::ShuffleWrite)
            .build();
        let d = b
            .stage("D", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::AdhocSink)
            .build();
        b.edge(a, b1).edge(a, c).edge(b1, d).edge(c, d);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_indexes_diamond() {
        let dag = diamond();
        assert_eq!(dag.stage_count(), 4);
        assert_eq!(dag.total_tasks(), 7);
        assert_eq!(dag.roots().collect::<Vec<_>>(), vec![StageId(0)]);
        assert_eq!(dag.leaves().collect::<Vec<_>>(), vec![StageId(3)]);
        assert_eq!(
            dag.successors(StageId(0)).collect::<Vec<_>>(),
            vec![StageId(1), StageId(2)]
        );
        assert_eq!(
            dag.predecessors(StageId(3)).collect::<Vec<_>>(),
            vec![StageId(1), StageId(2)]
        );
    }

    #[test]
    fn topo_order_is_deterministic_and_valid() {
        let dag = diamond();
        let topo = dag.topo_order();
        assert_eq!(topo, &[StageId(0), StageId(1), StageId(2), StageId(3)]);
        // every edge goes forward in topo order
        let pos: Vec<usize> = {
            let mut p = vec![0; dag.stage_count()];
            for (i, s) in topo.iter().enumerate() {
                p[s.index()] = i;
            }
            p
        };
        for e in dag.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn rejects_cycles() {
        let mut b = DagBuilder::new(1, "cycle");
        let a = b.stage("A", 1).op(Operator::Filter).build();
        let c = b.stage("B", 1).op(Operator::Filter).build();
        b.edge(a, c).edge(c, a);
        assert_eq!(b.build().unwrap_err(), DagError::Cycle);
    }

    #[test]
    fn rejects_self_loop_duplicate_unknown_zero() {
        let mut b = DagBuilder::new(1, "bad");
        let a = b.stage("A", 1).op(Operator::Filter).build();
        b.edge(a, a);
        assert_eq!(b.build().unwrap_err(), DagError::SelfLoop(a));

        let mut b = DagBuilder::new(1, "bad");
        let a = b.stage("A", 1).op(Operator::Filter).build();
        let c = b.stage("B", 1).op(Operator::Filter).build();
        b.edge(a, c).edge(a, c);
        assert_eq!(b.build().unwrap_err(), DagError::DuplicateEdge(a, c));

        let mut b = DagBuilder::new(1, "bad");
        let a = b.stage("A", 1).op(Operator::Filter).build();
        b.edge_kind(a, StageId(9), EdgeKind::Pipeline);
        assert_eq!(b.build().unwrap_err(), DagError::UnknownStage(StageId(9)));

        let mut b = DagBuilder::new(1, "bad");
        b.stage("A", 0).op(Operator::Filter).build();
        assert_eq!(b.build().unwrap_err(), DagError::ZeroTasks(StageId(0)));

        assert_eq!(
            DagBuilder::new(1, "empty").build().unwrap_err(),
            DagError::Empty
        );
    }

    #[test]
    fn max_shuffle_edge_size() {
        let dag = diamond();
        // edges are 2x2, 2x2, 2x1, 2x1 -> max 4
        assert_eq!(dag.max_shuffle_edge_size(), 4);
    }

    #[test]
    fn clone_is_deep_equal() {
        let dag = diamond();
        let back = dag.clone();
        assert_eq!(dag, back);
        assert_eq!(dag.total_tasks(), back.total_tasks());
    }

    #[test]
    fn render_mentions_every_stage() {
        let dag = diamond();
        let r = dag.render();
        for s in dag.stages() {
            assert!(r.contains(&s.name));
        }
        assert!(r.contains("pipeline"));
    }
}
