//! Shuffle-mode-aware job partitioning (paper §III-A1, Algorithms 1 & 2).
//!
//! The job DAG is cut at **barrier** edges into *graphlets*: maximal
//! sub-graphs connected by **pipeline** edges. Each graphlet is later gang
//! scheduled as one unit, while different graphlets are scheduled
//! independently as their input data become ready.

use crate::dag::JobDag;
use crate::edge::EdgeKind;
use crate::ids::{GraphletId, StageId};
use std::collections::BTreeSet;

/// One graphlet: a set of stages connected by pipeline edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graphlet {
    /// Dense id of this graphlet within the partition.
    pub id: GraphletId,
    /// Member stages, sorted by id.
    pub stages: Vec<StageId>,
    /// The *trigger stages*: member stages with outgoing barrier edges.
    /// Their completion makes downstream graphlets submittable (Fig. 4
    /// labels one per graphlet, e.g. "Trigger Stage: J4").
    pub trigger_stages: Vec<StageId>,
}

impl Graphlet {
    /// Returns `true` if `stage` belongs to this graphlet.
    pub fn contains(&self, stage: StageId) -> bool {
        self.stages.binary_search(&stage).is_ok()
    }

    /// Total number of task instances in the graphlet — the gang size the
    /// Resource Scheduler must satisfy before the graphlet can run.
    pub fn total_tasks(&self, dag: &JobDag) -> u64 {
        self.stages
            .iter()
            .map(|&s| dag.stage(s).task_count as u64)
            .sum()
    }
}

/// The result of partitioning a job: its graphlets plus dependency
/// structure between them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    graphlets: Vec<Graphlet>,
    /// `stage_to_graphlet[s]` = graphlet owning stage `s`.
    stage_to_graphlet: Vec<GraphletId>,
    /// `deps[g]` = graphlets that must complete before `g` may be submitted
    /// (conservative order, §III-A2): every graphlet reachable via a barrier
    /// edge into `g`.
    deps: Vec<Vec<GraphletId>>,
    /// Reverse of `deps`: graphlets unblocked by `g`'s completion.
    dependents: Vec<Vec<GraphletId>>,
}

impl Partition {
    /// The graphlets in creation order (which follows the DAG's topological
    /// order of their first stage, per Algorithm 1).
    pub fn graphlets(&self) -> &[Graphlet] {
        &self.graphlets
    }

    /// Number of graphlets.
    pub fn len(&self) -> usize {
        self.graphlets.len()
    }

    /// Returns `true` if the partition holds no graphlets (cannot happen for
    /// a valid [`JobDag`], but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.graphlets.is_empty()
    }

    /// Looks up a graphlet by id.
    pub fn graphlet(&self, id: GraphletId) -> &Graphlet {
        &self.graphlets[id.index()]
    }

    /// The graphlet owning `stage`.
    pub fn graphlet_of(&self, stage: StageId) -> GraphletId {
        self.stage_to_graphlet[stage.index()]
    }

    /// Graphlets that must complete before `g` can be submitted
    /// (conservative submission order, §III-A2).
    pub fn dependencies(&self, g: GraphletId) -> &[GraphletId] {
        &self.deps[g.index()]
    }

    /// Graphlets whose submission waits (among others) on `g`.
    pub fn dependents(&self, g: GraphletId) -> &[GraphletId] {
        &self.dependents[g.index()]
    }

    /// Graphlets with no dependencies — submittable immediately.
    pub fn initial_graphlets(&self) -> Vec<GraphletId> {
        self.graphlets
            .iter()
            .filter(|g| self.deps[g.id.index()].is_empty())
            .map(|g| g.id)
            .collect()
    }

    /// A submission order satisfying all dependencies (topological over the
    /// graphlet dependency graph, smallest id first among ready graphlets).
    pub fn submission_order(&self) -> Vec<GraphletId> {
        let n = self.graphlets.len();
        let mut indeg: Vec<usize> = self.deps.iter().map(Vec::len).collect();
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| std::cmp::Reverse(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            order.push(GraphletId(i));
            for &dep in &self.dependents[i as usize] {
                indeg[dep.index()] -= 1;
                if indeg[dep.index()] == 0 {
                    ready.push(std::cmp::Reverse(dep.raw()));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "graphlet dependency graph must be acyclic");
        order
    }

    /// Reconstructs the partition of `dag` from its graphlet stage sets
    /// alone, reproducing exactly what [`partition`] would compute — the
    /// same graphlet numbering, trigger stages and dependency lists.
    ///
    /// [`partition`] numbers graphlets by the topological position of each
    /// graphlet's earliest stage (the Algorithm 1 seed), so given the bare
    /// sets this constructor recovers the numbering by sorting groups on
    /// their minimum topo position and then re-running the same
    /// materialisation pass. This is what lets a scheduling-template cache
    /// transport a partition from one job to an isomorphic job: map the
    /// cached stage sets through the isomorphism and rebuild.
    ///
    /// `groups` must cover every stage of `dag` exactly once (checked by
    /// `debug_assert`; violating it in release builds yields a partition
    /// that is simply wrong, not unsound).
    pub fn from_stage_sets(dag: &JobDag, groups: Vec<BTreeSet<StageId>>) -> Partition {
        let n = dag.stage_count();
        debug_assert_eq!(
            groups.iter().map(BTreeSet::len).sum::<usize>(),
            n,
            "groups must cover every stage exactly once"
        );
        let mut pos = vec![0u32; n];
        for (i, &s) in dag.topo_order().iter().enumerate() {
            pos[s.index()] = i as u32;
        }
        let mut ordered = groups;
        ordered.sort_by_key(|set| {
            set.iter()
                .map(|s| pos[s.index()])
                .min()
                .expect("groups must be non-empty")
        });
        materialise(dag, ordered)
    }
}

/// Partitions `dag` into graphlets following the paper's Algorithm 1
/// ("Shuffle-Mode-Aware Job Partitioning") and Algorithm 2
/// (`scanAndAddStages`).
///
/// Algorithm 1: while the job DAG is not empty, remove the first remaining
/// stage in topological order, start a new graphlet with it, and flood-fill
/// across pipeline edges (Algorithm 2) in both directions, removing every
/// visited stage from the DAG.
///
/// The recursion of Algorithm 2 is realised with an explicit stack so
/// arbitrarily deep pipelines cannot overflow the call stack.
///
/// # Robustness beyond the paper
///
/// For tree-shaped plans (every stage feeds at most one consumer — all the
/// paper's examples) the algorithm's graphlet dependency graph is acyclic.
/// With multi-consumer stages, however, pipeline flood-fill can create
/// graphlets whose barrier dependencies form a cycle (e.g. `0→{1,4}`
/// pipeline, `1→2` barrier, `2→3` pipeline, `3→4` barrier yields
/// `{0,1,4} ⇄ {2,3}`). A scheduler submitting graphlets only when all their
/// inputs are ready would deadlock on such a cycle, so after flood-fill we
/// condense strongly connected components of the graphlet quotient graph:
/// cyclically-dependent graphlets are merged into one. Gang scheduling
/// tolerates the resulting intra-graphlet barrier edges (the consumer tasks
/// of such an edge simply wait for data like any pipeline consumer would).
pub fn partition(dag: &JobDag) -> Partition {
    let n = dag.stage_count();
    let mut remaining: Vec<bool> = vec![true; n];
    let mut stage_to_comp: Vec<u32> = vec![0; n];
    let mut comps: Vec<Vec<StageId>> = Vec::new();

    // Phase 1: Algorithms 1 & 2 — pipeline-connected components, seeded in
    // topological order.
    for &start in dag.topo_order() {
        if !remaining[start.index()] {
            continue;
        }
        let cid = comps.len() as u32;
        let mut members = BTreeSet::new();
        let mut stack = vec![start];
        remaining[start.index()] = false;
        while let Some(stage) = stack.pop() {
            members.insert(stage);
            stage_to_comp[stage.index()] = cid;
            for e in dag.outgoing(stage) {
                if remaining[e.dst.index()] && e.kind == EdgeKind::Pipeline {
                    remaining[e.dst.index()] = false;
                    stack.push(e.dst);
                }
            }
            for e in dag.incoming(stage) {
                if remaining[e.src.index()] && e.kind == EdgeKind::Pipeline {
                    remaining[e.src.index()] = false;
                    stack.push(e.src);
                }
            }
        }
        comps.push(members.into_iter().collect());
    }

    // Phase 2: condense SCCs of the component quotient graph (edges = the
    // barrier edges crossing components). Usually every SCC is a singleton
    // and this is a no-op.
    let c = comps.len();
    let mut quotient: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); c];
    for e in dag.edges() {
        let (from, to) = (stage_to_comp[e.src.index()], stage_to_comp[e.dst.index()]);
        if from != to {
            quotient[from as usize].insert(to);
        }
    }
    let scc_of = condense_sccs(&quotient);

    // Phase 3: materialise final graphlets. Final ids follow the smallest
    // original component id in each SCC, preserving the paper's numbering
    // for the common acyclic case.
    let scc_count = scc_of.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut first_comp: Vec<u32> = vec![u32::MAX; scc_count];
    for (comp, &scc) in scc_of.iter().enumerate() {
        first_comp[scc as usize] = first_comp[scc as usize].min(comp as u32);
    }
    let mut order: Vec<u32> = (0..scc_count as u32).collect();
    order.sort_by_key(|&scc| first_comp[scc as usize]);
    let mut scc_to_gid: Vec<GraphletId> = vec![GraphletId(0); scc_count];
    for (gid, &scc) in order.iter().enumerate() {
        scc_to_gid[scc as usize] = GraphletId(gid as u32);
    }

    let mut stage_sets: Vec<BTreeSet<StageId>> = vec![BTreeSet::new(); scc_count];
    for (comp, stages) in comps.iter().enumerate() {
        let gid = scc_to_gid[scc_of[comp] as usize];
        stage_sets[gid.index()].extend(stages.iter().copied());
    }
    materialise(dag, stage_sets)
}

/// Shared tail of [`partition`] and [`Partition::from_stage_sets`]: turns
/// the per-graphlet stage sets (already in final graphlet-id order) into a
/// full [`Partition`] — graphlets, trigger stages and the barrier-edge
/// dependency structure.
fn materialise(dag: &JobDag, stage_sets: Vec<BTreeSet<StageId>>) -> Partition {
    let n = dag.stage_count();
    let scc_count = stage_sets.len();
    let mut stage_to_graphlet = vec![GraphletId(0); n];
    let mut graphlets: Vec<Graphlet> = Vec::with_capacity(scc_count);
    for (i, set) in stage_sets.into_iter().enumerate() {
        let id = GraphletId(i as u32);
        let stages: Vec<StageId> = set.into_iter().collect();
        for &s in &stages {
            stage_to_graphlet[s.index()] = id;
        }
        graphlets.push(Graphlet {
            id,
            stages,
            trigger_stages: Vec::new(),
        });
    }
    // Trigger stages: members with a barrier edge that crosses graphlets.
    for g in &mut graphlets {
        g.trigger_stages = g
            .stages
            .iter()
            .copied()
            .filter(|&s| {
                dag.outgoing(s).any(|e| {
                    e.kind == EdgeKind::Barrier
                        && stage_to_graphlet[e.dst.index()] != stage_to_graphlet[e.src.index()]
                })
            })
            .collect();
    }

    // Dependencies from barrier edges crossing final graphlets. (Pipeline
    // edges never cross: merging only ever grows components.)
    let g = graphlets.len();
    let mut deps: Vec<BTreeSet<GraphletId>> = vec![BTreeSet::new(); g];
    for e in dag.edges() {
        let from = stage_to_graphlet[e.src.index()];
        let to = stage_to_graphlet[e.dst.index()];
        if from != to {
            debug_assert_eq!(
                e.kind,
                EdgeKind::Barrier,
                "pipeline edge must not cross graphlets"
            );
            deps[to.index()].insert(from);
        }
    }
    let deps: Vec<Vec<GraphletId>> = deps.into_iter().map(|s| s.into_iter().collect()).collect();
    let mut dependents: Vec<Vec<GraphletId>> = vec![Vec::new(); g];
    for (to, ds) in deps.iter().enumerate() {
        for &from in ds {
            dependents[from.index()].push(GraphletId(to as u32));
        }
    }

    Partition {
        graphlets,
        stage_to_graphlet,
        deps,
        dependents,
    }
}

/// Iterative Tarjan SCC over a small adjacency-set graph; returns the SCC
/// index of every node. SCC indices are arbitrary but stable for a given
/// input.
fn condense_sccs(adj: &[BTreeSet<u32>]) -> Vec<u32> {
    let n = adj.len();
    let mut index = vec![u32::MAX; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc_of = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut scc_count = 0u32;

    // Explicit DFS frames: (node, iterator position over its successors).
    for root in 0..n as u32 {
        if index[root as usize] != u32::MAX {
            continue;
        }
        let mut frames: Vec<(u32, std::collections::btree_set::Iter<'_, u32>)> = Vec::new();
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        frames.push((root, adj[root as usize].iter()));
        while let Some((v, it)) = frames.last_mut() {
            let v = *v;
            if let Some(&w) = it.next() {
                if index[w as usize] == u32::MAX {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, adj[w as usize].iter()));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some((parent, _)) = frames.last() {
                    let p = *parent as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        scc_of[w as usize] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    scc_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;
    use crate::operator::Operator;

    /// Builds the TPC-H Q9 DAG of Fig. 4: stages M1..M8, R9, J10, R11, R12
    /// with the published pipeline/barrier structure. Task counts follow
    /// Fig. 4(a) where given.
    pub(crate) fn q9_dag() -> JobDag {
        let mut b = DagBuilder::new(9, "tpch-q9");
        let scan = |b: &mut DagBuilder, name: &str, tasks: u32| {
            b.stage(name, tasks)
                .op(Operator::TableScan {
                    table: name.to_lowercase(),
                })
                .op(Operator::ShuffleWrite)
                .build()
        };
        let m1 = scan(&mut b, "M1", 956);
        let m2 = scan(&mut b, "M2", 220);
        let m3 = scan(&mut b, "M3", 3);
        // J4 joins M1/M2/M3 and contains MergeSort => its outgoing edge is a barrier.
        let j4 = b
            .stage("J4", 403)
            .op(Operator::ShuffleRead)
            .op(Operator::HashJoin)
            .op(Operator::MergeSort)
            .op(Operator::ShuffleWrite)
            .build();
        let m5 = scan(&mut b, "M5", 403);
        let j6 = b
            .stage("J6", 403)
            .op(Operator::ShuffleRead)
            .op(Operator::MergeJoin)
            .op(Operator::MergeSort)
            .op(Operator::ShuffleWrite)
            .build();
        let m7 = scan(&mut b, "M7", 220);
        let m8 = scan(&mut b, "M8", 20);
        let r9 = b
            .stage("R9", 100)
            .op(Operator::ShuffleRead)
            .op(Operator::HashJoin)
            .op(Operator::ShuffleWrite)
            .build();
        let j10 = b
            .stage("J10", 200)
            .op(Operator::ShuffleRead)
            .op(Operator::MergeJoin)
            .op(Operator::MergeSort)
            .op(Operator::ShuffleWrite)
            .build();
        let r11 = b
            .stage("R11", 50)
            .op(Operator::ShuffleRead)
            .op(Operator::StreamedAggregate)
            .op(Operator::ShuffleWrite)
            .build();
        let r12 = b
            .stage("R12", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::AdhocSink)
            .build();
        b.edge(m1, j4).edge(m2, j4).edge(m3, j4); // pipeline
        b.edge(j4, j6); // barrier (J4 has MergeSort)
        b.edge(m5, j6); // pipeline (M5 streams; producer has no output sort)
        b.edge(m7, r9).edge(m8, r9); // pipeline
        b.edge(r9, j10); // pipeline (R9 is a hash join, streams)
        b.edge(j6, j10); // barrier (J6 has MergeSort)
        b.edge(j10, r11); // barrier (J10 has MergeSort)
        b.edge(r11, r12); // pipeline (StreamedAggregate emits in order, streams)
        b.build().unwrap()
    }

    #[test]
    fn q9_partitions_like_fig4() {
        // Pins the published Fig. 4 grouping:
        // {M1,M2,M3,J4}, {M5,J6}, {M7,M8,R9,J10}, {R11,R12}.
        let dag = q9_dag();
        let p = partition(&dag);
        let names: Vec<Vec<String>> = p
            .graphlets()
            .iter()
            .map(|g| {
                g.stages
                    .iter()
                    .map(|&s| dag.stage(s).name.clone())
                    .collect()
            })
            .collect();
        assert_eq!(
            names,
            vec![
                vec!["M1", "M2", "M3", "J4"],
                vec!["M5", "J6"],
                vec!["M7", "M8", "R9", "J10"],
                vec!["R11", "R12"],
            ]
        );
    }

    #[test]
    fn q9_graphlet_dependencies_match_submission_story() {
        let dag = q9_dag();
        let p = partition(&dag);
        // Graphlet 1 (id 0) first; 2 depends on 1; 3 depends on 2; 4 on 3.
        assert_eq!(p.initial_graphlets(), vec![GraphletId(0)]);
        assert_eq!(p.dependencies(GraphletId(1)), &[GraphletId(0)]);
        assert_eq!(p.dependencies(GraphletId(2)), &[GraphletId(1)]);
        assert_eq!(p.dependencies(GraphletId(3)), &[GraphletId(2)]);
        assert_eq!(
            p.submission_order(),
            vec![GraphletId(0), GraphletId(1), GraphletId(2), GraphletId(3)]
        );
    }

    #[test]
    fn q9_trigger_stages() {
        let dag = q9_dag();
        let p = partition(&dag);
        let trig: Vec<Vec<&str>> = p
            .graphlets()
            .iter()
            .map(|g| {
                g.trigger_stages
                    .iter()
                    .map(|&s| dag.stage(s).name.as_str())
                    .collect()
            })
            .collect();
        assert_eq!(
            trig,
            vec![vec!["J4"], vec!["J6"], vec!["J10"], Vec::<&str>::new()]
        );
    }

    #[test]
    fn single_stage_job_is_one_graphlet() {
        let mut b = DagBuilder::new(1, "single");
        b.stage("only", 8)
            .op(Operator::TableScan { table: "t".into() })
            .op(Operator::AdhocSink)
            .build();
        let dag = b.build().unwrap();
        let p = partition(&dag);
        assert_eq!(p.len(), 1);
        assert_eq!(p.graphlet(GraphletId(0)).stages, vec![StageId(0)]);
        assert!(p.graphlet(GraphletId(0)).trigger_stages.is_empty());
    }

    #[test]
    fn all_pipeline_job_is_one_graphlet() {
        let mut b = DagBuilder::new(1, "pipeline-chain");
        let mut prev = None;
        for i in 0..6 {
            let s = b
                .stage(format!("S{i}"), 2)
                .op(if i == 0 {
                    Operator::TableScan { table: "t".into() }
                } else {
                    Operator::ShuffleRead
                })
                .op(Operator::Filter)
                .op(Operator::ShuffleWrite)
                .build();
            if let Some(p) = prev {
                b.edge(p, s);
            }
            prev = Some(s);
        }
        let dag = b.build().unwrap();
        let p = partition(&dag);
        assert_eq!(p.len(), 1);
        assert_eq!(p.graphlet(GraphletId(0)).stages.len(), 6);
    }

    #[test]
    fn all_barrier_chain_is_one_graphlet_per_stage() {
        let mut b = DagBuilder::new(1, "barrier-chain");
        let mut prev: Option<StageId> = None;
        for i in 0..5 {
            let s = b
                .stage(format!("S{i}"), 2)
                .op(Operator::ShuffleRead)
                .op(Operator::MergeSort)
                .op(Operator::ShuffleWrite)
                .build();
            if let Some(p) = prev {
                b.edge(p, s);
            }
            prev = Some(s);
        }
        let dag = b.build().unwrap();
        let p = partition(&dag);
        assert_eq!(p.len(), 5);
        let order = p.submission_order();
        assert_eq!(order.len(), 5);
        for (i, g) in order.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
    }

    #[test]
    fn graphlet_total_tasks_is_gang_size() {
        let dag = q9_dag();
        let p = partition(&dag);
        // graphlet 1 = M1(956)+M2(220)+M3(3)+J4(403)
        assert_eq!(
            p.graphlet(GraphletId(0)).total_tasks(&dag),
            956 + 220 + 3 + 403
        );
    }

    #[test]
    fn cyclic_quotient_is_condensed() {
        // 0 -> {1, 4} pipeline, 1 -> 2 barrier, 2 -> 3 pipeline,
        // 3 -> 4 barrier. Pipeline flood-fill yields {0,1,4} and {2,3}
        // with mutual barrier dependencies; the condensation must merge
        // them into a single graphlet so schedulers never deadlock.
        let mut b = DagBuilder::new(1, "cyclic-quotient");
        let streaming = |b: &mut DagBuilder, n: &str| {
            b.stage(n, 1)
                .op(Operator::ShuffleRead)
                .op(Operator::ShuffleWrite)
                .build()
        };
        let sorting = |b: &mut DagBuilder, n: &str| {
            b.stage(n, 1)
                .op(Operator::ShuffleRead)
                .op(Operator::MergeSort)
                .op(Operator::ShuffleWrite)
                .build()
        };
        let s0 = streaming(&mut b, "S0");
        let s1 = sorting(&mut b, "S1");
        let s2 = streaming(&mut b, "S2");
        let s3 = sorting(&mut b, "S3");
        let s4 = streaming(&mut b, "S4");
        b.edge(s0, s1)
            .edge(s0, s4)
            .edge(s1, s2)
            .edge(s2, s3)
            .edge(s3, s4);
        let dag = b.build().unwrap();
        assert_eq!(
            dag.edges().iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![
                EdgeKind::Pipeline,
                EdgeKind::Pipeline,
                EdgeKind::Barrier,
                EdgeKind::Pipeline,
                EdgeKind::Barrier
            ]
        );
        let p = partition(&dag);
        assert_eq!(p.len(), 1, "cyclically dependent graphlets must merge");
        assert_eq!(p.graphlet(GraphletId(0)).stages.len(), 5);
        assert!(p.graphlet(GraphletId(0)).trigger_stages.is_empty());
        assert_eq!(p.submission_order(), vec![GraphletId(0)]);
    }

    #[test]
    fn stage_to_graphlet_is_total() {
        let dag = q9_dag();
        let p = partition(&dag);
        for s in dag.stages() {
            let g = p.graphlet_of(s.id);
            assert!(p.graphlet(g).contains(s.id));
        }
    }
}
