//! Edges of a job DAG and their pipeline/barrier classification.

use crate::ids::StageId;
use crate::stage::Stage;

/// Classification of a shuffle edge (§III-A1).
///
/// * `Pipeline` — the producing stage can stream rows to the consuming
///   stage as they are produced; both sides may be gang scheduled together.
/// * `Barrier` — the shuffle involves a global sort, so the consumer cannot
///   start before every producer task has finished. Barrier edges are the
///   cut points of job partitioning: producer and consumer always end up in
///   different graphlets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Streamable edge; endpoints share a graphlet.
    Pipeline,
    /// Sort-implying edge; endpoints are in different graphlets.
    Barrier,
}

impl EdgeKind {
    /// Returns `true` for [`EdgeKind::Pipeline`].
    pub fn is_pipeline(self) -> bool {
        self == EdgeKind::Pipeline
    }

    /// Returns `true` for [`EdgeKind::Barrier`].
    pub fn is_barrier(self) -> bool {
        self == EdgeKind::Barrier
    }
}

/// A directed data-dependency edge between two stages of the same job.
#[derive(Clone, Debug, PartialEq)]
pub struct Edge {
    /// Producing (upstream) stage.
    pub src: StageId,
    /// Consuming (downstream) stage.
    pub dst: StageId,
    /// Pipeline or barrier, per the shuffle-mode heuristics.
    pub kind: EdgeKind,
}

impl Edge {
    /// Creates an edge with an explicit kind.
    pub fn new(src: StageId, dst: StageId, kind: EdgeKind) -> Self {
        Edge { src, dst, kind }
    }

    /// The *shuffle edge size* of this edge as defined in §III-B: the number
    /// of (source task, sink task) pairs, i.e. `M × N` for `M` producer and
    /// `N` consumer tasks. Swift's adaptive shuffle selection keys off this
    /// number (thresholds 10 000 and 90 000 in production).
    pub fn shuffle_edge_size(&self, src_tasks: u32, dst_tasks: u32) -> u64 {
        src_tasks as u64 * dst_tasks as u64
    }
}

/// Classifies an edge from `src` to `dst` using the paper's heuristic.
///
/// An edge is a **barrier** exactly when the producing stage contains an
/// output-sorting operator (`MergeSort` / `SortBy`): its globally sorted
/// result is only complete once every producer task has finished, so it
/// cannot be streamed onward. This is the Fig. 4 rule verbatim — "J4, J6,
/// and J10 contain MergeSort operator, thus the edges between J4 and J6,
/// J6 and J10, J10 and R11 are barrier edges" — while R11's
/// `StreamedAggregate` (which merely *consumes* sorted input and emits in
/// order) leaves R11→R12 a pipeline edge, keeping R11 and R12 in one
/// graphlet as published.
///
/// The remaining §III-A1 operators (`MergeJoin`, `StreamedAggregate`,
/// `Window`) imply barriers indirectly: a planner satisfies their
/// sorted-input requirement ([`crate::Operator::requires_sorted_input`]) by
/// placing a `MergeSort` in the producing stage, which this rule then cuts.
pub fn classify_edge(src: &Stage, _dst: &Stage) -> EdgeKind {
    if src.sorts_output() {
        EdgeKind::Barrier
    } else {
        EdgeKind::Pipeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StageId;
    use crate::operator::Operator;
    use crate::stage::StageProfile;

    fn stage(id: u32, ops: Vec<Operator>) -> Stage {
        Stage {
            id: StageId(id),
            name: format!("S{id}"),
            operators: ops,
            task_count: 2,
            idempotent: true,
            profile: StageProfile::default(),
        }
    }

    #[test]
    fn producer_sort_makes_barrier() {
        let src = stage(
            0,
            vec![
                Operator::ShuffleRead,
                Operator::MergeJoin,
                Operator::MergeSort,
                Operator::ShuffleWrite,
            ],
        );
        let dst = stage(
            1,
            vec![
                Operator::ShuffleRead,
                Operator::HashJoin,
                Operator::ShuffleWrite,
            ],
        );
        assert_eq!(classify_edge(&src, &dst), EdgeKind::Barrier);
    }

    #[test]
    fn consumer_sort_does_not_cut() {
        // Only the producer side decides: a MergeSort in the consumer (it
        // merges already-sorted runs) does not prevent the producer from
        // streaming rows out. This mirrors Fig. 4's M5 -> J6 pipeline edge
        // even though J6 itself contains MergeSort/MergeJoin.
        let src = stage(
            0,
            vec![
                Operator::TableScan { table: "t".into() },
                Operator::ShuffleWrite,
            ],
        );
        let dst = stage(
            1,
            vec![
                Operator::ShuffleRead,
                Operator::MergeSort,
                Operator::ShuffleWrite,
            ],
        );
        assert_eq!(classify_edge(&src, &dst), EdgeKind::Pipeline);
    }

    #[test]
    fn streamed_aggregate_producer_does_not_cut() {
        // R11 in Fig. 4 contains StreamedAggregate yet R11 -> R12 is a
        // pipeline edge (they share graphlet 4): consuming sorted input and
        // emitting in order is streamable.
        let src = stage(
            0,
            vec![
                Operator::ShuffleRead,
                Operator::StreamedAggregate,
                Operator::ShuffleWrite,
            ],
        );
        let dst = stage(1, vec![Operator::ShuffleRead, Operator::AdhocSink]);
        assert_eq!(classify_edge(&src, &dst), EdgeKind::Pipeline);
    }

    #[test]
    fn streaming_pair_is_pipeline() {
        let src = stage(
            0,
            vec![
                Operator::TableScan { table: "t".into() },
                Operator::ShuffleWrite,
            ],
        );
        let dst = stage(
            1,
            vec![
                Operator::ShuffleRead,
                Operator::HashJoin,
                Operator::ShuffleWrite,
            ],
        );
        assert_eq!(classify_edge(&src, &dst), EdgeKind::Pipeline);
    }

    #[test]
    fn sort_by_producer_cuts() {
        let src = stage(
            0,
            vec![
                Operator::ShuffleRead,
                Operator::HashJoin,
                Operator::SortBy,
                Operator::ShuffleWrite,
            ],
        );
        let dst = stage(1, vec![Operator::ShuffleRead, Operator::AdhocSink]);
        assert_eq!(classify_edge(&src, &dst), EdgeKind::Barrier);
    }

    #[test]
    fn shuffle_edge_size_is_m_times_n() {
        let e = Edge::new(StageId(0), StageId(1), EdgeKind::Pipeline);
        assert_eq!(e.shuffle_edge_size(956, 403), 956 * 403);
        assert_eq!(e.shuffle_edge_size(0, 10), 0);
    }
}
