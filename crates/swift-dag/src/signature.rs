//! Canonical DAG shape signatures for control-plane template caching.
//!
//! A *shape signature* captures exactly the inputs the scheduler's
//! control-plane decisions are pure functions of: the DAG structure
//! (stages, edges, edge kinds), a caller-supplied *class* value per stage
//! (resource class — e.g. a task-count bucket plus structural flags) and a
//! caller-supplied class value per edge (e.g. a shuffle-size bucket).
//! Job ids, job/stage names and stage profiles deliberately do **not**
//! participate: two jobs of the same shape must sign identically.
//!
//! Two fingerprints are offered:
//!
//! * [`as_numbered_fingerprint`] — the shape *as numbered and as
//!   ordered*: the DAG's own stage ids as positions and the DAG's own
//!   edge enumeration order. Cheap (one linear pass, no sort); equal
//!   fingerprints mean the two DAGs are identical under the identity
//!   mapping, edge list included. This is the fast path for workloads
//!   that rebuild repeated jobs the same way; rebuilds that reorder
//!   stages or edges still unify through the canonical form. The
//!   streaming companions [`as_numbered_hash64`] and
//!   [`ShapeFingerprint::matches_as_numbered`] probe an index without
//!   materializing the fingerprint at all.
//! * [`canonical_fingerprint`] — an insertion-order-independent canonical
//!   form computed by Weisfeiler–Leman colour refinement with
//!   individualization backtracking. Equal canonical fingerprints mean the
//!   DAGs are isomorphic under a class-preserving mapping, which the
//!   returned canonical stage order makes explicit.
//!
//! Fingerprints compare *exactly* (full contents, not just a hash), so a
//! 64-bit hash collision can never alias two different shapes; [`
//! ShapeFingerprint::hash64`] only keys the lookup index.

use crate::dag::{DagBuilder, JobDag};
use crate::edge::EdgeKind;
use crate::ids::StageId;

/// Caller-supplied class values: one per stage (by [`StageId`] index) and
/// one per edge (by edge index in [`JobDag::edges`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShapeClasses {
    /// `stage[s]` = resource-class value of stage `s`.
    pub stage: Vec<u64>,
    /// `edge[e]` = class value (e.g. size bucket) of edge `e`.
    pub edge: Vec<u64>,
}

/// A complete, exactly-comparable rendering of a DAG shape under some
/// stage numbering: per-position stage classes plus the relabelled edge
/// list — sorted in canonical forms, in the DAG's own enumeration order
/// in as-numbered forms.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShapeFingerprint {
    /// Stage class value at each canonical position.
    stages: Vec<u64>,
    /// `(src_pos, dst_pos, is_barrier, edge_class)`.
    edges: Vec<(u32, u32, bool, u64)>,
}

/// Incremental word-at-a-time 64-bit mixer (rotate-xor-multiply, FxHash
/// style) — the one hash every signature digest in this module speaks.
/// One multiply per `u64` keeps digesting off the lookup critical path.
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x517c_c1b7_2722_0a95;

    fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    fn eat(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(Self::PRIME);
    }
}

/// Packs one fingerprint edge into the word [`Fnv64`] eats first.
fn edge_word(src_pos: u32, dst_pos: u32, barrier: bool) -> u64 {
    u64::from(src_pos) << 33 | u64::from(dst_pos) << 1 | u64::from(barrier)
}

impl ShapeFingerprint {
    /// A stable 64-bit digest of the fingerprint, for keying cache
    /// indexes. Collisions are possible and harmless: callers must confirm
    /// a candidate by comparing full fingerprints with `==`.
    pub fn hash64(&self) -> u64 {
        let mut h = Fnv64::new();
        h.eat(self.stages.len() as u64);
        for &s in &self.stages {
            h.eat(s);
        }
        for &(a, b, barrier, c) in &self.edges {
            h.eat(edge_word(a, b, barrier));
            h.eat(c);
        }
        h.0
    }

    /// True iff this fingerprint equals [`as_numbered_fingerprint`]`(dag,
    /// classes)` — checked by streaming over the DAG, allocating nothing.
    /// The identity-probe companion of [`as_numbered_hash64`].
    pub fn matches_as_numbered(&self, dag: &JobDag, classes: &ShapeClasses) -> bool {
        self.stages == classes.stage
            && self.edges.len() == dag.edges().len()
            && self
                .edges
                .iter()
                .zip(dag.edges().iter().zip(&classes.edge))
                .all(|(&(a, b, barrier, c), (e, &class))| {
                    a == e.src.raw()
                        && b == e.dst.raw()
                        && barrier == (e.kind == EdgeKind::Barrier)
                        && c == class
                })
    }

    /// Number of stages in the signed shape.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Number of edges in the signed shape.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

/// Builds the fingerprint of `dag` under a given position mapping:
/// `pos[s]` = canonical position of stage `s`.
fn fingerprint_at(dag: &JobDag, classes: &ShapeClasses, pos: &[u32]) -> ShapeFingerprint {
    let mut stages = vec![0u64; dag.stage_count()];
    for (s, &p) in pos.iter().enumerate() {
        stages[p as usize] = classes.stage[s];
    }
    let mut edges: Vec<(u32, u32, bool, u64)> = dag
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| {
            (
                pos[e.src.index()],
                pos[e.dst.index()],
                e.kind == EdgeKind::Barrier,
                classes.edge[i],
            )
        })
        .collect();
    edges.sort_unstable();
    ShapeFingerprint { stages, edges }
}

/// The shape of `dag` under its own stage numbering and edge enumeration
/// order. Equal as-numbered fingerprints mean the two DAGs are identical
/// stage-for-stage and edge-for-edge, including the order their edge
/// lists enumerate in (identity isomorphism; rebuilds that reorder edges
/// unify through [`canonical_fingerprint`] instead).
pub fn as_numbered_fingerprint(dag: &JobDag, classes: &ShapeClasses) -> ShapeFingerprint {
    ShapeFingerprint {
        stages: classes.stage.clone(),
        edges: dag
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| {
                (
                    e.src.raw(),
                    e.dst.raw(),
                    e.kind == EdgeKind::Barrier,
                    classes.edge[i],
                )
            })
            .collect(),
    }
}

/// Reusable scratch for allocation-free as-numbered probes: one pass over
/// the DAG fills the buffers, after which hashing, index probing and
/// exact confirmation all run over hot contiguous memory. A long-lived
/// probe (e.g. owned by a template cache) amortizes its allocations to
/// zero across lookups.
#[derive(Debug, Default)]
pub struct ShapeProbe {
    stages: Vec<u64>,
    edges: Vec<(u32, u32, bool, u64)>,
    /// Scratch `(out-degree, in-degree)` per stage for
    /// [`ShapeProbe::multiset_key64`].
    deg: Vec<(u32, u32)>,
}

impl ShapeProbe {
    /// Fills the probe from `dag` in a single walk. `stage_class` maps
    /// each stage to its resource class; `edge_class` maps each edge and
    /// its shuffle size to its class (e.g. a selection bucket).
    pub fn fill(
        &mut self,
        dag: &JobDag,
        mut stage_class: impl FnMut(&crate::stage::Stage) -> u64,
        mut edge_class: impl FnMut(&crate::edge::Edge, u64) -> u64,
    ) {
        self.stages.clear();
        self.stages
            .extend(dag.stages().iter().map(&mut stage_class));
        self.edges.clear();
        self.edges.extend(dag.edges().iter().map(|e| {
            (
                e.src.raw(),
                e.dst.raw(),
                e.kind == EdgeKind::Barrier,
                edge_class(e, dag.edge_shuffle_size(e)),
            )
        }));
    }

    /// [`ShapeFingerprint::hash64`] of the filled shape — equal to
    /// `as_numbered_fingerprint(dag, classes).hash64()` for the same
    /// class functions.
    pub fn hash64(&self) -> u64 {
        let mut h = Fnv64::new();
        h.eat(self.stages.len() as u64);
        for &s in &self.stages {
            h.eat(s);
        }
        for &(a, b, barrier, c) in &self.edges {
            h.eat(edge_word(a, b, barrier));
            h.eat(c);
        }
        h.0
    }

    /// True iff the filled shape equals `fp` (which must itself be an
    /// as-numbered fingerprint for the comparison to be meaningful).
    pub fn matches(&self, fp: &ShapeFingerprint) -> bool {
        self.stages == fp.stages && self.edges == fp.edges
    }

    /// Materializes the filled shape as an owned as-numbered fingerprint.
    pub fn to_fingerprint(&self) -> ShapeFingerprint {
        ShapeFingerprint {
            stages: self.stages.clone(),
            edges: self.edges.clone(),
        }
    }

    /// A permutation-invariant digest of the filled shape: a commutative
    /// (wrapping-sum) combination of per-stage `(class, in-degree,
    /// out-degree)` and per-edge `(class, endpoint classes, barrier)`
    /// hashes — one refinement round's worth of invariants with no sort
    /// and no allocation beyond the probe's own scratch. Equal for any
    /// two fillings of isomorphic shapes, so it is a sound (and in
    /// practice sharp) pre-screen for canonical-fingerprint equality.
    pub fn multiset_key64(&mut self) -> u64 {
        self.deg.clear();
        self.deg.resize(self.stages.len(), (0, 0));
        for &(s, d, _, _) in &self.edges {
            self.deg[s as usize].0 += 1;
            self.deg[d as usize].1 += 1;
        }
        let mut key = 0u64;
        for (&c, &(outd, ind)) in self.stages.iter().zip(&self.deg) {
            let mut h = Fnv64::new();
            h.eat(c);
            h.eat(u64::from(ind) << 32 | u64::from(outd));
            key = key.wrapping_add(h.0);
        }
        for &(s, d, barrier, c) in &self.edges {
            let mut h = Fnv64::new();
            // Domain-separate edge terms from stage terms.
            h.eat(0x9e37_79b9_7f4a_7c15);
            h.eat(c << 1 | u64::from(barrier));
            h.eat(self.stages[s as usize]);
            h.eat(self.stages[d as usize]);
            key = key.wrapping_add(h.0);
        }
        let mut lens = Fnv64::new();
        lens.eat(self.stages.len() as u64);
        lens.eat(self.edges.len() as u64);
        key.wrapping_add(lens.0)
    }

    /// Materializes the filled shape's class vectors (the edge class is
    /// the last component of each edge entry).
    pub fn to_classes(&self) -> ShapeClasses {
        ShapeClasses {
            stage: self.stages.clone(),
            edge: self.edges.iter().map(|&(_, _, _, c)| c).collect(),
        }
    }
}

/// [`ShapeFingerprint::hash64`] of the as-numbered fingerprint, computed
/// by streaming over the DAG without materializing it — the identity
/// probe of a template index costs no allocation at all.
pub fn as_numbered_hash64(dag: &JobDag, classes: &ShapeClasses) -> u64 {
    let mut h = Fnv64::new();
    h.eat(classes.stage.len() as u64);
    for &s in &classes.stage {
        h.eat(s);
    }
    for (e, &class) in dag.edges().iter().zip(&classes.edge) {
        h.eat(edge_word(
            e.src.raw(),
            e.dst.raw(),
            e.kind == EdgeKind::Barrier,
        ));
        h.eat(class);
    }
    h.0
}

/// Past this many stages the individualization search is skipped and the
/// as-numbered order used instead: canonicalization degrades to a
/// best-effort (cache hit rate may drop, correctness cannot — fingerprints
/// still compare exactly).
const CANONICAL_STAGE_LIMIT: usize = 256;

/// Backtracking-node budget for the individualization search, bounding the
/// worst case on highly symmetric graphs. Within budget the result is a
/// true canonical form; past it, a deterministic but possibly non-minimal
/// labelling is returned (again: hit rate, not correctness).
const SEARCH_BUDGET: u32 = 4_096;

/// An insertion-order-independent canonical fingerprint of `dag`, plus the
/// canonical stage order (`order[p]` = the stage at canonical position
/// `p`). Two DAGs with equal canonical fingerprints are isomorphic under
/// the class-preserving mapping obtained by pairing their canonical
/// orders position by position.
pub fn canonical_fingerprint(
    dag: &JobDag,
    classes: &ShapeClasses,
) -> (ShapeFingerprint, Vec<StageId>) {
    let n = dag.stage_count();
    if n > CANONICAL_STAGE_LIMIT {
        let fp = as_numbered_fingerprint(dag, classes);
        let order = (0..n as u32).map(StageId).collect();
        return (fp, order);
    }

    // Adjacency as (direction, is_barrier, edge_class, neighbour): the
    // neighbourhood structure WL refinement folds into each colour.
    let mut adj: Vec<Vec<(bool, bool, u64, usize)>> = vec![Vec::new(); n];
    for (i, e) in dag.edges().iter().enumerate() {
        let barrier = e.kind == EdgeKind::Barrier;
        let class = classes.edge[i];
        adj[e.src.index()].push((true, barrier, class, e.dst.index()));
        adj[e.dst.index()].push((false, barrier, class, e.src.index()));
    }

    // Initial colours: dense ranks of the stage class values.
    let mut initial: Vec<(u64, usize)> = classes
        .stage
        .iter()
        .copied()
        .enumerate()
        .map(|(v, c)| (c, v))
        .collect();
    initial.sort_unstable();
    let mut colors = vec![0u32; n];
    let mut rank = 0u32;
    for w in 0..initial.len() {
        if w > 0 && initial[w].0 != initial[w - 1].0 {
            rank += 1;
        }
        colors[initial[w].1] = rank;
    }

    let mut budget = SEARCH_BUDGET;
    let mut best: Option<(ShapeFingerprint, Vec<u32>)> = None;
    search(dag, classes, &adj, colors, &mut budget, &mut best);
    let (fp, pos) = best.expect("canonical search always yields a labelling");
    let mut order = vec![StageId(0); n];
    for (s, &p) in pos.iter().enumerate() {
        order[p as usize] = StageId(s as u32);
    }
    (fp, order)
}

/// A neighbourhood entry in a refinement key: edge direction, barrier
/// flag, edge class, neighbour colour.
type NbhKey = (bool, bool, u64, u32);

/// WL colour refinement to a fixed point. Colours are dense ranks; ranks
/// are assigned by sorting the full refinement keys, so the result is
/// independent of the DAG's stage numbering (no hashing, no collisions).
fn refine(adj: &[Vec<(bool, bool, u64, usize)>], colors: &mut [u32]) {
    let n = colors.len();
    loop {
        let mut keys: Vec<(u32, Vec<NbhKey>, usize)> = (0..n)
            .map(|v| {
                let mut nbh: Vec<NbhKey> = adj[v]
                    .iter()
                    .map(|&(dir, bar, cls, u)| (dir, bar, cls, colors[u]))
                    .collect();
                nbh.sort_unstable();
                (colors[v], nbh, v)
            })
            .collect();
        keys.sort_unstable();
        let mut next = vec![0u32; n];
        let mut rank = 0u32;
        for w in 0..n {
            if w > 0 && (keys[w].0, &keys[w].1) != (keys[w - 1].0, &keys[w - 1].1) {
                rank += 1;
            }
            next[keys[w].2] = rank;
        }
        let classes_before = colors
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        let classes_after = rank as usize + 1;
        let stable = classes_after == classes_before;
        colors.copy_from_slice(&next);
        if stable {
            return;
        }
    }
}

/// Individualization-refinement search: refine; if the colouring is
/// discrete, emit the candidate labelling; otherwise split the smallest
/// non-singleton colour class on each of its members in turn and recurse,
/// keeping the lexicographically smallest fingerprint found.
fn search(
    dag: &JobDag,
    classes: &ShapeClasses,
    adj: &[Vec<(bool, bool, u64, usize)>],
    mut colors: Vec<u32>,
    budget: &mut u32,
    best: &mut Option<(ShapeFingerprint, Vec<u32>)>,
) {
    refine(adj, &mut colors);
    let n = colors.len();

    // Smallest colour value with more than one member is the target cell
    // (an isomorphism-invariant choice).
    let mut count = vec![0u32; n];
    for &c in &colors {
        count[c as usize] += 1;
    }
    let target = count.iter().position(|&k| k > 1);

    match target {
        None => {
            // Discrete colouring: colours are positions.
            let fp = fingerprint_at(dag, classes, &colors);
            if best.as_ref().is_none_or(|(b, _)| fp < *b) {
                *best = Some((fp, colors));
            }
        }
        Some(cell) => {
            let members: Vec<usize> = (0..n).filter(|&v| colors[v] == cell as u32).collect();
            for v in members {
                if *budget == 0 {
                    // Budget exhausted: keep whatever minimum was found so
                    // far; if nothing was, force one leaf via first-member
                    // individualization (the loop below still runs once).
                    if best.is_some() {
                        return;
                    }
                }
                *budget = budget.saturating_sub(1);
                // Split v off its class: double every colour and nudge v,
                // preserving the relative order of all other classes.
                let mut split: Vec<u32> = colors.iter().map(|&c| c * 2).collect();
                split[v] += 1;
                search(dag, classes, adj, split, budget, best);
            }
        }
    }
}

/// Rebuilds `dag` with its stages inserted in the given order (a
/// permutation of all stage ids), preserving names, task counts, operator
/// chains, idempotence flags, profiles and explicit edge kinds. The result
/// describes the same job shape under a different stage numbering —
/// exactly what equal-shape signature tests and the template-instantiation
/// validator need.
pub fn permuted_clone(dag: &JobDag, insertion_order: &[StageId], job_id: u64) -> JobDag {
    assert_eq!(
        insertion_order.len(),
        dag.stage_count(),
        "insertion order must cover every stage exactly once"
    );
    let mut b = DagBuilder::new(job_id, dag.name.clone());
    let mut new_id = vec![StageId(0); dag.stage_count()];
    for &old in insertion_order {
        let s = dag.stage(old);
        let mut sb = b
            .stage(s.name.clone(), s.task_count)
            .ops(s.operators.iter().cloned())
            .profile(s.profile.clone());
        if !s.idempotent {
            sb = sb.non_idempotent();
        }
        new_id[old.index()] = sb.build();
    }
    for e in dag.edges() {
        b.edge_kind(new_id[e.src.index()], new_id[e.dst.index()], e.kind);
    }
    b.build()
        .expect("permuting stage insertion preserves DAG validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;
    use crate::operator::Operator;

    /// Uniform classes: stage class = task count, edge class = 0.
    fn plain_classes(dag: &JobDag) -> ShapeClasses {
        ShapeClasses {
            stage: dag
                .stages()
                .iter()
                .map(|s| u64::from(s.task_count))
                .collect(),
            edge: vec![0; dag.edges().len()],
        }
    }

    fn diamond(job_id: u64) -> JobDag {
        let mut b = DagBuilder::new(job_id, "diamond");
        let a = b
            .stage("A", 4)
            .op(Operator::TableScan { table: "t".into() })
            .op(Operator::ShuffleWrite)
            .build();
        let l = b
            .stage("B", 2)
            .op(Operator::ShuffleRead)
            .op(Operator::Filter)
            .op(Operator::ShuffleWrite)
            .build();
        let r = b
            .stage("C", 3)
            .op(Operator::ShuffleRead)
            .op(Operator::Project)
            .op(Operator::ShuffleWrite)
            .build();
        let d = b
            .stage("D", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::AdhocSink)
            .build();
        b.edge(a, l).edge(a, r).edge(l, d).edge(r, d);
        b.build().unwrap()
    }

    #[test]
    fn as_numbered_equal_for_identical_rebuilds() {
        let (d1, d2) = (diamond(1), diamond(999));
        let f1 = as_numbered_fingerprint(&d1, &plain_classes(&d1));
        let f2 = as_numbered_fingerprint(&d2, &plain_classes(&d2));
        assert_eq!(f1, f2, "job id must not influence the fingerprint");
        assert_eq!(f1.hash64(), f2.hash64());
    }

    #[test]
    fn canonical_equal_under_insertion_permutation() {
        let d1 = diamond(1);
        // Rebuild with stages inserted D, C, B, A.
        let perm: Vec<StageId> = (0..4).rev().map(StageId).collect();
        let d2 = permuted_clone(&d1, &perm, 2);
        let (f1, _) = canonical_fingerprint(&d1, &plain_classes(&d1));
        let (f2, _) = canonical_fingerprint(&d2, &plain_classes(&d2));
        assert_eq!(f1, f2, "insertion order must not influence canonical form");
        // As-numbered fingerprints differ (positions moved).
        assert_ne!(
            as_numbered_fingerprint(&d1, &plain_classes(&d1)),
            as_numbered_fingerprint(&d2, &plain_classes(&d2)),
        );
    }

    #[test]
    fn canonical_order_is_a_class_preserving_isomorphism() {
        let d1 = diamond(1);
        let perm: Vec<StageId> = [2u32, 0, 3, 1].into_iter().map(StageId).collect();
        let d2 = permuted_clone(&d1, &perm, 2);
        let c1 = plain_classes(&d1);
        let c2 = plain_classes(&d2);
        let (f1, o1) = canonical_fingerprint(&d1, &c1);
        let (f2, o2) = canonical_fingerprint(&d2, &c2);
        assert_eq!(f1, f2);
        // Pairing canonical positions maps stages with equal classes.
        for p in 0..o1.len() {
            assert_eq!(c1.stage[o1[p].index()], c2.stage[o2[p].index()]);
        }
    }

    #[test]
    fn class_changes_break_collision() {
        let d1 = diamond(1);
        let mut c2 = plain_classes(&d1);
        c2.stage[1] += 1; // different resource class on one stage
        let (f1, _) = canonical_fingerprint(&d1, &plain_classes(&d1));
        let (f2, _) = canonical_fingerprint(&d1, &c2);
        assert_ne!(f1, f2);

        let mut c3 = plain_classes(&d1);
        c3.edge[0] = 7; // different size bucket on one edge
        let (f3, _) = canonical_fingerprint(&d1, &c3);
        assert_ne!(f1, f3);
    }

    #[test]
    fn symmetric_siblings_still_canonicalise() {
        // A fan-out to 3 identical siblings: WL alone cannot split them, so
        // the individualization search must, and any insertion order of the
        // siblings must yield the same canonical form.
        let build = |order: &[usize], job: u64| {
            let mut b = DagBuilder::new(job, "fan");
            let root = b
                .stage("R", 8)
                .op(Operator::TableScan { table: "t".into() })
                .op(Operator::ShuffleWrite)
                .build();
            let mut kids = vec![StageId(0); 3];
            for &i in order {
                kids[i] = b
                    .stage(format!("K{i}"), 2)
                    .op(Operator::ShuffleRead)
                    .op(Operator::AdhocSink)
                    .build();
            }
            for k in kids {
                b.edge(root, k);
            }
            b.build().unwrap()
        };
        let d1 = build(&[0, 1, 2], 1);
        let d2 = build(&[2, 0, 1], 2);
        let (f1, _) = canonical_fingerprint(&d1, &plain_classes(&d1));
        let (f2, _) = canonical_fingerprint(&d2, &plain_classes(&d2));
        assert_eq!(f1, f2);
    }

    #[test]
    fn permuted_clone_preserves_stage_payloads() {
        let d1 = diamond(5);
        let perm: Vec<StageId> = [3u32, 1, 0, 2].into_iter().map(StageId).collect();
        let d2 = permuted_clone(&d1, &perm, 6);
        assert_eq!(d2.stage_count(), d1.stage_count());
        assert_eq!(d2.edges().len(), d1.edges().len());
        for old in d1.stages() {
            let new = d2.stage_by_name(&old.name).unwrap();
            assert_eq!(new.task_count, old.task_count);
            assert_eq!(new.operators, old.operators);
            assert_eq!(new.idempotent, old.idempotent);
            assert_eq!(new.profile, old.profile);
        }
    }

    #[test]
    fn oversized_dag_falls_back_to_as_numbered() {
        let mut b = DagBuilder::new(1, "big-chain");
        let mut prev: Option<StageId> = None;
        for i in 0..(CANONICAL_STAGE_LIMIT + 1) {
            let s = b.stage(format!("S{i}"), 1).op(Operator::Filter).build();
            if let Some(p) = prev {
                b.edge(p, s);
            }
            prev = Some(s);
        }
        let dag = b.build().unwrap();
        let classes = plain_classes(&dag);
        let (f, order) = canonical_fingerprint(&dag, &classes);
        assert_eq!(f, as_numbered_fingerprint(&dag, &classes));
        assert_eq!(order.len(), dag.stage_count());
    }
}
