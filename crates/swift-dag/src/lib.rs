//! # swift-dag — the Swift job model
//!
//! This crate implements the job description layer of *Swift: Reliable and
//! Low-Latency Data Processing at Cloud Scale* (ICDE 2021):
//!
//! * [`JobDag`] — a validated DAG of [`Stage`]s connected by [`Edge`]s,
//!   built with [`DagBuilder`];
//! * pipeline/barrier edge classification from the stages' operator chains
//!   ([`classify_edge`], §III-A1);
//! * shuffle-mode-aware job partitioning into graphlets
//!   ([`partition`], Algorithms 1 & 2) with graphlet dependency analysis
//!   and deterministic submission order (§III-A2).
//!
//! Everything downstream — the scheduler, the failure-recovery logic, the
//! cluster simulator and the real execution engine — consumes these types.
//!
//! ```
//! use swift_dag::{DagBuilder, Operator, partition};
//!
//! let mut b = DagBuilder::new(1, "wordcount");
//! let map = b.stage("map", 8)
//!     .op(Operator::TableScan { table: "docs".into() })
//!     .op(Operator::ShuffleWrite)
//!     .build();
//! let reduce = b.stage("reduce", 4)
//!     .op(Operator::ShuffleRead)
//!     .op(Operator::HashAggregate)
//!     .op(Operator::AdhocSink)
//!     .build();
//! b.edge(map, reduce);
//! let dag = b.build().unwrap();
//! let part = partition(&dag);
//! assert_eq!(part.len(), 1); // hash aggregation streams: one graphlet
//! ```

#![warn(missing_docs)]

mod dag;
mod edge;
mod ids;
mod operator;
mod partition;
mod signature;
mod stage;

pub use dag::{descendants, DagBuilder, DagError, JobDag, StageBuilder};
pub use edge::{classify_edge, Edge, EdgeKind};
pub use ids::{GraphletId, JobId, StageId, TaskId};
pub use operator::Operator;
pub use partition::{partition, Graphlet, Partition};
pub use signature::{
    as_numbered_fingerprint, as_numbered_hash64, canonical_fingerprint, permuted_clone,
    ShapeClasses, ShapeFingerprint, ShapeProbe,
};
pub use stage::{Stage, StageProfile};
