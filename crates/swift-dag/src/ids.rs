//! Strongly-typed identifiers used across the Swift reproduction.
//!
//! Every entity that crosses a crate boundary (jobs, stages, tasks,
//! graphlets) gets a newtype id so that the scheduler, the simulator and the
//! execution engine cannot accidentally mix them up. All ids are small
//! `Copy` types ordered the way they were created, which keeps the
//! discrete-event simulation deterministic.

use std::fmt;

/// Identifier of a submitted job. Unique within one scheduler/engine run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Identifier of a stage *within one job*. Stage ids are dense indices
/// (`0..dag.stage_count()`) assigned in insertion order by [`crate::DagBuilder`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(pub u32);

/// Identifier of one parallel task instance of a stage.
///
/// A stage with `task_count == n` owns tasks with `index` `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId {
    /// The stage this task belongs to.
    pub stage: StageId,
    /// Index of this task within the stage, `0..task_count`.
    pub index: u32,
}

/// Identifier of a graphlet (sub-graph) produced by job partitioning,
/// dense within one job (`0..partition.graphlet_count()`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphletId(pub u32);

impl JobId {
    /// Returns the raw numeric value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl StageId {
    /// Returns the raw numeric value (also the index into the job's stage list).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GraphletId {
    /// Returns the raw numeric value (also the index into the partition's graphlet list).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TaskId {
    /// Creates the id of task `index` of `stage`.
    pub fn new(stage: StageId, index: u32) -> Self {
        TaskId { stage, index }
    }
}

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}t{}", self.stage.0, self.index)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for GraphletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for GraphletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{}", JobId(7)), "job7");
        assert_eq!(format!("{}", StageId(3)), "s3");
        assert_eq!(format!("{}", TaskId::new(StageId(3), 9)), "s3t9");
        assert_eq!(format!("{}", GraphletId(1)), "g1");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(JobId(1) < JobId(2));
        assert!(StageId(0) < StageId(1));
        assert!(TaskId::new(StageId(0), 5) < TaskId::new(StageId(1), 0));
        assert!(TaskId::new(StageId(1), 0) < TaskId::new(StageId(1), 1));
    }

    #[test]
    fn ids_roundtrip_display_debug() {
        let t = TaskId::new(StageId(4), 2);
        assert_eq!(format!("{t}"), "s4t2");
        let back = t;
        assert_eq!(t, back);
    }
}
