//! Relational operators a Swift stage can contain.
//!
//! The paper (§II-A) states that Swift "supports all typical SQL operators
//! such as sort merge join, sort aggregate, window, order by, and so on".
//! What matters structurally is which operators imply a *global sort*
//! crossing a stage boundary: per §III-A1, edges whose shuffle involves
//! `StreamedAggregate`, `MergeJoin`, `Window`, `SortBy` or `MergeSort`
//! cannot be streamed and become **barrier** edges.

use std::fmt;

/// The kind of operator in a stage's operator chain.
///
/// Operators are deliberately *descriptors* here: `swift-dag` only needs
/// enough structure to classify edges and partition jobs. The executable
/// counterparts (with expressions, key extractors, etc.) live in
/// `swift-engine`; the cost-model counterparts live in `swift-cluster`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Operator {
    /// Scans a base table (or a table partition) from storage.
    TableScan {
        /// Name of the table being scanned.
        table: String,
    },
    /// Filters rows by a predicate (predicate itself lives in the engine plan).
    Filter,
    /// Projects/computes output columns.
    Project,
    /// Hash join: pipelineable, no sort requirement.
    HashJoin,
    /// Sort-merge join: consumes sorted runs, a global-sort operator.
    MergeJoin,
    /// Aggregation over hash tables: pipelineable.
    HashAggregate,
    /// Aggregation over sorted input ("sort aggregate"): a global-sort operator.
    StreamedAggregate,
    /// Window function over sorted partitions: a global-sort operator.
    Window,
    /// Produces sorted output partitions ("order by"): a global-sort operator.
    SortBy,
    /// Merges sorted runs received from predecessor tasks: a global-sort operator.
    MergeSort,
    /// Caps the number of output rows.
    Limit {
        /// Maximum number of rows to emit.
        limit: u64,
    },
    /// Writes shuffle partitions for successor stages.
    ShuffleWrite,
    /// Reads shuffle partitions produced by predecessor stages.
    ShuffleRead,
    /// Terminal sink streaming results back to the client ("adhoc sink").
    AdhocSink,
    /// Terminal sink writing results to a table.
    TableSink {
        /// Name of the destination table.
        table: String,
    },
    /// A user-defined or otherwise opaque operator; never sort-implying.
    Custom {
        /// Free-form operator name for diagnostics.
        name: String,
    },
}

impl Operator {
    /// Returns `true` for the global-sort operators listed in §III-A1
    /// (`StreamedAggregate`, `MergeJoin`, `Window`, `SortBy`, `MergeSort`).
    ///
    /// Data flowing *into* such an operator across a stage boundary cannot
    /// be streamed: the producing side must run to completion first, so the
    /// incoming shuffle edge is a barrier edge.
    pub fn is_global_sort(&self) -> bool {
        matches!(
            self,
            Operator::StreamedAggregate
                | Operator::MergeJoin
                | Operator::Window
                | Operator::SortBy
                | Operator::MergeSort
        )
    }

    /// Returns `true` for operators that emit a *globally sorted output*
    /// which is only complete once all input has been consumed
    /// (`MergeSort`, `SortBy`). A stage containing such an operator cannot
    /// stream its result to the next stage, so its outgoing shuffle edges
    /// are barriers — this is exactly the Fig. 4 rule ("J4, J6, and J10
    /// contain MergeSort operator, thus [their outgoing] edges are barrier
    /// edges").
    pub fn sorts_output(&self) -> bool {
        matches!(self, Operator::MergeSort | Operator::SortBy)
    }

    /// Returns `true` for operators that *require sorted input*
    /// (`MergeJoin`, `StreamedAggregate`, `Window`, `MergeSort`). Planners
    /// satisfy the requirement by placing a `MergeSort`/`SortBy` in the
    /// producing stage, which in turn makes the connecting edge a barrier;
    /// this is how all five §III-A1 operators end up implying barriers.
    pub fn requires_sorted_input(&self) -> bool {
        matches!(
            self,
            Operator::MergeJoin
                | Operator::StreamedAggregate
                | Operator::Window
                | Operator::MergeSort
        )
    }

    /// Returns `true` if the operator is a terminal sink (no successors expected).
    pub fn is_sink(&self) -> bool {
        matches!(self, Operator::AdhocSink | Operator::TableSink { .. })
    }

    /// Returns `true` if the operator reads from base storage.
    pub fn is_source(&self) -> bool {
        matches!(self, Operator::TableScan { .. })
    }

    /// A short, stable name used in logs, figures and plan dumps.
    pub fn name(&self) -> &str {
        match self {
            Operator::TableScan { .. } => "TableScan",
            Operator::Filter => "Filter",
            Operator::Project => "Project",
            Operator::HashJoin => "HashJoin",
            Operator::MergeJoin => "MergeJoin",
            Operator::HashAggregate => "HashAggregate",
            Operator::StreamedAggregate => "StreamedAggregate",
            Operator::Window => "Window",
            Operator::SortBy => "SortBy",
            Operator::MergeSort => "MergeSort",
            Operator::Limit { .. } => "Limit",
            Operator::ShuffleWrite => "ShuffleWrite",
            Operator::ShuffleRead => "ShuffleRead",
            Operator::AdhocSink => "AdhocSink",
            Operator::TableSink { .. } => "TableSink",
            Operator::Custom { name } => name,
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::TableScan { table } => write!(f, "TableScan({table})"),
            Operator::TableSink { table } => write!(f, "TableSink({table})"),
            Operator::Limit { limit } => write!(f, "Limit({limit})"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_sort_set_matches_paper() {
        // §III-A1 lists exactly these five operators as global-sort.
        let sorting = [
            Operator::StreamedAggregate,
            Operator::MergeJoin,
            Operator::Window,
            Operator::SortBy,
            Operator::MergeSort,
        ];
        for op in &sorting {
            assert!(op.is_global_sort(), "{op} must be global-sort");
        }
        let streaming = [
            Operator::TableScan { table: "t".into() },
            Operator::Filter,
            Operator::Project,
            Operator::HashJoin,
            Operator::HashAggregate,
            Operator::Limit { limit: 10 },
            Operator::ShuffleWrite,
            Operator::ShuffleRead,
            Operator::AdhocSink,
            Operator::Custom { name: "udf".into() },
        ];
        for op in &streaming {
            assert!(!op.is_global_sort(), "{op} must not be global-sort");
        }
    }

    #[test]
    fn sink_and_source_classification() {
        assert!(Operator::AdhocSink.is_sink());
        assert!(Operator::TableSink {
            table: "out".into()
        }
        .is_sink());
        assert!(!Operator::ShuffleWrite.is_sink());
        assert!(Operator::TableScan { table: "t".into() }.is_source());
        assert!(!Operator::ShuffleRead.is_source());
    }

    #[test]
    fn display_includes_parameters() {
        assert_eq!(
            Operator::TableScan {
                table: "lineitem".into()
            }
            .to_string(),
            "TableScan(lineitem)"
        );
        assert_eq!(
            Operator::Limit { limit: 999999 }.to_string(),
            "Limit(999999)"
        );
        assert_eq!(Operator::MergeSort.to_string(), "MergeSort");
    }
}
