//! Stages: the vertices of a Swift job DAG.

use crate::ids::StageId;
use crate::operator::Operator;

/// Resource/size hints for a stage, consumed by the scheduler's placement
/// logic and by the cluster cost model when the stage runs in simulation.
///
/// A `StageProfile` describes the *per-task* shape of the work. The numbers
/// mirror what Fig. 13 of the paper publishes for TPC-H Q13 (input records
/// and input size per task) plus the compute cost the simulator needs.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct StageProfile {
    /// Rows read by one task (from storage or from the incoming shuffle).
    pub input_rows_per_task: u64,
    /// Bytes read by one task.
    pub input_bytes_per_task: u64,
    /// Bytes one task writes to its outgoing shuffle (0 for sinks).
    pub output_bytes_per_task: u64,
    /// Pure record-processing time for one task, in microseconds, excluding
    /// launch and shuffle phases (those are charged by the cost model).
    pub process_us_per_task: u64,
    /// Preferred machines for data locality (indices into the cluster's
    /// machine list). Empty means no locality preference: the paper's
    /// placement rule then picks the most free machine.
    pub locality: Vec<u32>,
}

impl StageProfile {
    /// Total bytes this stage writes to its outgoing shuffle across all
    /// `task_count` tasks.
    pub fn total_output_bytes(&self, task_count: u32) -> u64 {
        self.output_bytes_per_task * task_count as u64
    }

    /// Total bytes this stage reads across all `task_count` tasks.
    pub fn total_input_bytes(&self, task_count: u32) -> u64 {
        self.input_bytes_per_task * task_count as u64
    }
}

/// One stage of a job: a chain of operators executed by `task_count`
/// parallel tasks.
///
/// Stages are created through [`crate::DagBuilder`]; their `id` doubles as
/// the index into [`crate::JobDag::stages`].
#[derive(Clone, Debug, PartialEq)]
pub struct Stage {
    /// Dense id of this stage within its job.
    pub id: StageId,
    /// Human-readable name, e.g. `"M1"` or `"J4"` in the paper's Fig. 4.
    pub name: String,
    /// Operator chain executed by each task, in order.
    pub operators: Vec<Operator>,
    /// Degree of parallelism: number of task instances.
    pub task_count: u32,
    /// Whether tasks of this stage are idempotent (§IV-B1): re-running an
    /// idempotent task reproduces the identical output data *and order*, so
    /// downstream consumers that already received its data need not re-run.
    pub idempotent: bool,
    /// Size/cost hints for scheduling and simulation.
    pub profile: StageProfile,
}

impl Stage {
    /// Returns `true` if any operator in this stage is a global-sort
    /// operator (`MergeSort`, `MergeJoin`, `SortBy`, `Window`,
    /// `StreamedAggregate`).
    ///
    /// See [`Operator::is_global_sort`] for the §III-A1 operator list.
    pub fn has_global_sort(&self) -> bool {
        self.operators.iter().any(Operator::is_global_sort)
    }

    /// Returns `true` if any operator in this stage *sorts its output*
    /// (`MergeSort` / `SortBy`), which makes every outgoing edge of the
    /// stage a barrier edge (Fig. 4 rule; see [`crate::classify_edge`]).
    pub fn sorts_output(&self) -> bool {
        self.operators.iter().any(Operator::sorts_output)
    }

    /// Returns `true` if any operator requires globally sorted input
    /// (`MergeJoin`, `StreamedAggregate`, `Window`, `MergeSort`).
    pub fn requires_sorted_input(&self) -> bool {
        self.operators.iter().any(Operator::requires_sorted_input)
    }

    /// Returns `true` if the stage ends in a terminal sink.
    pub fn is_sink_stage(&self) -> bool {
        self.operators.iter().any(Operator::is_sink)
    }

    /// Returns `true` if the stage reads base tables.
    pub fn is_source_stage(&self) -> bool {
        self.operators.iter().any(Operator::is_source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(ops: Vec<Operator>) -> Stage {
        Stage {
            id: StageId(0),
            name: "test".into(),
            operators: ops,
            task_count: 4,
            idempotent: true,
            profile: StageProfile::default(),
        }
    }

    #[test]
    fn detects_global_sort_anywhere_in_chain() {
        let s = stage(vec![
            Operator::ShuffleRead,
            Operator::MergeSort,
            Operator::MergeJoin,
            Operator::ShuffleWrite,
        ]);
        assert!(s.has_global_sort());
        let p = stage(vec![
            Operator::ShuffleRead,
            Operator::HashJoin,
            Operator::ShuffleWrite,
        ]);
        assert!(!p.has_global_sort());
    }

    #[test]
    fn sink_and_source_stage_detection() {
        let sink = stage(vec![Operator::ShuffleRead, Operator::AdhocSink]);
        assert!(sink.is_sink_stage());
        assert!(!sink.is_source_stage());
        let src = stage(vec![
            Operator::TableScan { table: "t".into() },
            Operator::ShuffleWrite,
        ]);
        assert!(src.is_source_stage());
        assert!(!src.is_sink_stage());
    }

    #[test]
    fn profile_totals_scale_with_task_count() {
        let p = StageProfile {
            input_rows_per_task: 10,
            input_bytes_per_task: 100,
            output_bytes_per_task: 50,
            process_us_per_task: 1_000,
            locality: vec![],
        };
        assert_eq!(p.total_input_bytes(8), 800);
        assert_eq!(p.total_output_bytes(8), 400);
    }
}
