//! Property tests over the trace stream, in the seeded-loop style of the
//! swift-chaos suite: every registry scenario is replayed across a seed
//! range and each property must hold on every run. A failing seed is a
//! self-contained repro (`scenarios::run_traced(name, seed, ..)`).

use std::collections::BTreeSet;

use swift_trace::{scenarios, RecorderConfig, StreamSink, TraceEventKind};

const SEEDS: std::ops::Range<u64> = 0..12;

/// Seeds for the more expensive streaming-equality sweeps.
const STREAM_SEEDS: [u64; 3] = [1, 7, 42];

/// The determinism pin: the same `(scenario, seed)` produces a
/// byte-identical text trace — and an identical `RunReport` — across two
/// independent runs in one process.
#[test]
fn same_seed_traces_are_byte_identical() {
    for name in scenarios::names() {
        for seed in SEEDS {
            let (a, ra) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            let (b, rb) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            assert_eq!(
                a.render_text(),
                b.render_text(),
                "trace divergence: {name} seed {seed}"
            );
            assert_eq!(
                format!("{ra:?}"),
                format!("{rb:?}"),
                "report divergence: {name} seed {seed}"
            );
        }
    }
}

/// Spans are well nested and closed at run end (see
/// [`swift_trace::Trace::check_spans`] for the full discipline).
#[test]
fn spans_are_well_nested_and_closed() {
    for name in scenarios::names() {
        for seed in SEEDS {
            let (trace, _) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            trace
                .check_spans()
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
        }
    }
}

/// Every `task_finished` is preceded by a `task_started` of the same
/// attempt — same `(job, stage, index, epoch)` — checked directly on the
/// raw stream, independently of the span checker.
#[test]
fn every_finish_has_a_matching_start() {
    for name in scenarios::names() {
        for seed in SEEDS {
            let (trace, _) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            let mut started: BTreeSet<(u32, u32, u32, u32)> = BTreeSet::new();
            let mut finishes = 0u64;
            for e in &trace.events {
                match &e.kind {
                    TraceEventKind::TaskStarted { job, task, epoch } => {
                        started.insert((*job, task.stage, task.index, *epoch));
                    }
                    TraceEventKind::TaskFinished { job, task, epoch } => {
                        finishes += 1;
                        assert!(
                            started.contains(&(*job, task.stage, task.index, *epoch)),
                            "{name} seed {seed}: task {task} e{epoch} of job {job} \
                             finished without starting"
                        );
                    }
                    _ => {}
                }
            }
            assert!(finishes > 0, "{name} seed {seed}: no task ever finished");
        }
    }
}

/// Timestamps never go backwards, and the stream ends with exactly one
/// `run_finished` carrying the simulator's processed-event count.
#[test]
fn stream_is_monotonic_and_terminated() {
    for name in scenarios::names() {
        for seed in SEEDS {
            let (trace, report) =
                scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            let mut prev = None;
            for e in &trace.events {
                if let Some(p) = prev {
                    assert!(e.at >= p, "{name} seed {seed}: time went backwards");
                }
                prev = Some(e.at);
            }
            let finals: Vec<u64> = trace
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    TraceEventKind::RunFinished { events } => Some(events),
                    _ => None,
                })
                .collect();
            assert_eq!(finals.len(), 1, "{name} seed {seed}: run_finished count");
            assert_eq!(
                finals[0], report.events_processed,
                "{name} seed {seed}: run_finished event count"
            );
            assert!(
                matches!(
                    trace.events.last().map(|e| &e.kind),
                    Some(TraceEventKind::RunFinished { .. })
                ),
                "{name} seed {seed}: run_finished is not the final event"
            );
        }
    }
}

/// The streaming-sink pin: for every registry scenario, the bytes a
/// [`StreamSink`] writes are byte-identical to the buffered
/// [`swift_trace::Trace::render_text`] path — and the peak chunk buffer
/// stays within the configured chunk size regardless of run length. The
/// deliberately tiny second chunk exercises mid-run flushing.
#[test]
fn streamed_trace_equals_buffered_render() {
    for name in scenarios::names() {
        for seed in STREAM_SEEDS {
            let (trace, _) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            let buffered = trace.render_text();
            for chunk in [4096usize, 256] {
                let sink = StreamSink::with_chunk(Vec::<u8>::new(), name, seed, chunk);
                let (sink, _) =
                    scenarios::run_traced_sink(name, seed, RecorderConfig::full(), sink).unwrap();
                let (bytes, stats) = sink.finish_into_inner().unwrap();
                assert!(
                    stats.peak_buffer_bytes <= chunk,
                    "{name} seed {seed}: peak buffer {} exceeds chunk {chunk}",
                    stats.peak_buffer_bytes
                );
                assert_eq!(stats.events, trace.len() as u64, "{name} seed {seed}");
                assert_eq!(
                    stats.bytes_written as usize,
                    bytes.len(),
                    "{name} seed {seed}"
                );
                assert_eq!(
                    String::from_utf8(bytes).unwrap(),
                    buffered,
                    "{name} seed {seed} chunk {chunk}: streamed bytes differ from buffered render"
                );
            }
        }
    }
}

/// Counter frames under the full config: every frame carries the whole
/// series vocabulary in ascending-ID order, window indices never
/// decrease, at least one frame exists, and the rendered counter tracks
/// are byte-identical across two runs of the same `(scenario, seed)`.
#[test]
fn counter_frames_are_complete_and_deterministic() {
    for name in scenarios::names() {
        for seed in STREAM_SEEDS {
            let (a, _) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            let (b, _) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            assert_eq!(
                a.render_counters_text(),
                b.render_counters_text(),
                "counter-track divergence: {name} seed {seed}"
            );
            let mut frames = 0u64;
            let mut prev_window = 0u64;
            for e in &a.events {
                if let TraceEventKind::CounterFrame { window, values } = &e.kind {
                    frames += 1;
                    assert!(
                        *window >= prev_window,
                        "{name} seed {seed}: window index went backwards"
                    );
                    prev_window = *window;
                    // Without the `shard_series` opt-in the frame carries
                    // exactly the core vocabulary — never the wide one.
                    assert_eq!(
                        values.len(),
                        swift_metrics::CORE_SERIES,
                        "{name} seed {seed}: frame missing series"
                    );
                    for (i, (id, _)) in values.iter().enumerate() {
                        assert_eq!(*id as usize, i, "{name} seed {seed}: series order");
                    }
                }
            }
            assert!(frames > 0, "{name} seed {seed}: no counter frames recorded");
        }
    }
}

/// The default (control-plane only) configuration records a strict
/// subset: no input reads, no cache events, and the stream is still
/// deterministic and well nested.
#[test]
fn default_config_is_lean_and_well_nested() {
    for name in scenarios::names() {
        for seed in SEEDS {
            let (trace, _) = scenarios::run_traced(name, seed, RecorderConfig::default()).unwrap();
            for e in &trace.events {
                assert!(
                    !matches!(
                        e.kind,
                        TraceEventKind::InputRead { .. }
                            | TraceEventKind::CacheSpill { .. }
                            | TraceEventKind::CacheEvict { .. }
                            | TraceEventKind::CounterFrame { .. }
                    ),
                    "{name} seed {seed}: {} recorded under the default config",
                    e.name()
                );
            }
            trace
                .check_spans()
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
        }
    }
}
