//! Property tests over the trace stream, in the seeded-loop style of the
//! swift-chaos suite: every registry scenario is replayed across a seed
//! range and each property must hold on every run. A failing seed is a
//! self-contained repro (`scenarios::run_traced(name, seed, ..)`).

use std::collections::BTreeSet;

use swift_trace::{scenarios, RecorderConfig, TraceEventKind};

const SEEDS: std::ops::Range<u64> = 0..12;

/// The determinism pin: the same `(scenario, seed)` produces a
/// byte-identical text trace — and an identical `RunReport` — across two
/// independent runs in one process.
#[test]
fn same_seed_traces_are_byte_identical() {
    for name in scenarios::names() {
        for seed in SEEDS {
            let (a, ra) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            let (b, rb) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            assert_eq!(
                a.render_text(),
                b.render_text(),
                "trace divergence: {name} seed {seed}"
            );
            assert_eq!(
                format!("{ra:?}"),
                format!("{rb:?}"),
                "report divergence: {name} seed {seed}"
            );
        }
    }
}

/// Spans are well nested and closed at run end (see
/// [`swift_trace::Trace::check_spans`] for the full discipline).
#[test]
fn spans_are_well_nested_and_closed() {
    for name in scenarios::names() {
        for seed in SEEDS {
            let (trace, _) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            trace
                .check_spans()
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
        }
    }
}

/// Every `task_finished` is preceded by a `task_started` of the same
/// attempt — same `(job, stage, index, epoch)` — checked directly on the
/// raw stream, independently of the span checker.
#[test]
fn every_finish_has_a_matching_start() {
    for name in scenarios::names() {
        for seed in SEEDS {
            let (trace, _) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            let mut started: BTreeSet<(u32, u32, u32, u32)> = BTreeSet::new();
            let mut finishes = 0u64;
            for e in &trace.events {
                match &e.kind {
                    TraceEventKind::TaskStarted { job, task, epoch } => {
                        started.insert((*job, task.stage, task.index, *epoch));
                    }
                    TraceEventKind::TaskFinished { job, task, epoch } => {
                        finishes += 1;
                        assert!(
                            started.contains(&(*job, task.stage, task.index, *epoch)),
                            "{name} seed {seed}: task {task} e{epoch} of job {job} \
                             finished without starting"
                        );
                    }
                    _ => {}
                }
            }
            assert!(finishes > 0, "{name} seed {seed}: no task ever finished");
        }
    }
}

/// Timestamps never go backwards, and the stream ends with exactly one
/// `run_finished` carrying the simulator's processed-event count.
#[test]
fn stream_is_monotonic_and_terminated() {
    for name in scenarios::names() {
        for seed in SEEDS {
            let (trace, report) =
                scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
            let mut prev = None;
            for e in &trace.events {
                if let Some(p) = prev {
                    assert!(e.at >= p, "{name} seed {seed}: time went backwards");
                }
                prev = Some(e.at);
            }
            let finals: Vec<u64> = trace
                .events
                .iter()
                .filter_map(|e| match e.kind {
                    TraceEventKind::RunFinished { events } => Some(events),
                    _ => None,
                })
                .collect();
            assert_eq!(finals.len(), 1, "{name} seed {seed}: run_finished count");
            assert_eq!(
                finals[0], report.events_processed,
                "{name} seed {seed}: run_finished event count"
            );
            assert!(
                matches!(
                    trace.events.last().map(|e| &e.kind),
                    Some(TraceEventKind::RunFinished { .. })
                ),
                "{name} seed {seed}: run_finished is not the final event"
            );
        }
    }
}

/// The default (control-plane only) configuration records a strict
/// subset: no input reads, no cache events, and the stream is still
/// deterministic and well nested.
#[test]
fn default_config_is_lean_and_well_nested() {
    for name in scenarios::names() {
        for seed in SEEDS {
            let (trace, _) = scenarios::run_traced(name, seed, RecorderConfig::default()).unwrap();
            for e in &trace.events {
                assert!(
                    !matches!(
                        e.kind,
                        TraceEventKind::InputRead { .. }
                            | TraceEventKind::CacheSpill { .. }
                            | TraceEventKind::CacheEvict { .. }
                    ),
                    "{name} seed {seed}: {} recorded under the default config",
                    e.name()
                );
            }
            trace
                .check_spans()
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
        }
    }
}
