//! Golden-trace conformance suite.
//!
//! Every entry in [`GOLDENS`] runs one registry scenario at a pinned seed
//! with the full recorder configuration and exact-diffs the rendered text
//! trace (and, for `tiny`, the Chrome JSON export) against a checked-in
//! golden file under `tests/goldens/`.
//!
//! Regenerating goldens after an **intentional** format or behaviour
//! change:
//!
//! ```text
//! SWIFT_TRACE_BLESS=1 cargo test -p swift-trace --test golden
//! git diff crates/swift-trace/tests/goldens/   # review every hunk
//! ```
//!
//! Bless rewrites the files in place; the diff is the review artifact.
//! Never bless to silence a failure you cannot explain — a golden diff
//! on an unchanged format means the simulator or recorder stopped being
//! deterministic, which is a bug, not a stale fixture.

use std::fs;
use std::path::PathBuf;

use swift_trace::{scenarios, RecorderConfig};

/// `(scenario, seed)` pairs pinned by a golden file. One fault-injection
/// scenario (`fault`) and one barrier-heavy scenario (`barrier`) are
/// required members; the rest cover waves, fan-out and multi-job mixes.
const GOLDENS: &[(&str, u64)] = &[
    ("tiny", 1),
    ("diamond", 7),
    ("barrier", 3),
    ("wave", 5),
    ("fault", 11),
    ("multijob", 2),
    ("repeat_shapes", 7),
];

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn blessing() -> bool {
    std::env::var_os("SWIFT_TRACE_BLESS").is_some_and(|v| v == "1")
}

/// Exact-diffs `actual` against the golden `file`, or rewrites it under
/// `SWIFT_TRACE_BLESS=1`. Failures report the first differing line.
fn check_golden(file: &str, actual: &str) {
    let path = goldens_dir().join(file);
    if blessing() {
        fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with \
             SWIFT_TRACE_BLESS=1 cargo test -p swift-trace --test golden",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mut exp = expected.lines();
    let mut act = actual.lines();
    let mut line = 1usize;
    loop {
        match (exp.next(), act.next()) {
            (Some(e), Some(a)) if e == a => line += 1,
            (e, a) => panic!(
                "golden mismatch in {file} at line {line}:\n  expected: {}\n  actual:   {}\n\
                 (intentional change? re-bless and review the diff)",
                e.unwrap_or("<eof>"),
                a.unwrap_or("<eof>"),
            ),
        }
    }
}

#[test]
fn golden_traces_match() {
    for &(name, seed) in GOLDENS {
        let (trace, _) = scenarios::run_traced(name, seed, RecorderConfig::full())
            .unwrap_or_else(|| panic!("unknown scenario {name}"));
        assert!(!trace.is_empty(), "{name} recorded nothing");
        check_golden(&format!("{name}_{seed}.trace"), &trace.render_text());
    }
}

#[test]
fn golden_chrome_export_matches() {
    let (trace, _) = scenarios::run_traced("tiny", 1, RecorderConfig::full()).unwrap();
    check_golden("tiny_1.chrome.json", &trace.to_chrome_json());
}

/// Counter-track goldens: the name-resolved rendering of the frames in
/// two representative traces — `tiny` (single job, no templates) and
/// `repeat_shapes` (template cache on, so the template series are live).
#[test]
fn golden_counter_tracks_match() {
    for &(name, seed) in &[("tiny", 1u64), ("repeat_shapes", 7u64)] {
        let (trace, _) = scenarios::run_traced(name, seed, RecorderConfig::full()).unwrap();
        let counters = trace.render_counters_text();
        assert!(!counters.is_empty(), "{name} trace carries no frames");
        check_golden(&format!("{name}_{seed}.counters"), &counters);
    }
}

/// The goldens directory contains exactly the files this suite pins —
/// a renamed scenario cannot leave a stale golden behind unnoticed.
#[test]
fn goldens_dir_has_no_strays() {
    if blessing() {
        return; // the bless run may be creating the directory right now
    }
    let mut expected: Vec<String> = GOLDENS
        .iter()
        .map(|(n, s)| format!("{n}_{s}.trace"))
        .collect();
    expected.push("tiny_1.chrome.json".to_string());
    expected.push("tiny_1.counters".to_string());
    expected.push("repeat_shapes_7.counters".to_string());
    expected.sort();
    let mut present: Vec<String> = fs::read_dir(goldens_dir())
        .expect("goldens dir exists")
        .map(|e| {
            e.expect("readable entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    present.sort();
    assert_eq!(
        present, expected,
        "stale or missing files under tests/goldens/"
    );
}
