//! Trace ↔ report cross-checks: the metrics registry derived from the
//! event stream must agree **exactly** (not approximately) with the
//! simulator's own end-of-run `RunReport`, because both replay the same
//! integer-microsecond accounting rules.
//!
//! Coverage per the issue: three seeds × two cluster sizes over a mixed
//! workload (trace-derived chains plus a terasort), plus every registry
//! scenario — including the fault-injection one — at a fixed seed.

use std::sync::Arc;

use swift_cluster::{Cluster, CostModel};
use swift_scheduler::{JobSpec, RunReport, SimConfig, Simulation};
use swift_trace::{scenarios, RecorderConfig, Trace, TraceRecorder};
use swift_workload::{generate_trace, terasort_dag, TraceConfig};

const SEEDS: [u64; 3] = [1, 42, 9001];
const CLUSTERS: [(u32, u32); 2] = [(4, 2), (10, 4)];

/// Mixed workload on an explicit cluster size, run under the recorder.
fn run_mixed(machines: u32, executors_per_machine: u32, seed: u64) -> (Trace, RunReport) {
    let mut workload: Vec<JobSpec> = generate_trace(&TraceConfig {
        jobs: 2,
        seed,
        ..TraceConfig::default()
    })
    .into_iter()
    .map(|j| JobSpec {
        dag: j.dag,
        submit_at: j.submit_at,
    })
    .collect();
    workload.push(JobSpec {
        dag: Arc::new(terasort_dag(workload.len() as u64, 3, 3, 4 << 20)),
        submit_at: swift_sim::SimTime::ZERO,
    });

    let cluster = Cluster::new(machines, executors_per_machine, CostModel::default());
    let mut sim = Simulation::new(cluster, SimConfig::swift(), workload);
    let (recorder, handle) = TraceRecorder::new("crosscheck", seed, RecorderConfig::full());
    sim.set_observer(Box::new(recorder));
    let report = sim.run();
    (handle.finish(), report)
}

/// Asserts every cross-checkable quantity in one place.
fn assert_trace_matches_report(label: &str, trace: &Trace, report: &RunReport) {
    let m = trace.metrics(scenarios::schedule_overhead());

    assert_eq!(m.makespan, report.makespan, "{label}: makespan");
    assert_eq!(
        m.sim_events, report.events_processed,
        "{label}: event count"
    );
    assert_eq!(
        m.run_idle_ratio(),
        report.idle_ratio(),
        "{label}: run idle ratio"
    );

    assert_eq!(
        m.job_idle.len(),
        report.jobs.len(),
        "{label}: job account count"
    );
    for j in &report.jobs {
        let acct = m
            .job_idle
            .get(&(j.job_index as u32))
            .unwrap_or_else(|| panic!("{label}: job {} missing from trace metrics", j.job_index));
        assert_eq!(
            acct.idle_micros,
            j.idle_time.as_micros(),
            "{label}: job {} idle time",
            j.job_index
        );
        assert_eq!(
            acct.occupied_micros,
            j.occupied_time.as_micros(),
            "{label}: job {} occupied time",
            j.job_index
        );
        assert_eq!(
            acct.idle_ratio(),
            j.idle_ratio(),
            "{label}: job {} idle ratio",
            j.job_index
        );
        assert_eq!(
            m.aborted_jobs.contains(&(j.job_index as u32)),
            j.aborted,
            "{label}: job {} aborted flag",
            j.job_index
        );
        if j.aborted {
            continue; // a stage of an aborted job may never complete a task
        }
        for s in &j.stages {
            let key = (j.job_index as u32, s.stage.index() as u32);
            let total = m.stage_phase_total.get(&key).unwrap_or_else(|| {
                panic!(
                    "{label}: job {} stage {} missing phase total",
                    j.job_index, s.name
                )
            });
            assert_eq!(
                *total,
                s.phases.total(),
                "{label}: job {} stage {} PhaseBreakdown::total",
                j.job_index,
                s.name
            );
        }
    }

    // Counter-track telescoping: when the trace carries frames, the
    // per-window counter deltas must sum to the end-of-run cumulative
    // values — integer-exact against both the report and the event
    // stream itself — and drained-at-quiescence gauges must end at zero.
    if m.counter_frames > 0 {
        let total = |name: &str| m.counter_totals.get(name).copied().unwrap_or(0);
        let last = |name: &str| m.counter_final.get(name).copied().unwrap_or(0);
        let kind_count =
            |want: &str| trace.events.iter().filter(|e| e.name() == want).count() as u64;
        assert_eq!(
            total("sim.events"),
            report.events_processed,
            "{label}: sim.events frame totals vs RunReport"
        );
        assert_eq!(
            total("sched.tasks_started"),
            kind_count("task_started"),
            "{label}: sched.tasks_started frame totals vs event stream"
        );
        assert_eq!(
            total("sched.tasks_finished"),
            kind_count("task_finished"),
            "{label}: sched.tasks_finished frame totals vs event stream"
        );
        assert_eq!(
            total("shuffle.spill_bytes"),
            m.spill_bytes,
            "{label}: shuffle.spill_bytes frame totals"
        );
        assert_eq!(
            total("shuffle.evict_bytes"),
            m.evict_bytes,
            "{label}: shuffle.evict_bytes frame totals"
        );
        assert_eq!(
            total("sched.template_hits"),
            m.template_hits,
            "{label}: sched.template_hits frame totals"
        );
        assert_eq!(
            total("sched.template_misses"),
            m.template_misses,
            "{label}: sched.template_misses frame totals"
        );
        assert_eq!(
            last("sim.event_queue_depth"),
            0,
            "{label}: event queue not drained at the sealing frame"
        );
        assert_eq!(
            last("cluster.gang_waits_open"),
            0,
            "{label}: gang waits open at the sealing frame"
        );
    }
}

#[test]
fn mixed_workload_metrics_match_report() {
    for &(machines, epm) in &CLUSTERS {
        for &seed in &SEEDS {
            let (trace, report) = run_mixed(machines, epm, seed);
            let label = format!("mixed {machines}x{epm} seed {seed}");
            assert_trace_matches_report(&label, &trace, &report);
        }
    }
}

#[test]
fn registry_scenario_metrics_match_report() {
    for name in scenarios::names() {
        let (trace, report) = scenarios::run_traced(name, 7, RecorderConfig::full()).unwrap();
        assert_trace_matches_report(&format!("scenario {name}"), &trace, &report);
    }
}

/// The recorder must not perturb the run: the report of a traced run is
/// byte-identical (Debug rendering) to the report of an untraced run of
/// the same scenario and seed.
#[test]
fn tracing_does_not_change_the_run() {
    for name in scenarios::names() {
        for seed in [3u64, 17] {
            let traced = scenarios::run_traced(name, seed, RecorderConfig::full())
                .unwrap()
                .1;
            let untraced = scenarios::build(name, seed).unwrap().run();
            assert_eq!(
                format!("{traced:?}"),
                format!("{untraced:?}"),
                "observer perturbed the run: {name} seed {seed}"
            );
        }
    }
}
