//! The `trace` CLI, fronted by `swift-sql-shell trace ...`.
//!
//! ```text
//! trace <scenario> [--seed N] [--out FILE] [--chrome FILE] [--metrics]
//!                  [--counters] [--lean] [--stream] [--shards K]
//! trace diff A B
//! trace --list
//! ```
//!
//! By default the full text trace is printed to stdout (the exact bytes
//! the golden suite pins). `--out` redirects it to a file, `--chrome`
//! additionally writes the Chrome Trace Event Format JSON, `--metrics`
//! prints the derived metrics summary instead of the raw stream,
//! `--counters` prints the counter tracks only, and `--lean` records the
//! control-plane stream only (no input reads, no Cache Worker shadow
//! model, no counter frames).
//!
//! `--stream` replaces the in-memory recording with a [`crate::StreamSink`]
//! writing directly to `--out`: events are rendered and flushed in chunks
//! as the run progresses, so peak memory is bounded by the chunk size
//! regardless of run length — the file is byte-identical to the buffered
//! path.
//!
//! `--shards K` runs the scenario on the sharded simulator core with K
//! lanes (0 = the legacy single-queue core). Sharding is byte-invisible,
//! so the output is identical at any K — which is exactly what the CI
//! byte-compare smoke pins with `trace diff`.
//!
//! `trace diff A B` compares two rendered trace files structurally:
//! first divergent line, per-event-kind count deltas, per-series
//! counter-track deltas. Exit 0 when identical, 1 when they differ.

use crate::recorder::RecorderConfig;
use crate::sink::StreamSink;
use crate::{diff, scenarios};

const USAGE: &str = "usage: trace <scenario> [--seed N] [--out FILE] [--chrome FILE] \
                     [--metrics] [--counters] [--lean] [--stream] [--shards K]\n       \
                     trace diff A B\n       trace --list";

fn run_diff(args: &[String]) -> i32 {
    let [a, b] = args else {
        eprintln!("trace: diff takes exactly two files\n{USAGE}");
        return 2;
    };
    let read = |path: &String| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("trace: cannot read {path}: {e}");
            None
        }
    };
    let (Some(ta), Some(tb)) = (read(a), read(b)) else {
        return 2;
    };
    let report = diff::diff_texts(&ta, &tb);
    print!("{}", diff::render(&report, a, b));
    i32::from(!report.identical)
}

/// Runs the trace CLI over pre-split arguments (everything after the
/// `trace` word). Returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    if args.first().map(String::as_str) == Some("diff") {
        return run_diff(&args[1..]);
    }

    let mut scenario: Option<String> = None;
    let mut seed = 1u64;
    let mut out: Option<String> = None;
    let mut chrome: Option<String> = None;
    let mut metrics = false;
    let mut counters = false;
    let mut lean = false;
    let mut stream = false;
    let mut shards: Option<u32> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for s in &scenarios::SCENARIOS {
                    println!(
                        "{:<10} {:>2} machines x {}  {}",
                        s.name, s.machines, s.executors_per_machine, s.description
                    );
                }
                return 0;
            }
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("trace: --seed needs an integer\n{USAGE}");
                    return 2;
                }
            },
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("trace: --out needs a path\n{USAGE}");
                    return 2;
                }
            },
            "--chrome" => match it.next() {
                Some(v) => chrome = Some(v.clone()),
                None => {
                    eprintln!("trace: --chrome needs a path\n{USAGE}");
                    return 2;
                }
            },
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => shards = Some(v),
                None => {
                    eprintln!("trace: --shards needs an integer\n{USAGE}");
                    return 2;
                }
            },
            "--metrics" => metrics = true,
            "--counters" => counters = true,
            "--lean" => lean = true,
            "--stream" => stream = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("trace: unknown flag {flag:?}\n{USAGE}");
                return 2;
            }
            name => {
                if scenario.replace(name.to_string()).is_some() {
                    eprintln!("trace: exactly one scenario expected\n{USAGE}");
                    return 2;
                }
            }
        }
    }

    let Some(name) = scenario else {
        eprintln!("trace: no scenario given (try --list)\n{USAGE}");
        return 2;
    };
    let cfg = if lean {
        RecorderConfig::default()
    } else {
        RecorderConfig::full()
    };

    if stream {
        let Some(path) = &out else {
            eprintln!("trace: --stream needs --out FILE\n{USAGE}");
            return 2;
        };
        if chrome.is_some() || metrics || counters {
            eprintln!(
                "trace: --stream writes the text stream only (no --chrome/--metrics/--counters)\n\
                 {USAGE}"
            );
            return 2;
        }
        let sink = match StreamSink::create(path, &name, seed) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace: cannot create {path}: {e}");
                return 1;
            }
        };
        let run = match shards {
            Some(k) => scenarios::run_traced_sink_sharded(&name, seed, cfg, sink, k, false),
            None => scenarios::run_traced_sink(&name, seed, cfg, sink),
        };
        let Some((sink, _report)) = run else {
            eprintln!(
                "trace: unknown scenario {name:?}; known: {}",
                scenarios::names().join(", ")
            );
            return 2;
        };
        match sink.finish() {
            Ok(stats) => {
                eprintln!(
                    "trace: streamed {} events ({} bytes, peak buffer {} bytes) to {path}",
                    stats.events, stats.bytes_written, stats.peak_buffer_bytes
                );
                return 0;
            }
            Err(e) => {
                eprintln!("trace: stream to {path} failed: {e}");
                return 1;
            }
        }
    }

    let run = match shards {
        Some(k) => scenarios::run_traced_sharded(&name, seed, cfg, k, false),
        None => scenarios::run_traced(&name, seed, cfg),
    };
    let Some((trace, report)) = run else {
        eprintln!(
            "trace: unknown scenario {name:?}; known: {}",
            scenarios::names().join(", ")
        );
        return 2;
    };

    if let Some(path) = &chrome {
        if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
            eprintln!("trace: cannot write {path}: {e}");
            return 1;
        }
        eprintln!("trace: wrote chrome export to {path}");
    }

    let text = trace.render_text();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("trace: cannot write {path}: {e}");
                return 1;
            }
            eprintln!(
                "trace: wrote {} events ({} bytes) to {path}",
                trace.len(),
                text.len()
            );
        }
        None if !metrics && !counters => print!("{text}"),
        None => {}
    }

    if counters {
        print!("{}", trace.render_counters_text());
    }
    if metrics {
        let m = trace.metrics(scenarios::schedule_overhead());
        print!("{}", m.render_text());
        println!(
            "report makespan_us={} idle_ratio={:.6} (trace-derived values above must match)",
            report.makespan.as_micros(),
            report.idle_ratio()
        );
    }
    0
}
