//! The `trace` CLI, fronted by `swift-sql-shell trace ...`.
//!
//! ```text
//! trace <scenario> [--seed N] [--out FILE] [--chrome FILE] [--metrics] [--lean]
//! trace --list
//! ```
//!
//! By default the full text trace is printed to stdout (the exact bytes
//! the golden suite pins). `--out` redirects it to a file, `--chrome`
//! additionally writes the Chrome Trace Event Format JSON, `--metrics`
//! prints the derived metrics summary instead of the raw stream, and
//! `--lean` records the control-plane stream only (no input reads, no
//! Cache Worker shadow model).

use crate::recorder::RecorderConfig;
use crate::scenarios;

const USAGE: &str = "usage: trace <scenario> [--seed N] [--out FILE] [--chrome FILE] \
                     [--metrics] [--lean]\n       trace --list";

/// Runs the trace CLI over pre-split arguments (everything after the
/// `trace` word). Returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let mut scenario: Option<String> = None;
    let mut seed = 1u64;
    let mut out: Option<String> = None;
    let mut chrome: Option<String> = None;
    let mut metrics = false;
    let mut lean = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for s in &scenarios::SCENARIOS {
                    println!(
                        "{:<10} {:>2} machines x {}  {}",
                        s.name, s.machines, s.executors_per_machine, s.description
                    );
                }
                return 0;
            }
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("trace: --seed needs an integer\n{USAGE}");
                    return 2;
                }
            },
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => {
                    eprintln!("trace: --out needs a path\n{USAGE}");
                    return 2;
                }
            },
            "--chrome" => match it.next() {
                Some(v) => chrome = Some(v.clone()),
                None => {
                    eprintln!("trace: --chrome needs a path\n{USAGE}");
                    return 2;
                }
            },
            "--metrics" => metrics = true,
            "--lean" => lean = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("trace: unknown flag {flag:?}\n{USAGE}");
                return 2;
            }
            name => {
                if scenario.replace(name.to_string()).is_some() {
                    eprintln!("trace: exactly one scenario expected\n{USAGE}");
                    return 2;
                }
            }
        }
    }

    let Some(name) = scenario else {
        eprintln!("trace: no scenario given (try --list)\n{USAGE}");
        return 2;
    };
    let cfg = if lean {
        RecorderConfig::default()
    } else {
        RecorderConfig::full()
    };
    let Some((trace, report)) = scenarios::run_traced(&name, seed, cfg) else {
        eprintln!(
            "trace: unknown scenario {name:?}; known: {}",
            scenarios::names().join(", ")
        );
        return 2;
    };

    if let Some(path) = &chrome {
        if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
            eprintln!("trace: cannot write {path}: {e}");
            return 1;
        }
        eprintln!("trace: wrote chrome export to {path}");
    }

    let text = trace.render_text();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("trace: cannot write {path}: {e}");
                return 1;
            }
            eprintln!(
                "trace: wrote {} events ({} bytes) to {path}",
                trace.len(),
                text.len()
            );
        }
        None if !metrics => print!("{text}"),
        None => {}
    }

    if metrics {
        let m = trace.metrics(scenarios::schedule_overhead());
        print!("{}", m.render_text());
        println!(
            "report makespan_us={} idle_ratio={:.6} (trace-derived values above must match)",
            report.makespan.as_micros(),
            report.idle_ratio()
        );
    }
    0
}
