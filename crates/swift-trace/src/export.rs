//! Chrome `chrome://tracing` / Perfetto JSON export.
//!
//! The output is a JSON array of trace events in the Trace Event Format:
//! `B`/`E` duration pairs for job, gang-wait and task-attempt spans,
//! `i` instants for point events, `C` counter rows (one Perfetto counter
//! track per `swift-metrics` series, when the trace carries counter
//! frames), and `M` metadata records naming the rows. Load it via
//! `chrome://tracing` ("Load") or https://ui.perfetto.dev.
//!
//! Row layout: pid 0 is the cluster (machine health, cache activity);
//! each job `j` is pid `j + 1`, with tid 0 for the job-lifetime span,
//! tid `1000 + unit` for gang waits and tid `2000 + flat` for task
//! attempts (flat tids are allocated in first-use order, so the mapping
//! is deterministic).

use std::collections::BTreeMap;

use crate::event::{health_str, medium_str, TaskRef, TraceEvent, TraceEventKind};
use crate::Trace;

const CLUSTER_PID: u32 = 0;
const JOB_TID: u32 = 0;
const GANG_TID_BASE: u32 = 1_000;
const TASK_TID_BASE: u32 = 2_000;

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct ChromeWriter {
    records: Vec<String>,
    /// `(job, stage, index)` → row tid, allocated in first-use order.
    task_tids: BTreeMap<(u32, u32, u32), u32>,
    next_task_tid: u32,
    /// Open task-attempt spans per tid, closed at run end if left open.
    open_tasks: BTreeMap<(u32, u32), u64>,
    /// Open gang-wait spans `(pid, tid)` → open micros.
    open_gangs: BTreeMap<(u32, u32), u64>,
    /// Open job spans pid → open micros.
    open_jobs: BTreeMap<u32, u64>,
}

impl ChromeWriter {
    fn new() -> Self {
        ChromeWriter {
            records: Vec::new(),
            task_tids: BTreeMap::new(),
            next_task_tid: TASK_TID_BASE,
            open_tasks: BTreeMap::new(),
            open_gangs: BTreeMap::new(),
            open_jobs: BTreeMap::new(),
        }
    }

    fn meta(&mut self, pid: u32, tid: Option<u32>, what: &str, name: &str) {
        let tid_field = tid.map_or(String::new(), |t| format!("\"tid\":{t},"));
        self.records.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},{tid_field}\"name\":\"{what}\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    fn begin(&mut self, pid: u32, tid: u32, ts: u64, name: &str, args: &str) {
        self.records.push(format!(
            "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":\"{}\",\
             \"args\":{{{args}}}}}",
            esc(name)
        ));
    }

    fn end(&mut self, pid: u32, tid: u32, ts: u64) {
        self.records.push(format!(
            "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}"
        ));
    }

    fn instant(&mut self, pid: u32, tid: u32, ts: u64, name: &str, args: &str) {
        self.records.push(format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
             \"name\":\"{}\",\"args\":{{{args}}}}}",
            esc(name)
        ));
    }

    fn counter(&mut self, ts: u64, name: &str, value: u64) {
        self.records.push(format!(
            "{{\"ph\":\"C\",\"pid\":{CLUSTER_PID},\"tid\":0,\"ts\":{ts},\"name\":\"{}\",\
             \"args\":{{\"value\":{value}}}}}",
            esc(name)
        ));
    }

    fn task_tid(&mut self, job: u32, t: TaskRef) -> u32 {
        let key = (job, t.stage, t.index);
        if let Some(&tid) = self.task_tids.get(&key) {
            return tid;
        }
        let tid = self.next_task_tid;
        self.next_task_tid += 1;
        self.task_tids.insert(key, tid);
        self.meta(job + 1, Some(tid), "thread_name", &format!("task {t}"));
        tid
    }
}

/// Renders a trace as Chrome Trace Event Format JSON.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut w = ChromeWriter::new();
    w.meta(CLUSTER_PID, None, "process_name", "cluster");

    let mut last_ts = 0u64;
    for TraceEvent { at, kind } in &trace.events {
        let ts = at.as_micros();
        last_ts = last_ts.max(ts);
        match kind {
            TraceEventKind::JobSubmitted { job } => {
                let pid = job + 1;
                w.meta(pid, None, "process_name", &format!("job {job}"));
                w.meta(pid, Some(JOB_TID), "thread_name", "job");
                w.begin(pid, JOB_TID, ts, &format!("job {job}"), "");
                w.open_jobs.insert(pid, ts);
            }
            TraceEventKind::SchemeSelected {
                job,
                edge,
                scheme,
                medium,
                size,
                crossing,
                ..
            } => {
                w.instant(
                    job + 1,
                    JOB_TID,
                    ts,
                    &format!("scheme edge {edge}: {scheme}"),
                    &format!(
                        "\"size\":{size},\"medium\":\"{}\",\"crossing\":{crossing}",
                        medium_str(*medium)
                    ),
                );
            }
            TraceEventKind::TemplateMiss { job, signature } => {
                w.instant(
                    job + 1,
                    JOB_TID,
                    ts,
                    "template miss",
                    &format!("\"signature\":\"{signature:016x}\""),
                );
            }
            TraceEventKind::TemplateHit {
                job,
                signature,
                canonical,
            } => {
                w.instant(
                    job + 1,
                    JOB_TID,
                    ts,
                    "template hit",
                    &format!("\"signature\":\"{signature:016x}\",\"canonical\":{canonical}"),
                );
            }
            TraceEventKind::TemplateInstantiate { job, units, edges } => {
                w.instant(
                    job + 1,
                    JOB_TID,
                    ts,
                    "template instantiate",
                    &format!("\"units\":{units},\"edges\":{edges}"),
                );
            }
            TraceEventKind::GraphletState {
                job, unit, state, ..
            } => {
                w.instant(
                    job + 1,
                    GANG_TID_BASE + unit,
                    ts,
                    &format!("graphlet {unit} {}", state.as_str()),
                    "",
                );
            }
            TraceEventKind::GangWaitStarted { job, unit, tasks } => {
                let (pid, tid) = (job + 1, GANG_TID_BASE + unit);
                w.meta(pid, Some(tid), "thread_name", &format!("unit {unit}"));
                w.begin(
                    pid,
                    tid,
                    ts,
                    &format!("gang wait u{unit}"),
                    &format!("\"tasks\":{tasks}"),
                );
                w.open_gangs.insert((pid, tid), ts);
            }
            TraceEventKind::GangWaitEnded { job, unit, .. } => {
                let key = (job + 1, GANG_TID_BASE + unit);
                if w.open_gangs.remove(&key).is_some() {
                    w.end(key.0, key.1, ts);
                }
            }
            TraceEventKind::TaskStarted { job, task, epoch } => {
                let tid = w.task_tid(*job, *task);
                w.begin(
                    job + 1,
                    tid,
                    ts,
                    &format!("task {task} e{epoch}"),
                    &format!("\"epoch\":{epoch}"),
                );
                w.open_tasks.insert((job + 1, tid), ts);
            }
            TraceEventKind::TaskFinished { job, task, .. }
            | TraceEventKind::TaskInvalidated { job, task, .. } => {
                let tid = w.task_tid(*job, *task);
                // An invalidation only closes a span that is actually open
                // (a queued/assigned task has no running span).
                if w.open_tasks.remove(&(job + 1, tid)).is_some() {
                    w.end(job + 1, tid, ts);
                }
            }
            TraceEventKind::FailureDetected { job, task, kind } => {
                let tid = w.task_tid(*job, *task);
                w.instant(job + 1, tid, ts, &format!("failure detected: {kind}"), "");
            }
            TraceEventKind::RecoveryPlanned {
                job, case, rerun, ..
            } => {
                w.instant(
                    job + 1,
                    JOB_TID,
                    ts,
                    &format!("recovery planned: {case}"),
                    &format!("\"rerun\":{}", rerun.len()),
                );
            }
            TraceEventKind::JobRestarted { job } => {
                w.instant(job + 1, JOB_TID, ts, "job restarted", "");
            }
            TraceEventKind::JobCompleted { job, aborted } => {
                let pid = job + 1;
                if w.open_jobs.remove(&pid).is_some() {
                    w.end(pid, JOB_TID, ts);
                }
                if *aborted {
                    w.instant(pid, JOB_TID, ts, "job aborted", "");
                }
            }
            TraceEventKind::MachineHealthChanged { machine, from, to } => {
                w.instant(
                    CLUSTER_PID,
                    *machine,
                    ts,
                    &format!(
                        "machine {machine}: {} -> {}",
                        health_str(*from),
                        health_str(*to)
                    ),
                    "",
                );
            }
            TraceEventKind::CacheSpill {
                machine,
                bytes,
                segments,
            } => {
                w.instant(
                    CLUSTER_PID,
                    *machine,
                    ts,
                    &format!("cache spill m{machine}"),
                    &format!("\"bytes\":{bytes},\"segments\":{segments}"),
                );
            }
            TraceEventKind::CacheEvict { machine, bytes } => {
                w.instant(
                    CLUSTER_PID,
                    *machine,
                    ts,
                    &format!("cache evict m{machine}"),
                    &format!("\"bytes\":{bytes}"),
                );
            }
            TraceEventKind::CounterFrame { values, .. } => {
                // One Perfetto counter track per series, on the cluster
                // process row.
                for (id, v) in values {
                    if let Some(d) = swift_metrics::series_def(*id) {
                        w.counter(ts, d.name, *v);
                    }
                }
            }
            TraceEventKind::JobAdmitted {
                job,
                tenant,
                queue_depth,
            } => {
                w.instant(
                    job + 1,
                    JOB_TID,
                    ts,
                    &format!("admitted (tenant {tenant})"),
                    &format!("\"tenant\":{tenant},\"queue_depth\":{queue_depth}"),
                );
            }
            TraceEventKind::JobRejected {
                job,
                tenant,
                queue_depth,
                retry_after_ms,
            } => {
                // Rejected jobs never open a pid row; the rejection lands
                // on the cluster process like other service-level events.
                w.instant(
                    CLUSTER_PID,
                    JOB_TID,
                    ts,
                    &format!("rejected job {job} (tenant {tenant})"),
                    &format!(
                        "\"tenant\":{tenant},\"queue_depth\":{queue_depth},\
                         \"retry_after_ms\":{retry_after_ms}"
                    ),
                );
            }
            TraceEventKind::SessionWarmHit {
                job,
                tenant,
                session,
            } => {
                w.instant(
                    job + 1,
                    JOB_TID,
                    ts,
                    &format!("warm hit s{session}"),
                    &format!("\"tenant\":{tenant},\"session\":{session}"),
                );
            }
            TraceEventKind::SessionColdStart {
                job,
                tenant,
                session,
                executors,
            } => {
                w.instant(
                    job + 1,
                    JOB_TID,
                    ts,
                    &format!("cold start s{session}"),
                    &format!("\"tenant\":{tenant},\"session\":{session},\"executors\":{executors}"),
                );
            }
            TraceEventKind::SessionExpired {
                tenant,
                session,
                executors,
            } => {
                w.instant(
                    CLUSTER_PID,
                    JOB_TID,
                    ts,
                    &format!("session s{session} expired (tenant {tenant})"),
                    &format!("\"tenant\":{tenant},\"session\":{session},\"executors\":{executors}"),
                );
            }
            TraceEventKind::PlanDelivered { .. }
            | TraceEventKind::TaskAssigned { .. }
            | TraceEventKind::InputRead { .. }
            | TraceEventKind::RunFinished { .. } => {}
        }
    }

    // Close anything still open so the JSON is well-nested at run end.
    let open_tasks: Vec<(u32, u32)> = w.open_tasks.keys().copied().collect();
    for (pid, tid) in open_tasks {
        w.end(pid, tid, last_ts);
    }
    let open_gangs: Vec<(u32, u32)> = w.open_gangs.keys().copied().collect();
    for (pid, tid) in open_gangs {
        w.end(pid, tid, last_ts);
    }
    let open_jobs: Vec<u32> = w.open_jobs.keys().copied().collect();
    for pid in open_jobs {
        w.end(pid, JOB_TID, last_ts);
    }

    let mut out = String::from("[\n");
    out.push_str(&w.records.join(",\n"));
    out.push_str("\n]\n");
    out
}
