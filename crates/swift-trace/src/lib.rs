//! `swift-trace`: deterministic structured tracing for Swift runs.
//!
//! A [`TraceRecorder`] is a [`swift_scheduler::SimObserver`] that turns
//! the simulator's callback stream into a [`Trace`] — an ordered,
//! `SimTime`-stamped event list covering the whole control plane:
//! scheme decisions, graphlet state changes, gang waits, task attempt
//! lifecycles, failure detection and recovery plans, machine health and
//! Cache Worker spill/evict activity.
//!
//! Because the simulator is deterministic and the recorder adds no
//! clocks, randomness or address-dependent ordering of its own, the
//! trace for a given `(scenario, seed)` is **byte-identical across
//! runs** — which is what makes the golden-trace conformance suite and
//! the record-twice CI smoke check possible.
//!
//! Three consumers are built in:
//!
//! * [`Trace::render_text`] — a stable, line-oriented text format used
//!   for golden files and diffing;
//! * [`Trace::to_chrome_json`] — Chrome Trace Event Format JSON for
//!   `chrome://tracing` / Perfetto;
//! * [`Trace::metrics`] — a [`TraceMetrics`] registry (counters and
//!   fixed-bucket histograms) derived entirely from the event stream,
//!   cross-checkable against the simulator's own `RunReport`.
//!
//! ```
//! use swift_trace::scenarios;
//!
//! let (trace, report) = scenarios::run_traced("tiny", 1, Default::default()).unwrap();
//! assert_eq!(trace.check_spans(), Ok(()));
//! let metrics = trace.metrics(scenarios::schedule_overhead());
//! assert_eq!(metrics.run_idle_ratio(), report.idle_ratio());
//! ```

pub mod cli;
pub mod diff;
pub mod event;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod scenarios;
pub mod sink;

use std::collections::BTreeMap;

pub use cli::run_cli;
pub use diff::{diff_texts, DiffReport};
pub use event::{TaskRef, TraceEvent, TraceEventKind};
pub use metrics::{Histogram, IdleAccount, TraceMetrics, LATENCY_BUCKETS_US};
pub use recorder::{RecorderConfig, TraceHandle, TraceRecorder, DEFAULT_COUNTER_WINDOW_MS};
pub use sink::{MemorySink, StreamSink, StreamStats, TraceSink, DEFAULT_CHUNK_BYTES};

use swift_sim::SimDuration;

/// Version tag in the text header; bump when the line format changes
/// (goldens must be re-blessed). v2 moved the event count from the
/// header to a trailing `# events=N` footer so a streaming writer never
/// needs to seek, and added `counters` frame lines.
pub const TEXT_FORMAT_VERSION: u32 = 2;

/// A finished recording: the full event stream of one simulated run.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Scenario label (free-form; scenario registry name for goldens).
    pub scenario: String,
    /// The seed the run was generated from.
    pub seed: u64,
    /// The event stream, in simulation order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the stable line-oriented text format: a two-line header,
    /// one line per event, and a trailing `# events=N` footer (written
    /// last so a [`StreamSink`] produces identical bytes without ever
    /// seeking). This is the golden-file format; it is exact-diffed in
    /// tests, so any change must bump [`TEXT_FORMAT_VERSION`] and
    /// re-bless the goldens.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96 + self.events.len() * 48);
        let _ = write!(
            out,
            "# swift-trace v{TEXT_FORMAT_VERSION}\n# scenario={} seed={}\n",
            self.scenario, self.seed
        );
        for e in &self.events {
            e.render_line_into(&mut out);
            out.push('\n');
        }
        let _ = writeln!(out, "# events={}", self.events.len());
        out
    }

    /// Renders the counter tracks only: one `{micros} window=W {series} {value}`
    /// line per (frame, series), series names resolved through the
    /// [`swift_metrics::SERIES`] vocabulary. Empty when the trace was
    /// recorded without [`RecorderConfig::counter_window`]. Used for the
    /// counter-track goldens and `trace --counters`.
    pub fn render_counters_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            if let TraceEventKind::CounterFrame { window, values } = &e.kind {
                for (id, v) in values {
                    let name = swift_metrics::series_def(*id).map_or("unknown", |d| d.name);
                    let _ = writeln!(
                        out,
                        "{:>12} window={} {} {}",
                        e.at.as_micros(),
                        window,
                        name,
                        v
                    );
                }
            }
        }
        out
    }

    /// Renders Chrome Trace Event Format JSON (see [`export`]).
    pub fn to_chrome_json(&self) -> String {
        export::to_chrome_json(self)
    }

    /// Derives the metrics registry from the stream. `schedule_overhead`
    /// is the cost model's `swift_schedule_overhead` (needed to split
    /// plan-delivery latency into overhead + launch for the per-stage
    /// phase totals); pass [`SimDuration::ZERO`] if phase totals are not
    /// being cross-checked.
    pub fn metrics(&self, schedule_overhead: SimDuration) -> TraceMetrics {
        metrics::derive(self, schedule_overhead)
    }

    /// Checks span discipline over the whole stream:
    ///
    /// * every `task_finished` closes an open attempt with the **same
    ///   epoch**, and every `task_invalidated` that closes a running
    ///   attempt bumps its epoch by exactly one;
    /// * attempts of one task never overlap;
    /// * gang waits are well-nested per `(job, unit)` and all closed at
    ///   run end;
    /// * every job event falls inside its job span (`job_submitted` ..
    ///   `job_completed`), jobs complete exactly once, and all jobs are
    ///   completed at run end;
    /// * at run end the only open task attempts belong to **aborted**
    ///   jobs (an abort drops running work without individual
    ///   invalidation events).
    ///
    /// Returns the first violation as a human-readable message.
    pub fn check_spans(&self) -> Result<(), String> {
        #[derive(PartialEq)]
        enum JobSpan {
            Open,
            Closed { aborted: bool },
        }
        let mut jobs: BTreeMap<u32, JobSpan> = BTreeMap::new();
        // (job, stage, index) -> open epoch
        let mut open_tasks: BTreeMap<(u32, u32, u32), u32> = BTreeMap::new();
        let mut open_gangs: BTreeMap<(u32, u32), u32> = BTreeMap::new();

        let require_open =
            |jobs: &BTreeMap<u32, JobSpan>, job: u32, what: &str| match jobs.get(&job) {
                Some(JobSpan::Open) => Ok(()),
                Some(JobSpan::Closed { .. }) => {
                    Err(format!("{what} for job {job} after job_completed"))
                }
                None => Err(format!("{what} for job {job} before job_submitted")),
            };

        for e in &self.events {
            match &e.kind {
                TraceEventKind::JobSubmitted { job } => {
                    if jobs.insert(*job, JobSpan::Open).is_some() {
                        return Err(format!("job {job} submitted twice"));
                    }
                }
                TraceEventKind::JobCompleted { job, aborted } => {
                    require_open(&jobs, *job, "job_completed")?;
                    jobs.insert(*job, JobSpan::Closed { aborted: *aborted });
                    if *aborted {
                        // Abandoned attempts of an aborted job are dropped
                        // without invalidation events; forget them.
                        open_tasks.retain(|&(j, _, _), _| j != *job);
                    }
                }
                TraceEventKind::TaskStarted { job, task, epoch } => {
                    require_open(&jobs, *job, "task_started")?;
                    let key = (*job, task.stage, task.index);
                    if let Some(prev) = open_tasks.insert(key, *epoch) {
                        return Err(format!(
                            "job {job} task {task}: attempt e{epoch} started while e{prev} open"
                        ));
                    }
                }
                TraceEventKind::TaskFinished { job, task, epoch } => {
                    require_open(&jobs, *job, "task_finished")?;
                    match open_tasks.remove(&(*job, task.stage, task.index)) {
                        Some(open) if open == *epoch => {}
                        Some(open) => {
                            return Err(format!(
                                "job {job} task {task}: finished e{epoch} but e{open} was running"
                            ));
                        }
                        None => {
                            return Err(format!(
                                "job {job} task {task}: finished e{epoch} without a start"
                            ));
                        }
                    }
                }
                TraceEventKind::TaskInvalidated {
                    job,
                    task,
                    new_epoch,
                } => {
                    require_open(&jobs, *job, "task_invalidated")?;
                    // Only a *running* attempt has an open span; invalidating
                    // an assigned/finished task is span-neutral.
                    if let Some(open) = open_tasks.remove(&(*job, task.stage, task.index)) {
                        if open + 1 != *new_epoch {
                            return Err(format!(
                                "job {job} task {task}: invalidated e{open} -> e{new_epoch} \
                                 (expected +1)"
                            ));
                        }
                    }
                }
                TraceEventKind::GangWaitStarted { job, unit, .. } => {
                    require_open(&jobs, *job, "gang_wait_started")?;
                    if open_gangs.insert((*job, *unit), 0).is_some() {
                        return Err(format!("job {job} unit {unit}: overlapping gang waits"));
                    }
                }
                TraceEventKind::GangWaitEnded { job, unit, .. } => {
                    require_open(&jobs, *job, "gang_wait_ended")?;
                    if open_gangs.remove(&(*job, *unit)).is_none() {
                        return Err(format!(
                            "job {job} unit {unit}: gang wait ended without start"
                        ));
                    }
                }
                TraceEventKind::SchemeSelected { job, .. }
                | TraceEventKind::TemplateMiss { job, .. }
                | TraceEventKind::TemplateHit { job, .. }
                | TraceEventKind::TemplateInstantiate { job, .. }
                | TraceEventKind::GraphletState { job, .. }
                | TraceEventKind::TaskAssigned { job, .. }
                | TraceEventKind::PlanDelivered { job, .. }
                | TraceEventKind::InputRead { job, .. }
                | TraceEventKind::FailureDetected { job, .. }
                | TraceEventKind::RecoveryPlanned { job, .. }
                | TraceEventKind::JobRestarted { job }
                | TraceEventKind::JobAdmitted { job, .. }
                | TraceEventKind::SessionWarmHit { job, .. }
                | TraceEventKind::SessionColdStart { job, .. } => {
                    require_open(&jobs, *job, e.name())?;
                }
                // A rejected job never opens a span (no `job_submitted`),
                // and session expiry is a cluster-level event.
                TraceEventKind::JobRejected { .. }
                | TraceEventKind::SessionExpired { .. }
                | TraceEventKind::MachineHealthChanged { .. }
                | TraceEventKind::CacheSpill { .. }
                | TraceEventKind::CacheEvict { .. }
                | TraceEventKind::CounterFrame { .. }
                | TraceEventKind::RunFinished { .. } => {}
            }
        }

        if let Some((&(job, unit), _)) = open_gangs.iter().next() {
            return Err(format!("job {job} unit {unit}: gang wait open at run end"));
        }
        if let Some((&job, _)) = jobs.iter().find(|(_, s)| **s == JobSpan::Open) {
            return Err(format!("job {job} span open at run end"));
        }
        if let Some((&(job, stage, index), &epoch)) = open_tasks.iter().next() {
            return Err(format!(
                "job {job} task {stage}.{index}: attempt e{epoch} open at run end"
            ));
        }
        Ok(())
    }
}
