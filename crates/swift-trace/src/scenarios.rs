//! The golden-trace scenario registry.
//!
//! Each scenario is a small, fully deterministic `(cluster, workload,
//! faults)` triple parameterised only by a seed. They are deliberately
//! tiny (tens of tasks, not thousands) so the recorded traces stay
//! reviewable as checked-in golden files, while still covering the
//! interesting control-plane paths: adaptive scheme selection across
//! both size thresholds, barrier-heavy graphlet chains, wave execution
//! (gang larger than the cluster), fault injection + fine-grained
//! recovery, and a multi-job trace-derived mix.

use std::sync::Arc;

use swift_cluster::{Cluster, CostModel};
use swift_dag::{permuted_clone, DagBuilder, JobDag, Operator, StageId, StageProfile};
use swift_ft::FailureKind;
use swift_scheduler::{FailureAt, FailureInjection, JobSpec, RunReport, SimConfig, Simulation};
use swift_sim::{SimDuration, SimTime};
use swift_workload::{generate_trace, terasort_dag, TraceConfig};

use crate::recorder::{RecorderConfig, TraceRecorder};
use crate::sink::TraceSink;
use crate::Trace;

/// A registered scenario.
#[derive(Debug)]
pub struct Scenario {
    /// Registry name (also the golden-file stem).
    pub name: &'static str,
    /// One-line description for `swift-cli trace --list`.
    pub description: &'static str,
    /// Machines in the cluster.
    pub machines: u32,
    /// Executors per machine.
    pub executors_per_machine: u32,
    /// Whether the scenario runs with the scheduling-template cache on
    /// (`SimConfig::templates`). The cache is a pure cost optimization, so
    /// this only changes which template events appear in the trace.
    pub templates: bool,
    build: fn(u64) -> (Vec<JobSpec>, Vec<FailureInjection>),
}

fn profile(input: u64, output: u64, process_us: u64) -> StageProfile {
    StageProfile {
        input_rows_per_task: input / 100,
        input_bytes_per_task: input,
        output_bytes_per_task: output,
        process_us_per_task: process_us,
        locality: vec![],
    }
}

/// Diamond DAG: scan fans out to two middle stages that join back.
/// All edges pipeline inside one graphlet except the sort-implying join.
/// Stage runtimes are in the hundreds of milliseconds so a mid-run fault
/// plus its 1 s process-restart detection delay still fit inside the run
/// (see the `fault` scenario).
fn diamond_dag(seed: u64) -> JobDag {
    let mut b = DagBuilder::new(0, "diamond");
    let scan = b
        .stage("scan", 3)
        .op(Operator::TableScan { table: "t".into() })
        .op(Operator::ShuffleWrite)
        .profile(profile(2 << 20, 1 << 20, 400_000 + (seed % 7) * 10_000))
        .build();
    let left = b
        .stage("left", 2)
        .op(Operator::ShuffleRead)
        .op(Operator::Filter)
        .op(Operator::ShuffleWrite)
        .profile(profile(1 << 20, 512 << 10, 300_000))
        .build();
    let right = b
        .stage("right", 2)
        .op(Operator::ShuffleRead)
        .op(Operator::Project)
        .op(Operator::ShuffleWrite)
        .profile(profile(1 << 20, 256 << 10, 250_000))
        .build();
    let join = b
        .stage("join", 2)
        .op(Operator::ShuffleRead)
        .op(Operator::MergeJoin)
        .op(Operator::AdhocSink)
        .profile(profile(768 << 10, 0, 600_000))
        .build();
    b.edge(scan, left)
        .edge(scan, right)
        .edge(left, join)
        .edge(right, join);
    b.build().expect("diamond DAG is valid")
}

/// Barrier-heavy chain: every edge implies a sort, so each stage is its
/// own graphlet and every edge crosses a unit boundary — which forces
/// the adaptive policy's Direct→Remote upgrade for memory-staged
/// crossing edges and drives the Cache Worker shadow model on each hop.
fn barrier_dag(seed: u64) -> JobDag {
    let mut b = DagBuilder::new(0, "barrier-chain");
    let outs: [u64; 3] = [2_000, 20_000, 60_000];
    let mut prev = None;
    for (i, &out) in outs.iter().enumerate() {
        let id = b
            .stage(format!("B{i}"), 2 + i as u32)
            .op(if i == 0 {
                Operator::TableScan { table: "t".into() }
            } else {
                Operator::ShuffleRead
            })
            .op(Operator::MergeSort)
            .op(Operator::ShuffleWrite)
            .profile(profile(64 << 10, out, 20_000 + (seed % 5) * 500))
            .build();
        if let Some(p) = prev {
            b.edge(p, id);
        }
        prev = Some(id);
    }
    let sink = b
        .stage("sink", 2)
        .op(Operator::ShuffleRead)
        .op(Operator::StreamedAggregate)
        .op(Operator::AdhocSink)
        .profile(profile(64 << 10, 0, 15_000))
        .build();
    b.edge(prev.expect("chain is non-empty"), sink);
    b.build().expect("barrier DAG is valid")
}

fn single(dag: JobDag) -> Vec<JobSpec> {
    vec![JobSpec {
        dag: Arc::new(dag),
        submit_at: SimTime::ZERO,
    }]
}

/// The `repeat_shapes` workload: four staggered jobs of which the first
/// two introduce fresh shapes (template misses) and the last two repeat
/// the diamond — once as an identical rebuild (identity hit) and once
/// with the stages inserted in reverse order (canonical hit).
fn repeat_shapes_workload(seed: u64) -> Vec<JobSpec> {
    let diamond = diamond_dag(seed);
    let reversed: Vec<StageId> = (0..diamond.stage_count() as u32)
        .rev()
        .map(StageId)
        .collect();
    let permuted = permuted_clone(&diamond, &reversed, 3);
    [diamond_dag(seed), barrier_dag(seed), diamond, permuted]
        .into_iter()
        .enumerate()
        .map(|(i, dag)| JobSpec {
            dag: Arc::new(dag),
            submit_at: SimTime::ZERO + SimDuration::from_millis(50 * i as u64),
        })
        .collect()
}

/// The registry. Names are stable: golden files, CLI arguments and CI
/// steps all refer to them.
pub const SCENARIOS: [Scenario; 7] = [
    Scenario {
        name: "tiny",
        description: "2x2 terasort on 4 machines; smallest useful trace",
        machines: 4,
        executors_per_machine: 2,
        templates: false,
        build: |seed| {
            (
                single(terasort_dag(0, 2, 2, (1 << 20) | (seed % 1024))),
                vec![],
            )
        },
    },
    Scenario {
        name: "diamond",
        description: "fan-out/fan-in diamond with a sort-merge join barrier",
        machines: 4,
        executors_per_machine: 2,
        templates: false,
        build: |seed| (single(diamond_dag(seed)), vec![]),
    },
    Scenario {
        name: "barrier",
        description: "all-barrier chain straddling both adaptive scheme thresholds",
        machines: 3,
        executors_per_machine: 2,
        templates: false,
        build: |seed| (single(barrier_dag(seed)), vec![]),
    },
    Scenario {
        name: "wave",
        description: "gang larger than the cluster; exercises wave execution",
        machines: 2,
        executors_per_machine: 2,
        templates: false,
        build: |seed| {
            (
                single(terasort_dag(0, 6, 6, (2 << 20) | (seed % 4096))),
                vec![],
            )
        },
    },
    Scenario {
        name: "fault",
        description: "diamond DAG with a mid-run process restart and fine-grained recovery",
        machines: 4,
        executors_per_machine: 2,
        templates: false,
        build: |seed| {
            // Lands while the `left` stage is running (it executes from
            // roughly 610 ms to 920 ms across the seed range); the 1 s
            // restart-detection delay then fires while the join is still
            // blocked on the lost task, so the trace shows the full
            // invalidate → detect → replan → rerun sequence.
            let injections = vec![FailureInjection {
                job_index: 0,
                stage: "left".to_string(),
                task_index: (seed % 2) as u32,
                at: FailureAt::AfterSubmit(SimDuration::from_millis(700 + seed % 40)),
                kind: FailureKind::ProcessRestart,
            }];
            (single(diamond_dag(seed)), injections)
        },
    },
    Scenario {
        name: "multijob",
        description: "three trace-derived jobs with staggered submissions",
        machines: 6,
        executors_per_machine: 3,
        templates: false,
        build: |seed| {
            let cfg = TraceConfig {
                jobs: 3,
                seed: seed ^ 0x5EED_7ACE,
                ..TraceConfig::default()
            };
            let workload = generate_trace(&cfg)
                .into_iter()
                .map(|j| JobSpec {
                    dag: j.dag,
                    submit_at: j.submit_at,
                })
                .collect();
            (workload, vec![])
        },
    },
    Scenario {
        name: "repeat_shapes",
        description: "repeated DAG shapes with the template cache on: miss, miss, identity hit, canonical hit",
        machines: 6,
        executors_per_machine: 3,
        templates: true,
        build: |seed| (repeat_shapes_workload(seed), vec![]),
    },
];

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// All registry names, in registry order.
pub fn names() -> Vec<&'static str> {
    SCENARIOS.iter().map(|s| s.name).collect()
}

/// The `swift_schedule_overhead` of the cost model every scenario runs
/// under — the value to pass to [`Trace::metrics`] when cross-checking
/// per-stage phase totals.
pub fn schedule_overhead() -> SimDuration {
    CostModel::default().swift_schedule_overhead
}

/// Builds the simulation for `(name, seed)` without an observer
/// installed, using the scenario's own template-cache setting. Returns
/// `None` for an unknown name.
pub fn build(name: &str, seed: u64) -> Option<Simulation> {
    let sc = find(name)?;
    build_with(name, seed, sc.templates)
}

/// Like [`build`], but with the template cache explicitly on or off —
/// the entry point of the cache-differential suite, which runs the same
/// scenario both ways and compares the results byte for byte.
pub fn build_with(name: &str, seed: u64, templates: bool) -> Option<Simulation> {
    let sc = find(name)?;
    let (workload, injections) = (sc.build)(seed);
    let cluster = Cluster::new(sc.machines, sc.executors_per_machine, CostModel::default());
    let cfg = SimConfig {
        templates,
        ..SimConfig::swift()
    };
    let mut sim = Simulation::new(cluster, cfg, workload);
    sim.inject_failures(injections);
    Some(sim)
}

/// Like [`build`], but running on the sharded event core with `shards`
/// lanes (0 = the legacy single-queue core) and optionally the scoped
/// worker-thread refill shim — the entry point of the shard-equivalence
/// suite, which runs the same scenario at several K and compares reports,
/// traces and counter frames byte for byte.
pub fn build_sharded(name: &str, seed: u64, shards: u32, threads: bool) -> Option<Simulation> {
    build_sharded_with_window(name, seed, shards, threads, None)
}

/// Like [`build_sharded`], with an explicit barrier window (`None` keeps
/// the [`SimConfig::swift`] default). The window is a pure performance
/// knob; the equivalence suite runs both extremes to prove it.
pub fn build_sharded_with_window(
    name: &str,
    seed: u64,
    shards: u32,
    threads: bool,
    window: Option<SimDuration>,
) -> Option<Simulation> {
    let sc = find(name)?;
    let (workload, injections) = (sc.build)(seed);
    let cluster = Cluster::new(sc.machines, sc.executors_per_machine, CostModel::default());
    let base = SimConfig::swift();
    let cfg = SimConfig {
        templates: sc.templates,
        shards,
        shard_threads: threads,
        shard_window: window.unwrap_or(base.shard_window),
        ..base
    };
    let mut sim = Simulation::new(cluster, cfg, workload);
    sim.inject_failures(injections);
    Some(sim)
}

/// Like [`run_traced`], but on the sharded core via [`build_sharded`].
pub fn run_traced_sharded(
    name: &str,
    seed: u64,
    cfg: RecorderConfig,
    shards: u32,
    threads: bool,
) -> Option<(Trace, RunReport)> {
    let mut sim = build_sharded(name, seed, shards, threads)?;
    let (recorder, handle) = TraceRecorder::new(name, seed, cfg);
    sim.set_observer(Box::new(recorder));
    let report = sim.run();
    Some((handle.finish(), report))
}

/// Runs `(name, seed)` with a [`TraceRecorder`] attached and returns the
/// finished trace plus the simulator's own report, using the scenario's
/// own template-cache setting. Returns `None` for an unknown name.
pub fn run_traced(name: &str, seed: u64, cfg: RecorderConfig) -> Option<(Trace, RunReport)> {
    let sc = find(name)?;
    run_traced_with(name, seed, cfg, sc.templates)
}

/// Like [`run_traced`], but with the template cache explicitly on or off.
pub fn run_traced_with(
    name: &str,
    seed: u64,
    cfg: RecorderConfig,
    templates: bool,
) -> Option<(Trace, RunReport)> {
    let mut sim = build_with(name, seed, templates)?;
    let (recorder, handle) = TraceRecorder::new(name, seed, cfg);
    sim.set_observer(Box::new(recorder));
    let report = sim.run();
    Some((handle.finish(), report))
}

/// Runs `(name, seed)` with the recorder delivering into an explicit
/// [`TraceSink`] (e.g. a [`crate::StreamSink`] for bounded-memory on-disk
/// recording), using the scenario's own template-cache setting. Returns
/// the sink (flushed of the coalescing buffer; call
/// [`crate::StreamSink::finish`] to write the footer) plus the report.
pub fn run_traced_sink<S: TraceSink + 'static>(
    name: &str,
    seed: u64,
    cfg: RecorderConfig,
    sink: S,
) -> Option<(S, RunReport)> {
    let sc = find(name)?;
    let mut sim = build_with(name, seed, sc.templates)?;
    let (recorder, handle) = TraceRecorder::with_sink(name, seed, cfg, sink);
    sim.set_observer(Box::new(recorder));
    let report = sim.run();
    Some((handle.into_sink(), report))
}

/// Like [`run_traced_sink`], but on the sharded core via [`build_sharded`]
/// — the `trace <scenario> --shards K --stream` path.
pub fn run_traced_sink_sharded<S: TraceSink + 'static>(
    name: &str,
    seed: u64,
    cfg: RecorderConfig,
    sink: S,
    shards: u32,
    threads: bool,
) -> Option<(S, RunReport)> {
    let mut sim = build_sharded(name, seed, shards, threads)?;
    let (recorder, handle) = TraceRecorder::with_sink(name, seed, cfg, sink);
    sim.set_observer(Box::new(recorder));
    let report = sim.run();
    Some((handle.into_sink(), report))
}
