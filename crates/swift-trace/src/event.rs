//! The trace event vocabulary and its stable line-oriented text format.
//!
//! Every event is stamped with the [`SimTime`] at which the simulator
//! emitted the corresponding observer callback, so a trace is a pure
//! function of the scenario seed: same seed, byte-identical trace. The
//! text rendering is the goldens format — one line per event,
//! `{micros:>12} {name} {key=value ...}` — chosen so diffs localize to
//! the first diverging event.

use swift_cluster::{MachineHealth, MachineId};
use swift_ft::{FailureKind, RecoveryCase};
use swift_scheduler::GraphletState;
use swift_shuffle::{ShuffleMedium, ShuffleScheme};
use swift_sim::SimTime;

/// Stable lowercase label for a machine-health state.
pub fn health_str(h: MachineHealth) -> &'static str {
    match h {
        MachineHealth::Healthy => "healthy",
        MachineHealth::ReadOnly => "read_only",
        MachineHealth::Failed => "failed",
    }
}

/// Stable lowercase label for a staging medium.
pub fn medium_str(m: ShuffleMedium) -> &'static str {
    match m {
        ShuffleMedium::Memory => "memory",
        ShuffleMedium::Disk => "disk",
    }
}

/// A `(stage, index)` task coordinate, rendered as `stage.index`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TaskRef {
    /// Stage index within the job DAG.
    pub stage: u32,
    /// Task index within the stage.
    pub index: u32,
}

impl std::fmt::Display for TaskRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.stage, self.index)
    }
}

/// What happened, without the timestamp (see [`TraceEvent`]).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEventKind {
    /// A job's resource requests are about to be issued.
    JobSubmitted {
        /// Workload index.
        job: u32,
    },
    /// One shuffle-edge scheme decision (reported at submit, edge order).
    SchemeSelected {
        /// Workload index.
        job: u32,
        /// Edge index within the DAG.
        edge: u32,
        /// Producer stage.
        src: u32,
        /// Consumer stage.
        dst: u32,
        /// Shuffle edge size `M × N`.
        size: u64,
        /// Chosen scheme.
        scheme: ShuffleScheme,
        /// Staging medium.
        medium: ShuffleMedium,
        /// Whether the edge crosses a graphlet boundary.
        crossing: bool,
    },
    /// The scheduling-template cache had no template for the job's shape;
    /// the job was planned from scratch and registered.
    TemplateMiss {
        /// Workload index.
        job: u32,
        /// Canonical shape-signature digest.
        signature: u64,
    },
    /// The scheduling-template cache matched the job's shape.
    TemplateHit {
        /// Workload index.
        job: u32,
        /// Canonical shape-signature digest.
        signature: u64,
        /// Whether the match came through the canonical (insertion-order
        /// independent) form rather than the identity numbering.
        canonical: bool,
    },
    /// A cached template was instantiated for the job by parameter
    /// patching (follows a [`TraceEventKind::TemplateHit`]).
    TemplateInstantiate {
        /// Workload index.
        job: u32,
        /// Schedule units in the instantiated plan.
        units: u32,
        /// DAG edges covered by instantiated scheme priors.
        edges: u32,
    },
    /// A graphlet (schedule unit) changed lifecycle state.
    GraphletState {
        /// Workload index.
        job: u32,
        /// Unit index within the job's unit plan.
        unit: u32,
        /// The new state.
        state: GraphletState,
        /// The unit's stages (populated on submission only).
        stages: Vec<u32>,
    },
    /// A whole-unit gang request entered the ReqItem queue.
    GangWaitStarted {
        /// Workload index.
        job: u32,
        /// Unit index.
        unit: u32,
        /// Pending tasks in the gang.
        tasks: u32,
    },
    /// A unit's gang request left the queue.
    GangWaitEnded {
        /// Workload index.
        job: u32,
        /// Unit index.
        unit: u32,
        /// Executors assigned (`0` when the request dissolved).
        tasks: u32,
        /// Whether only a first wave started (oversized gang).
        wave: bool,
    },
    /// A task was bound to an executor.
    TaskAssigned {
        /// Workload index.
        job: u32,
        /// The task.
        task: TaskRef,
        /// Attempt epoch.
        epoch: u32,
        /// The executor.
        executor: u32,
    },
    /// A task's execution plan arrived at its executor.
    PlanDelivered {
        /// Workload index.
        job: u32,
        /// The task.
        task: TaskRef,
        /// Attempt epoch.
        epoch: u32,
    },
    /// A task instance began executing.
    TaskStarted {
        /// Workload index.
        job: u32,
        /// The task.
        task: TaskRef,
        /// Attempt epoch.
        epoch: u32,
    },
    /// A task instance finished.
    TaskFinished {
        /// Workload index.
        job: u32,
        /// The task.
        task: TaskRef,
        /// Attempt epoch.
        epoch: u32,
    },
    /// A task's current instance was superseded.
    TaskInvalidated {
        /// Workload index.
        job: u32,
        /// The task.
        task: TaskRef,
        /// The new (superseding) epoch.
        new_epoch: u32,
    },
    /// A starting consumer read one producer stage's outputs (the
    /// per-producer observer fan-out, coalesced per producer stage).
    InputRead {
        /// Workload index.
        job: u32,
        /// The consuming task.
        consumer: TaskRef,
        /// The producer stage read from.
        producer_stage: u32,
        /// Producer tasks read.
        producers: u32,
    },
    /// The Admin detected a failure (§IV-A detection delay elapsed).
    FailureDetected {
        /// Workload index.
        job: u32,
        /// The failed task.
        task: TaskRef,
        /// Failure classification.
        kind: FailureKind,
    },
    /// Fine-grained recovery produced a plan.
    RecoveryPlanned {
        /// Workload index.
        job: u32,
        /// The failed task.
        failed: TaskRef,
        /// §IV-B/§IV-C case.
        case: RecoveryCase,
        /// Whether the plan aborts the job.
        abort: bool,
        /// Tasks the plan re-launches.
        rerun: Vec<TaskRef>,
        /// Channel adjustments in the plan.
        updates: u32,
    },
    /// The whole job was restarted.
    JobRestarted {
        /// Workload index.
        job: u32,
    },
    /// The job reached a terminal state.
    JobCompleted {
        /// Workload index.
        job: u32,
        /// Whether it was aborted.
        aborted: bool,
    },
    /// A machine's health transitioned.
    MachineHealthChanged {
        /// The machine.
        machine: u32,
        /// Previous state.
        from: MachineHealth,
        /// New state.
        to: MachineHealth,
    },
    /// A Cache Worker spilled LRU segments to disk.
    CacheSpill {
        /// The machine.
        machine: u32,
        /// Bytes spilled.
        bytes: u64,
        /// Segments spilled.
        segments: u32,
    },
    /// A Cache Worker released staged segments.
    CacheEvict {
        /// The machine.
        machine: u32,
        /// Bytes released.
        bytes: u64,
    },
    /// A sealed telemetry window: every registered `swift-metrics` series'
    /// value — gauges at the sample instant, counters as per-window deltas.
    /// Emitted at counter-window boundaries when
    /// [`crate::RecorderConfig::counter_window`] is set.
    CounterFrame {
        /// Window index (sample time / window duration). Indices may skip
        /// empty windows; the final sealing frame may repeat the last one.
        window: u64,
        /// `(series id, value)` for every series, ID-ascending (see
        /// [`swift_metrics::SERIES`]).
        values: Vec<(u16, u64)>,
    },
    /// The event loop quiesced; always the final event.
    RunFinished {
        /// Events processed by the simulator loop.
        events: u64,
    },
    /// The service front door admitted a job into the bounded queue.
    JobAdmitted {
        /// Service job index (submission order).
        job: u32,
        /// Owning tenant.
        tenant: u32,
        /// Queue depth after admission.
        queue_depth: u32,
    },
    /// The service front door rejected a job (queue at its watermark).
    JobRejected {
        /// Service job index (submission order).
        job: u32,
        /// Owning tenant.
        tenant: u32,
        /// Queue depth at rejection (the watermark).
        queue_depth: u32,
        /// Suggested client back-off, milliseconds.
        retry_after_ms: u64,
    },
    /// A dispatch reused a warm executor-pool session (no cold
    /// registration).
    SessionWarmHit {
        /// Service job index.
        job: u32,
        /// Owning tenant.
        tenant: u32,
        /// Session id within the service run.
        session: u32,
    },
    /// A dispatch registered a fresh executor-pool session.
    SessionColdStart {
        /// Service job index.
        job: u32,
        /// Owning tenant.
        tenant: u32,
        /// Session id within the service run.
        session: u32,
        /// Executors allocated to the session.
        executors: u32,
    },
    /// An idle warm session expired and released its executors.
    SessionExpired {
        /// Owning tenant.
        tenant: u32,
        /// Session id within the service run.
        session: u32,
        /// Executors released.
        executors: u32,
    },
}

/// One timestamped trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the observer callback.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Padding for the right-aligned 12-column timestamp field.
const TS_PAD: &str = "            ";

/// Appends `v` in decimal without going through `fmt` machinery; the
/// streaming sink renders every event, so this is on the recording hot
/// path.
#[inline]
fn push_u64(out: &mut String, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Appends the timestamp right-aligned in a 12-character column (wider
/// values overflow the column rather than truncate).
#[inline]
fn push_ts(out: &mut String, micros: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = micros;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    let digits = buf.len() - i;
    if digits < 12 {
        out.push_str(&TS_PAD[..12 - digits]);
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

#[inline]
fn push_bool(out: &mut String, v: bool) {
    out.push_str(if v { "true" } else { "false" });
}

#[inline]
fn push_task(out: &mut String, t: &TaskRef) {
    push_u64(out, u64::from(t.stage));
    out.push('.');
    push_u64(out, u64::from(t.index));
}

impl TraceEvent {
    /// Stable event name (first word of the text line).
    pub fn name(&self) -> &'static str {
        match &self.kind {
            TraceEventKind::JobSubmitted { .. } => "job_submitted",
            TraceEventKind::SchemeSelected { .. } => "scheme_selected",
            TraceEventKind::TemplateMiss { .. } => "template_miss",
            TraceEventKind::TemplateHit { .. } => "template_hit",
            TraceEventKind::TemplateInstantiate { .. } => "template_instantiate",
            TraceEventKind::GraphletState { .. } => "graphlet_state",
            TraceEventKind::GangWaitStarted { .. } => "gang_wait_started",
            TraceEventKind::GangWaitEnded { .. } => "gang_wait_ended",
            TraceEventKind::TaskAssigned { .. } => "task_assigned",
            TraceEventKind::PlanDelivered { .. } => "plan_delivered",
            TraceEventKind::TaskStarted { .. } => "task_started",
            TraceEventKind::TaskFinished { .. } => "task_finished",
            TraceEventKind::TaskInvalidated { .. } => "task_invalidated",
            TraceEventKind::InputRead { .. } => "input_read",
            TraceEventKind::FailureDetected { .. } => "failure_detected",
            TraceEventKind::RecoveryPlanned { .. } => "recovery_planned",
            TraceEventKind::JobRestarted { .. } => "job_restarted",
            TraceEventKind::JobCompleted { .. } => "job_completed",
            TraceEventKind::MachineHealthChanged { .. } => "machine_health",
            TraceEventKind::CacheSpill { .. } => "cache_spill",
            TraceEventKind::CacheEvict { .. } => "cache_evict",
            TraceEventKind::CounterFrame { .. } => "counters",
            TraceEventKind::RunFinished { .. } => "run_finished",
            TraceEventKind::JobAdmitted { .. } => "job_admitted",
            TraceEventKind::JobRejected { .. } => "job_rejected",
            TraceEventKind::SessionWarmHit { .. } => "session_warm_hit",
            TraceEventKind::SessionColdStart { .. } => "session_cold_start",
            TraceEventKind::SessionExpired { .. } => "session_expired",
        }
    }

    /// Renders the event as one stable text line (no trailing newline).
    pub fn render_line(&self) -> String {
        let mut s = String::with_capacity(64);
        self.render_line_into(&mut s);
        s
    }

    /// Appends the stable text line (no trailing newline) to `s`. The
    /// streaming sink calls this once per event into a reused buffer, so
    /// the numeric fields are formatted without `fmt` machinery.
    pub fn render_line_into(&self, s: &mut String) {
        use std::fmt::Write as _;
        push_ts(s, self.at.as_micros());
        s.push(' ');
        s.push_str(self.name());
        match &self.kind {
            TraceEventKind::JobSubmitted { job } | TraceEventKind::JobRestarted { job } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
            }
            TraceEventKind::SchemeSelected {
                job,
                edge,
                src,
                dst,
                size,
                scheme,
                medium,
                crossing,
            } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" edge=");
                push_u64(s, u64::from(*edge));
                s.push_str(" src=");
                push_u64(s, u64::from(*src));
                s.push_str(" dst=");
                push_u64(s, u64::from(*dst));
                s.push_str(" size=");
                push_u64(s, *size);
                let _ = write!(s, " scheme={scheme}");
                s.push_str(" medium=");
                s.push_str(medium_str(*medium));
                s.push_str(" crossing=");
                push_bool(s, *crossing);
            }
            TraceEventKind::TemplateMiss { job, signature } => {
                let _ = write!(s, " job={job} signature={signature:016x}");
            }
            TraceEventKind::TemplateHit {
                job,
                signature,
                canonical,
            } => {
                let _ = write!(
                    s,
                    " job={job} signature={signature:016x} canonical={canonical}"
                );
            }
            TraceEventKind::TemplateInstantiate { job, units, edges } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" units=");
                push_u64(s, u64::from(*units));
                s.push_str(" edges=");
                push_u64(s, u64::from(*edges));
            }
            TraceEventKind::GraphletState {
                job,
                unit,
                state,
                stages,
            } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" unit=");
                push_u64(s, u64::from(*unit));
                s.push_str(" state=");
                s.push_str(state.as_str());
                if !stages.is_empty() {
                    s.push_str(" stages=");
                    for (i, stage) in stages.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        push_u64(s, u64::from(*stage));
                    }
                }
            }
            TraceEventKind::GangWaitStarted { job, unit, tasks } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" unit=");
                push_u64(s, u64::from(*unit));
                s.push_str(" tasks=");
                push_u64(s, u64::from(*tasks));
            }
            TraceEventKind::GangWaitEnded {
                job,
                unit,
                tasks,
                wave,
            } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" unit=");
                push_u64(s, u64::from(*unit));
                s.push_str(" tasks=");
                push_u64(s, u64::from(*tasks));
                s.push_str(" wave=");
                push_bool(s, *wave);
            }
            TraceEventKind::TaskAssigned {
                job,
                task,
                epoch,
                executor,
            } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" task=");
                push_task(s, task);
                s.push_str(" epoch=");
                push_u64(s, u64::from(*epoch));
                s.push_str(" exec=");
                push_u64(s, u64::from(*executor));
            }
            TraceEventKind::PlanDelivered { job, task, epoch }
            | TraceEventKind::TaskStarted { job, task, epoch }
            | TraceEventKind::TaskFinished { job, task, epoch } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" task=");
                push_task(s, task);
                s.push_str(" epoch=");
                push_u64(s, u64::from(*epoch));
            }
            TraceEventKind::TaskInvalidated {
                job,
                task,
                new_epoch,
            } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" task=");
                push_task(s, task);
                s.push_str(" new_epoch=");
                push_u64(s, u64::from(*new_epoch));
            }
            TraceEventKind::InputRead {
                job,
                consumer,
                producer_stage,
                producers,
            } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" consumer=");
                push_task(s, consumer);
                s.push_str(" producer_stage=");
                push_u64(s, u64::from(*producer_stage));
                s.push_str(" producers=");
                push_u64(s, u64::from(*producers));
            }
            TraceEventKind::FailureDetected { job, task, kind } => {
                let _ = write!(s, " job={job} task={task} kind={kind}");
            }
            TraceEventKind::RecoveryPlanned {
                job,
                failed,
                case,
                abort,
                rerun,
                updates,
            } => {
                let _ = write!(
                    s,
                    " job={job} failed={failed} case={case} abort={abort} updates={updates}"
                );
                if !rerun.is_empty() {
                    s.push_str(" rerun=");
                    for (i, t) in rerun.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        push_task(s, t);
                    }
                }
            }
            TraceEventKind::JobCompleted { job, aborted } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" aborted=");
                push_bool(s, *aborted);
            }
            TraceEventKind::MachineHealthChanged { machine, from, to } => {
                s.push_str(" machine=");
                push_u64(s, u64::from(*machine));
                s.push_str(" from=");
                s.push_str(health_str(*from));
                s.push_str(" to=");
                s.push_str(health_str(*to));
            }
            TraceEventKind::CacheSpill {
                machine,
                bytes,
                segments,
            } => {
                s.push_str(" machine=");
                push_u64(s, u64::from(*machine));
                s.push_str(" bytes=");
                push_u64(s, *bytes);
                s.push_str(" segments=");
                push_u64(s, u64::from(*segments));
            }
            TraceEventKind::CacheEvict { machine, bytes } => {
                s.push_str(" machine=");
                push_u64(s, u64::from(*machine));
                s.push_str(" bytes=");
                push_u64(s, *bytes);
            }
            TraceEventKind::CounterFrame { window, values } => {
                s.push_str(" window=");
                push_u64(s, *window);
                for (id, v) in values {
                    s.push_str(" s");
                    push_u64(s, u64::from(*id));
                    s.push('=');
                    push_u64(s, *v);
                }
            }
            TraceEventKind::RunFinished { events } => {
                s.push_str(" events=");
                push_u64(s, *events);
            }
            TraceEventKind::JobAdmitted {
                job,
                tenant,
                queue_depth,
            } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" tenant=");
                push_u64(s, u64::from(*tenant));
                s.push_str(" queue_depth=");
                push_u64(s, u64::from(*queue_depth));
            }
            TraceEventKind::JobRejected {
                job,
                tenant,
                queue_depth,
                retry_after_ms,
            } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" tenant=");
                push_u64(s, u64::from(*tenant));
                s.push_str(" queue_depth=");
                push_u64(s, u64::from(*queue_depth));
                s.push_str(" retry_after_ms=");
                push_u64(s, *retry_after_ms);
            }
            TraceEventKind::SessionWarmHit {
                job,
                tenant,
                session,
            } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" tenant=");
                push_u64(s, u64::from(*tenant));
                s.push_str(" session=");
                push_u64(s, u64::from(*session));
            }
            TraceEventKind::SessionColdStart {
                job,
                tenant,
                session,
                executors,
            } => {
                s.push_str(" job=");
                push_u64(s, u64::from(*job));
                s.push_str(" tenant=");
                push_u64(s, u64::from(*tenant));
                s.push_str(" session=");
                push_u64(s, u64::from(*session));
                s.push_str(" executors=");
                push_u64(s, u64::from(*executors));
            }
            TraceEventKind::SessionExpired {
                tenant,
                session,
                executors,
            } => {
                s.push_str(" tenant=");
                push_u64(s, u64::from(*tenant));
                s.push_str(" session=");
                push_u64(s, u64::from(*session));
                s.push_str(" executors=");
                push_u64(s, u64::from(*executors));
            }
        }
    }
}

/// Convenience constructor used by the recorder.
pub(crate) fn task_ref(t: swift_dag::TaskId) -> TaskRef {
    TaskRef {
        stage: t.stage.index() as u32,
        index: t.index,
    }
}

/// Re-exported for recorder internals that only have a [`MachineId`].
pub(crate) fn machine_u32(m: MachineId) -> u32 {
    m.0
}
