//! The [`TraceRecorder`]: a [`SimObserver`] that turns the simulator's
//! callback stream into a [`Trace`].
//!
//! The recorder follows the chaos-observer ownership pattern: the value
//! handed to [`swift_scheduler::Simulation::set_observer`] and the
//! [`TraceHandle`] the caller keeps share one `Rc<RefCell<...>>` cell, so
//! the trace survives `Simulation::run` consuming the observer box.

use std::cell::RefCell;
use std::rc::Rc;

use swift_cluster::{ExecutorId, MachineHealth, MachineId};
use swift_dag::{StageId, TaskId};
use swift_ft::{FailureKind, RecoveryPlan};
use swift_scheduler::{
    GraphletState, RecoveryContext, SchemeDecision, SimObserver, TemplateDecision, TemplateOutcome,
};
use swift_sim::SimTime;

use crate::event::{task_ref, TraceEvent, TraceEventKind};
use crate::Trace;

/// What the recorder asks the simulator to emit.
///
/// The default records the control-plane stream only; [`RecorderConfig::full`]
/// additionally enables the per-producer input-read fan-out and the Cache
/// Worker shadow model (spill/evict events). Both extras are purely
/// observational — they never change scheduling or the `RunReport`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Record the per-producer `on_input_read` fan-out (coalesced per
    /// producer stage). Costs O(predecessor tasks) per task start.
    pub input_reads: bool,
    /// Drive the Cache Worker shadow model: staged cross-graphlet segments
    /// are inserted into / consumed from each machine's cache accounting,
    /// generating `cache_spill` / `cache_evict` events.
    pub cache_model: bool,
    /// Record template-cache decisions (`template_hit` / `template_miss` /
    /// `template_instantiate`). On by default — the simulator only emits
    /// them when `SimConfig::templates` is on, so cache-off traces are
    /// unaffected. The cache-differential suite turns this off to compare
    /// cache-on and cache-off traces byte for byte.
    pub template_events: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            input_reads: false,
            cache_model: false,
            template_events: true,
        }
    }
}

impl RecorderConfig {
    /// Everything on: input reads, the cache shadow model and template
    /// events.
    pub fn full() -> Self {
        RecorderConfig {
            input_reads: true,
            cache_model: true,
            template_events: true,
        }
    }
}

#[derive(Debug)]
struct RecorderState {
    events: Vec<TraceEvent>,
}

impl Default for RecorderState {
    fn default() -> Self {
        // Recording sits on the simulator's allocation-free hot path;
        // pre-sizing skips the first rounds of growth-reallocation
        // memcpy, which dominate small-trace recording cost.
        RecorderState {
            events: Vec::with_capacity(1024),
        }
    }
}

impl RecorderState {
    #[inline]
    fn push(&mut self, at: SimTime, kind: TraceEventKind) {
        self.events.push(TraceEvent { at, kind });
    }
}

/// Shared handle to a recording in progress; survives the simulation
/// consuming the [`TraceRecorder`] box.
#[derive(Clone, Debug)]
pub struct TraceHandle {
    scenario: String,
    seed: u64,
    // Rc is !Send: the handle can never leave the thread (or shard) that
    // owns the recorder, so the interior mutability is shard-local.
    state: Rc<RefCell<RecorderState>>, // swift-analyze: allow(SW008) — Rc is !Send, shard-local by construction
}

impl TraceHandle {
    /// Takes the recorded events out, producing the finished [`Trace`].
    /// Call after `Simulation::run` returned.
    pub fn finish(self) -> Trace {
        let events = std::mem::take(&mut self.state.borrow_mut().events);
        Trace {
            scenario: self.scenario,
            seed: self.seed,
            events,
        }
    }

    /// Events recorded so far (for incremental inspection).
    pub fn event_count(&self) -> usize {
        self.state.borrow().events.len()
    }
}

/// The observer to install with [`swift_scheduler::Simulation::set_observer`].
#[derive(Debug)]
pub struct TraceRecorder {
    cfg: RecorderConfig,
    state: Rc<RefCell<RecorderState>>, // swift-analyze: allow(SW008) — Rc is !Send, shard-local by construction
}

impl TraceRecorder {
    /// Creates a recorder for one run of `scenario` at `seed`, returning
    /// the observer to install and the handle that outlives the run.
    pub fn new(scenario: &str, seed: u64, cfg: RecorderConfig) -> (TraceRecorder, TraceHandle) {
        let state = Rc::new(RefCell::new(RecorderState::default()));
        (
            TraceRecorder {
                cfg,
                state: Rc::clone(&state),
            },
            TraceHandle {
                scenario: scenario.to_string(),
                seed,
                state,
            },
        )
    }

    fn push(&mut self, at: SimTime, kind: TraceEventKind) {
        self.state.borrow_mut().push(at, kind);
    }
}

impl SimObserver for TraceRecorder {
    fn on_task_started(&mut self, now: SimTime, job: usize, task: TaskId, epoch: u32) {
        self.push(
            now,
            TraceEventKind::TaskStarted {
                job: job as u32,
                task: task_ref(task),
                epoch,
            },
        );
    }

    fn on_task_finished(&mut self, now: SimTime, job: usize, task: TaskId, epoch: u32) {
        self.push(
            now,
            TraceEventKind::TaskFinished {
                job: job as u32,
                task: task_ref(task),
                epoch,
            },
        );
    }

    fn on_task_invalidated(&mut self, now: SimTime, job: usize, task: TaskId, new_epoch: u32) {
        self.push(
            now,
            TraceEventKind::TaskInvalidated {
                job: job as u32,
                task: task_ref(task),
                new_epoch,
            },
        );
    }

    fn on_input_read(&mut self, now: SimTime, job: usize, producer: TaskId, consumer: TaskId) {
        // The fan-out arrives one producer task at a time, grouped by
        // producer stage within one callback batch; coalesce runs into one
        // event per (consumer, producer stage) to keep traces compact.
        let mut st = self.state.borrow_mut();
        let p_stage = producer.stage.index() as u32;
        let c = task_ref(consumer);
        if let Some(TraceEvent {
            at,
            kind:
                TraceEventKind::InputRead {
                    job: j,
                    consumer,
                    producer_stage,
                    producers,
                },
        }) = st.events.last_mut()
        {
            if *at == now && *j == job as u32 && *consumer == c && *producer_stage == p_stage {
                *producers += 1;
                return;
            }
        }
        st.push(
            now,
            TraceEventKind::InputRead {
                job: job as u32,
                consumer: c,
                producer_stage: p_stage,
                producers: 1,
            },
        );
    }

    fn on_recovery_planned(
        &mut self,
        now: SimTime,
        job: usize,
        ctx: &RecoveryContext<'_>,
        plan: &RecoveryPlan,
    ) {
        self.push(
            now,
            TraceEventKind::RecoveryPlanned {
                job: job as u32,
                failed: task_ref(ctx.failed),
                case: plan.case,
                abort: plan.abort_job,
                rerun: plan.rerun.iter().map(|&t| task_ref(t)).collect(),
                updates: plan.updates.len() as u32,
            },
        );
    }

    fn on_job_restarted(&mut self, now: SimTime, job: usize) {
        self.push(now, TraceEventKind::JobRestarted { job: job as u32 });
    }

    fn on_job_completed(&mut self, now: SimTime, job: usize, aborted: bool) {
        self.push(
            now,
            TraceEventKind::JobCompleted {
                job: job as u32,
                aborted,
            },
        );
    }

    fn on_job_submitted(&mut self, now: SimTime, job: usize) {
        self.push(now, TraceEventKind::JobSubmitted { job: job as u32 });
    }

    fn on_shuffle_scheme_selected(&mut self, now: SimTime, job: usize, d: &SchemeDecision) {
        self.push(
            now,
            TraceEventKind::SchemeSelected {
                job: job as u32,
                edge: d.edge,
                src: d.src.index() as u32,
                dst: d.dst.index() as u32,
                size: d.edge_size,
                scheme: d.scheme,
                medium: d.medium,
                crossing: d.crossing,
            },
        );
    }

    fn on_template_decision(&mut self, now: SimTime, job: usize, d: &TemplateDecision) {
        if !self.cfg.template_events {
            return;
        }
        match d.outcome {
            TemplateOutcome::Miss => self.push(
                now,
                TraceEventKind::TemplateMiss {
                    job: job as u32,
                    signature: d.signature,
                },
            ),
            TemplateOutcome::Hit { canonical } => {
                self.push(
                    now,
                    TraceEventKind::TemplateHit {
                        job: job as u32,
                        signature: d.signature,
                        canonical,
                    },
                );
                self.push(
                    now,
                    TraceEventKind::TemplateInstantiate {
                        job: job as u32,
                        units: d.units,
                        edges: d.edges,
                    },
                );
            }
        }
    }

    fn on_graphlet_state_changed(
        &mut self,
        now: SimTime,
        job: usize,
        unit: u32,
        state: GraphletState,
        stages: &[StageId],
    ) {
        self.push(
            now,
            TraceEventKind::GraphletState {
                job: job as u32,
                unit,
                state,
                stages: stages.iter().map(|s| s.index() as u32).collect(),
            },
        );
    }

    fn on_gang_wait_started(&mut self, now: SimTime, job: usize, unit: u32, tasks: usize) {
        self.push(
            now,
            TraceEventKind::GangWaitStarted {
                job: job as u32,
                unit,
                tasks: tasks as u32,
            },
        );
    }

    fn on_gang_wait_ended(
        &mut self,
        now: SimTime,
        job: usize,
        unit: u32,
        tasks: usize,
        wave: bool,
    ) {
        self.push(
            now,
            TraceEventKind::GangWaitEnded {
                job: job as u32,
                unit,
                tasks: tasks as u32,
                wave,
            },
        );
    }

    fn on_task_assigned(
        &mut self,
        now: SimTime,
        job: usize,
        task: TaskId,
        epoch: u32,
        executor: ExecutorId,
    ) {
        self.push(
            now,
            TraceEventKind::TaskAssigned {
                job: job as u32,
                task: task_ref(task),
                epoch,
                executor: executor.0,
            },
        );
    }

    fn on_plan_delivered(&mut self, now: SimTime, job: usize, task: TaskId, epoch: u32) {
        self.push(
            now,
            TraceEventKind::PlanDelivered {
                job: job as u32,
                task: task_ref(task),
                epoch,
            },
        );
    }

    fn on_failure_detected(&mut self, now: SimTime, job: usize, task: TaskId, kind: FailureKind) {
        self.push(
            now,
            TraceEventKind::FailureDetected {
                job: job as u32,
                task: task_ref(task),
                kind,
            },
        );
    }

    fn on_machine_health_changed(
        &mut self,
        now: SimTime,
        machine: MachineId,
        from: MachineHealth,
        to: MachineHealth,
    ) {
        self.push(
            now,
            TraceEventKind::MachineHealthChanged {
                machine: crate::event::machine_u32(machine),
                from,
                to,
            },
        );
    }

    fn on_cache_spill(&mut self, now: SimTime, machine: MachineId, bytes: u64, segments: usize) {
        self.push(
            now,
            TraceEventKind::CacheSpill {
                machine: crate::event::machine_u32(machine),
                bytes,
                segments: segments as u32,
            },
        );
    }

    fn on_cache_evict(&mut self, now: SimTime, machine: MachineId, bytes: u64) {
        self.push(
            now,
            TraceEventKind::CacheEvict {
                machine: crate::event::machine_u32(machine),
                bytes,
            },
        );
    }

    fn on_run_finished(&mut self, now: SimTime, events: u64) {
        self.push(now, TraceEventKind::RunFinished { events });
    }

    fn wants_input_reads(&self) -> bool {
        self.cfg.input_reads
    }

    fn wants_cache_model(&self) -> bool {
        self.cfg.cache_model
    }
}
