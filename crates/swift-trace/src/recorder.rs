//! The [`TraceRecorder`]: a [`SimObserver`] that turns the simulator's
//! callback stream into a [`Trace`] (or streams it straight to disk).
//!
//! The recorder follows the chaos-observer ownership pattern: the value
//! handed to [`swift_scheduler::Simulation::set_observer`] and the
//! [`TraceHandle`] the caller keeps share one `Rc<RefCell<...>>` cell, so
//! the trace survives `Simulation::run` consuming the observer box.
//!
//! The recorder is generic over its [`TraceSink`]: [`MemorySink`] (the
//! default) buffers the stream for [`TraceHandle::finish`]; a
//! [`crate::StreamSink`] renders and writes each event as it arrives with
//! bounded memory. The sink sees the identical event stream either way.
//!
//! When [`RecorderConfig::counter_window`] is set, the recorder also owns
//! a [`swift_metrics::Registry`]: observer callbacks feed the counter
//! series (tasks started/finished, spill/evict bytes, open gang waits),
//! the simulator's [`CounterSample`] callback feeds the gauges, and each
//! sample seals one [`TraceEventKind::CounterFrame`] into the stream.

use std::cell::RefCell;
use std::rc::Rc;

use swift_cluster::{ExecutorId, MachineHealth, MachineId};
use swift_dag::{StageId, TaskId};
use swift_ft::{FailureKind, RecoveryPlan};
use swift_metrics as sm;
use swift_scheduler::{
    CounterSample, GraphletState, RecoveryContext, SchemeDecision, SimObserver, TemplateDecision,
    TemplateOutcome,
};
use swift_sim::{SimDuration, SimTime};

use crate::event::{task_ref, TraceEvent, TraceEventKind};
use crate::sink::{MemorySink, TraceSink};
use crate::Trace;

/// Default counter-sampling window used by [`RecorderConfig::full`]:
/// 250 simulated milliseconds.
pub const DEFAULT_COUNTER_WINDOW_MS: u64 = 250;

/// What the recorder asks the simulator to emit.
///
/// The default records the control-plane stream only; [`RecorderConfig::full`]
/// additionally enables the per-producer input-read fan-out, the Cache
/// Worker shadow model (spill/evict events) and counter-track sampling.
/// All extras are purely observational — they never change scheduling or
/// the `RunReport`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Record the per-producer `on_input_read` fan-out (coalesced per
    /// producer stage). Costs O(predecessor tasks) per task start.
    pub input_reads: bool,
    /// Drive the Cache Worker shadow model: staged cross-graphlet segments
    /// are inserted into / consumed from each machine's cache accounting,
    /// generating `cache_spill` / `cache_evict` events.
    pub cache_model: bool,
    /// Record template-cache decisions (`template_hit` / `template_miss` /
    /// `template_instantiate`). On by default — the simulator only emits
    /// them when `SimConfig::templates` is on, so cache-off traces are
    /// unaffected. The cache-differential suite turns this off to compare
    /// cache-on and cache-off traces byte for byte. Also zeroes the
    /// template counter series, for the same reason.
    pub template_events: bool,
    /// Sample the `swift-metrics` registry into `counters` frames at this
    /// simulated-time window. `None` (the default) disables sampling
    /// entirely — lean traces and the perf paths carry no frames.
    pub counter_window: Option<SimDuration>,
    /// Extend counter frames with the shard-telemetry series
    /// (`sim.shard.*`: merged events, cross-shard messages, window
    /// barriers, barrier stalls). Off by default — and off in
    /// [`RecorderConfig::full`] — because the extra columns change frame
    /// shape, and default frames must stay byte-identical across shard
    /// counts (the legacy core reports these as zero).
    pub shard_series: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            input_reads: false,
            cache_model: false,
            template_events: true,
            counter_window: None,
            shard_series: false,
        }
    }
}

impl RecorderConfig {
    /// Everything on: input reads, the cache shadow model, template
    /// events and counter sampling at [`DEFAULT_COUNTER_WINDOW_MS`].
    /// Shard telemetry stays off — it widens frames, so it is a separate
    /// opt-in via [`RecorderConfig::shard_series`].
    pub fn full() -> Self {
        RecorderConfig {
            input_reads: true,
            cache_model: true,
            template_events: true,
            counter_window: Some(SimDuration::from_millis(DEFAULT_COUNTER_WINDOW_MS)),
            shard_series: false,
        }
    }
}

/// Live telemetry owned by the recorder while counter sampling is on.
#[derive(Debug)]
struct MetricsState {
    reg: sm::Registry,
    /// Gang waits currently open (started and not yet ended), feeding the
    /// `cluster.gang_waits_open` gauge.
    open_gangs: u64,
}

#[derive(Debug)]
struct RecorderState<S: TraceSink> {
    sink: S,
    /// An `input_read` run being coalesced (one-event lookback); flushed
    /// before any other event reaches the sink, so the sink still sees
    /// the exact stream order.
    pending_read: Option<TraceEvent>,
    metrics: Option<MetricsState>,
}

impl<S: TraceSink> RecorderState<S> {
    #[inline]
    fn push(&mut self, at: SimTime, kind: TraceEventKind) {
        if let Some(p) = self.pending_read.take() {
            self.sink.record(p);
        }
        self.sink.record(TraceEvent { at, kind });
    }

    fn flush_pending(&mut self) {
        if let Some(p) = self.pending_read.take() {
            self.sink.record(p);
        }
    }
}

/// Shared handle to a recording in progress; survives the simulation
/// consuming the [`TraceRecorder`] box.
#[derive(Debug)]
pub struct TraceHandle<S: TraceSink = MemorySink> {
    scenario: String,
    seed: u64,
    // Rc is !Send: the handle can never leave the thread (or shard) that
    // owns the recorder, so the interior mutability is shard-local.
    state: Rc<RefCell<RecorderState<S>>>, // swift-analyze: allow(SW008) — Rc is !Send, shard-local by construction
}

impl<S: TraceSink> Clone for TraceHandle<S> {
    fn clone(&self) -> Self {
        TraceHandle {
            scenario: self.scenario.clone(),
            seed: self.seed,
            state: Rc::clone(&self.state),
        }
    }
}

impl TraceHandle<MemorySink> {
    /// Takes the recorded events out, producing the finished [`Trace`].
    /// Call after `Simulation::run` returned.
    pub fn finish(self) -> Trace {
        let TraceHandle {
            scenario,
            seed,
            state,
        } = self;
        let events = {
            let mut st = state.borrow_mut();
            st.flush_pending();
            st.sink.take_events()
        };
        Trace {
            scenario,
            seed,
            events,
        }
    }
}

impl<S: TraceSink> TraceHandle<S> {
    /// Events recorded so far (for incremental inspection; includes an
    /// event still held in the coalescing buffer).
    pub fn event_count(&self) -> usize {
        let st = self.state.borrow();
        st.sink.events_recorded() as usize + usize::from(st.pending_read.is_some())
    }

    /// Recovers the sink after the run, flushing the coalescing buffer.
    /// For a [`crate::StreamSink`], chain with
    /// [`crate::StreamSink::finish`] to write the footer.
    ///
    /// # Panics
    ///
    /// If the recorder half is still alive — call only after
    /// `Simulation::run` returned (which drops the observer box).
    pub fn into_sink(self) -> S {
        match Rc::try_unwrap(self.state) {
            Ok(cell) => {
                let mut st = cell.into_inner();
                st.flush_pending();
                st.sink
            }
            Err(_) => {
                panic!("TraceHandle::into_sink while the recorder is installed; call after Simulation::run")
            }
        }
    }
}

/// The observer to install with [`swift_scheduler::Simulation::set_observer`].
#[derive(Debug)]
pub struct TraceRecorder<S: TraceSink = MemorySink> {
    cfg: RecorderConfig,
    state: Rc<RefCell<RecorderState<S>>>, // swift-analyze: allow(SW008) — Rc is !Send, shard-local by construction
}

impl TraceRecorder<MemorySink> {
    /// Creates a memory-buffering recorder for one run of `scenario` at
    /// `seed`, returning the observer to install and the handle that
    /// outlives the run.
    pub fn new(
        scenario: &str,
        seed: u64,
        cfg: RecorderConfig,
    ) -> (TraceRecorder<MemorySink>, TraceHandle<MemorySink>) {
        Self::with_sink(scenario, seed, cfg, MemorySink::default())
    }
}

impl<S: TraceSink> TraceRecorder<S> {
    /// Creates a recorder delivering into an explicit sink (e.g. a
    /// [`crate::StreamSink`] for bounded-memory on-disk recording).
    pub fn with_sink(
        scenario: &str,
        seed: u64,
        cfg: RecorderConfig,
        sink: S,
    ) -> (TraceRecorder<S>, TraceHandle<S>) {
        let state = Rc::new(RefCell::new(RecorderState {
            sink,
            pending_read: None,
            metrics: cfg.counter_window.map(|_| MetricsState {
                reg: if cfg.shard_series {
                    sm::Registry::with_shard_telemetry()
                } else {
                    sm::Registry::new()
                },
                open_gangs: 0,
            }),
        }));
        (
            TraceRecorder {
                cfg,
                state: Rc::clone(&state),
            },
            TraceHandle {
                scenario: scenario.to_string(),
                seed,
                state,
            },
        )
    }

    fn push(&mut self, at: SimTime, kind: TraceEventKind) {
        self.state.borrow_mut().push(at, kind);
    }
}

impl<S: TraceSink> SimObserver for TraceRecorder<S> {
    fn on_task_started(&mut self, now: SimTime, job: usize, task: TaskId, epoch: u32) {
        let mut st = self.state.borrow_mut();
        if let Some(m) = st.metrics.as_mut() {
            m.reg.add(sm::SCHED_TASKS_STARTED, 1);
        }
        st.push(
            now,
            TraceEventKind::TaskStarted {
                job: job as u32,
                task: task_ref(task),
                epoch,
            },
        );
    }

    fn on_task_finished(&mut self, now: SimTime, job: usize, task: TaskId, epoch: u32) {
        let mut st = self.state.borrow_mut();
        if let Some(m) = st.metrics.as_mut() {
            m.reg.add(sm::SCHED_TASKS_FINISHED, 1);
        }
        st.push(
            now,
            TraceEventKind::TaskFinished {
                job: job as u32,
                task: task_ref(task),
                epoch,
            },
        );
    }

    fn on_task_invalidated(&mut self, now: SimTime, job: usize, task: TaskId, new_epoch: u32) {
        self.push(
            now,
            TraceEventKind::TaskInvalidated {
                job: job as u32,
                task: task_ref(task),
                new_epoch,
            },
        );
    }

    fn on_input_read(&mut self, now: SimTime, job: usize, producer: TaskId, consumer: TaskId) {
        // The fan-out arrives one producer task at a time, grouped by
        // producer stage within one callback batch; coalesce runs into one
        // event per (consumer, producer stage) to keep traces compact. The
        // run in progress lives in `pending_read` (not the sink) so a
        // streaming sink never has to take an event back.
        let mut st = self.state.borrow_mut();
        let p_stage = producer.stage.index() as u32;
        let c = task_ref(consumer);
        if let Some(TraceEvent {
            at,
            kind:
                TraceEventKind::InputRead {
                    job: j,
                    consumer,
                    producer_stage,
                    producers,
                },
        }) = st.pending_read.as_mut()
        {
            if *at == now && *j == job as u32 && *consumer == c && *producer_stage == p_stage {
                *producers += 1;
                return;
            }
        }
        st.flush_pending();
        st.pending_read = Some(TraceEvent {
            at: now,
            kind: TraceEventKind::InputRead {
                job: job as u32,
                consumer: c,
                producer_stage: p_stage,
                producers: 1,
            },
        });
    }

    fn on_recovery_planned(
        &mut self,
        now: SimTime,
        job: usize,
        ctx: &RecoveryContext<'_>,
        plan: &RecoveryPlan,
    ) {
        self.push(
            now,
            TraceEventKind::RecoveryPlanned {
                job: job as u32,
                failed: task_ref(ctx.failed),
                case: plan.case,
                abort: plan.abort_job,
                rerun: plan.rerun.iter().map(|&t| task_ref(t)).collect(),
                updates: plan.updates.len() as u32,
            },
        );
    }

    fn on_job_restarted(&mut self, now: SimTime, job: usize) {
        self.push(now, TraceEventKind::JobRestarted { job: job as u32 });
    }

    fn on_job_completed(&mut self, now: SimTime, job: usize, aborted: bool) {
        self.push(
            now,
            TraceEventKind::JobCompleted {
                job: job as u32,
                aborted,
            },
        );
    }

    fn on_job_submitted(&mut self, now: SimTime, job: usize) {
        self.push(now, TraceEventKind::JobSubmitted { job: job as u32 });
    }

    fn on_shuffle_scheme_selected(&mut self, now: SimTime, job: usize, d: &SchemeDecision) {
        self.push(
            now,
            TraceEventKind::SchemeSelected {
                job: job as u32,
                edge: d.edge,
                src: d.src.index() as u32,
                dst: d.dst.index() as u32,
                size: d.edge_size,
                scheme: d.scheme,
                medium: d.medium,
                crossing: d.crossing,
            },
        );
    }

    fn on_template_decision(&mut self, now: SimTime, job: usize, d: &TemplateDecision) {
        if !self.cfg.template_events {
            return;
        }
        match d.outcome {
            TemplateOutcome::Miss => self.push(
                now,
                TraceEventKind::TemplateMiss {
                    job: job as u32,
                    signature: d.signature,
                },
            ),
            TemplateOutcome::Hit { canonical } => {
                self.push(
                    now,
                    TraceEventKind::TemplateHit {
                        job: job as u32,
                        signature: d.signature,
                        canonical,
                    },
                );
                self.push(
                    now,
                    TraceEventKind::TemplateInstantiate {
                        job: job as u32,
                        units: d.units,
                        edges: d.edges,
                    },
                );
            }
        }
    }

    fn on_graphlet_state_changed(
        &mut self,
        now: SimTime,
        job: usize,
        unit: u32,
        state: GraphletState,
        stages: &[StageId],
    ) {
        self.push(
            now,
            TraceEventKind::GraphletState {
                job: job as u32,
                unit,
                state,
                stages: stages.iter().map(|s| s.index() as u32).collect(),
            },
        );
    }

    fn on_gang_wait_started(&mut self, now: SimTime, job: usize, unit: u32, tasks: usize) {
        let mut st = self.state.borrow_mut();
        if let Some(m) = st.metrics.as_mut() {
            m.open_gangs += 1;
        }
        st.push(
            now,
            TraceEventKind::GangWaitStarted {
                job: job as u32,
                unit,
                tasks: tasks as u32,
            },
        );
    }

    fn on_gang_wait_ended(
        &mut self,
        now: SimTime,
        job: usize,
        unit: u32,
        tasks: usize,
        wave: bool,
    ) {
        let mut st = self.state.borrow_mut();
        if let Some(m) = st.metrics.as_mut() {
            m.open_gangs = m.open_gangs.saturating_sub(1);
        }
        st.push(
            now,
            TraceEventKind::GangWaitEnded {
                job: job as u32,
                unit,
                tasks: tasks as u32,
                wave,
            },
        );
    }

    fn on_task_assigned(
        &mut self,
        now: SimTime,
        job: usize,
        task: TaskId,
        epoch: u32,
        executor: ExecutorId,
    ) {
        self.push(
            now,
            TraceEventKind::TaskAssigned {
                job: job as u32,
                task: task_ref(task),
                epoch,
                executor: executor.0,
            },
        );
    }

    fn on_plan_delivered(&mut self, now: SimTime, job: usize, task: TaskId, epoch: u32) {
        self.push(
            now,
            TraceEventKind::PlanDelivered {
                job: job as u32,
                task: task_ref(task),
                epoch,
            },
        );
    }

    fn on_failure_detected(&mut self, now: SimTime, job: usize, task: TaskId, kind: FailureKind) {
        self.push(
            now,
            TraceEventKind::FailureDetected {
                job: job as u32,
                task: task_ref(task),
                kind,
            },
        );
    }

    fn on_machine_health_changed(
        &mut self,
        now: SimTime,
        machine: MachineId,
        from: MachineHealth,
        to: MachineHealth,
    ) {
        self.push(
            now,
            TraceEventKind::MachineHealthChanged {
                machine: crate::event::machine_u32(machine),
                from,
                to,
            },
        );
    }

    fn on_cache_spill(&mut self, now: SimTime, machine: MachineId, bytes: u64, segments: usize) {
        let mut st = self.state.borrow_mut();
        if let Some(m) = st.metrics.as_mut() {
            m.reg.add(sm::SHUFFLE_SPILL_BYTES, bytes);
        }
        st.push(
            now,
            TraceEventKind::CacheSpill {
                machine: crate::event::machine_u32(machine),
                bytes,
                segments: segments as u32,
            },
        );
    }

    fn on_cache_evict(&mut self, now: SimTime, machine: MachineId, bytes: u64) {
        let mut st = self.state.borrow_mut();
        if let Some(m) = st.metrics.as_mut() {
            m.reg.add(sm::SHUFFLE_EVICT_BYTES, bytes);
        }
        st.push(
            now,
            TraceEventKind::CacheEvict {
                machine: crate::event::machine_u32(machine),
                bytes,
            },
        );
    }

    fn on_counter_sample(&mut self, now: SimTime, sample: &CounterSample) {
        let Some(window) = self.cfg.counter_window else {
            return;
        };
        let template_events = self.cfg.template_events;
        let mut st = self.state.borrow_mut();
        let frame = match st.metrics.as_mut() {
            Some(m) => {
                let reg = &mut m.reg;
                reg.set(sm::SIM_EVENT_QUEUE_DEPTH, sample.event_queue_depth);
                reg.set_cumulative(sm::SIM_EVENTS, sample.events_processed);
                reg.set(sm::SCHED_PENDING_REQUESTS, sample.pending_requests);
                reg.set(sm::SCHED_PENDING_GANG_TASKS, sample.pending_gang_tasks);
                reg.set(sm::SCHED_WAVE_JOBS, sample.wave_jobs);
                if template_events {
                    reg.set(sm::SCHED_TEMPLATE_ENTRIES, sample.template_entries);
                    reg.set_cumulative(sm::SCHED_TEMPLATE_HITS, sample.template_hits);
                    reg.set_cumulative(sm::SCHED_TEMPLATE_MISSES, sample.template_misses);
                }
                reg.set(sm::SHUFFLE_STORE_BYTES, sample.cache_store_bytes);
                reg.set(sm::CLUSTER_LIVE_EXECUTORS, sample.live_executors);
                reg.set(sm::CLUSTER_BUSY_EXECUTORS, sample.busy_executors);
                reg.set(sm::CLUSTER_GANG_WAITS_OPEN, m.open_gangs);
                // Shard telemetry: no-ops on the core vocabulary, so the
                // registry choice alone decides whether frames carry them.
                reg.set_cumulative(sm::SIM_SHARD_EVENTS, sample.shard_events);
                reg.set_cumulative(sm::SIM_SHARD_CROSS_MSGS, sample.cross_shard_messages);
                reg.set_cumulative(sm::SIM_SHARD_WINDOW_BARRIERS, sample.shard_window_barriers);
                reg.set_cumulative(sm::SIM_SHARD_BARRIER_STALLS, sample.shard_barrier_stalls);
                reg.sample(now.as_micros() / window.as_micros().max(1))
            }
            None => return,
        };
        st.push(
            now,
            TraceEventKind::CounterFrame {
                window: frame.window,
                values: frame.values,
            },
        );
    }

    fn on_run_finished(&mut self, now: SimTime, events: u64) {
        self.push(now, TraceEventKind::RunFinished { events });
    }

    fn wants_input_reads(&self) -> bool {
        self.cfg.input_reads
    }

    fn wants_cache_model(&self) -> bool {
        self.cfg.cache_model
    }

    fn counter_window(&self) -> Option<SimDuration> {
        self.cfg.counter_window
    }
}
