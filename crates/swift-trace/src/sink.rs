//! Trace sinks: where the [`crate::TraceRecorder`] delivers its event
//! stream.
//!
//! [`MemorySink`] buffers the whole stream (the default; feeds
//! [`crate::TraceHandle::finish`]). [`StreamSink`] renders each event to
//! the stable text format as it arrives and writes it through an
//! [`io::Write`] in chunks, so a long run's trace never has to fit in
//! memory: recorder-side buffering is bounded by the chunk size. Both
//! sinks observe the identical event stream, and the streamed bytes equal
//! [`crate::Trace::render_text`] byte for byte — the footer carries the
//! event count precisely so a streaming writer never needs to seek back.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use crate::event::TraceEvent;
use crate::TEXT_FORMAT_VERSION;

/// Where recorded events go, in stream order.
///
/// Implementations must be deterministic consumers: no reordering, no
/// sampling of their own — the byte-identity contract (same
/// `(scenario, seed)` ⇒ identical output) is carried entirely by the
/// event stream the recorder feeds in.
pub trait TraceSink: std::fmt::Debug {
    /// Consumes the next event.
    fn record(&mut self, event: TraceEvent);

    /// Events consumed so far.
    fn events_recorded(&self) -> u64;
}

/// Events per [`MemorySink`] segment: 1024 × ~56-byte events ≈ 56 KiB.
/// Small enough that a freed segment goes back on the allocator's reuse
/// lists (the next run's segments land on already-faulted pages instead
/// of triggering fresh page faults mid-run), large enough that the
/// new-segment branch in [`MemorySink::record`] is almost never taken.
const SEGMENT_EVENTS: usize = 1024;

/// The buffering sink: the full event stream accumulates in memory and is
/// taken out by [`crate::TraceHandle::finish`].
///
/// Storage is a list of fixed-capacity segments rather than one growing
/// `Vec`: recording sits on the simulator's allocation-free hot path, and
/// doubling-growth reallocation would re-copy the entire stream `log n`
/// times (megabytes of memcpy plus fresh-page faults on a long run).
/// Segments never move once allocated; the one-time flatten happens in
/// [`MemorySink::into_events`], off the timed path.
#[derive(Debug, Default)]
pub struct MemorySink {
    segments: Vec<Vec<TraceEvent>>,
    len: u64,
}

impl MemorySink {
    /// Takes the recorded events out, flattening the segments in stream
    /// order.
    pub fn into_events(self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len as usize);
        for seg in self.segments {
            out.extend(seg);
        }
        out
    }

    /// [`MemorySink::into_events`] through a mutable reference, leaving
    /// an empty sink behind.
    pub(crate) fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(self).into_events()
    }
}

impl TraceSink for MemorySink {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        match self.segments.last_mut() {
            Some(seg) if seg.len() < SEGMENT_EVENTS => seg.push(event),
            _ => {
                let mut seg = Vec::with_capacity(SEGMENT_EVENTS);
                seg.push(event);
                self.segments.push(seg);
            }
        }
        self.len += 1;
    }

    fn events_recorded(&self) -> u64 {
        self.len
    }
}

/// Default [`StreamSink`] chunk size: 64 KiB.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// What a [`StreamSink`] wrote, returned by [`StreamSink::finish`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamStats {
    /// Events rendered and written.
    pub events: u64,
    /// Total bytes written (header + event lines + footer).
    pub bytes_written: u64,
    /// High-water mark of the chunk buffer. Bounded by the chunk size as
    /// long as no single rendered line exceeds it (lines are short; the
    /// floor chunk is 64 bytes).
    pub peak_buffer_bytes: usize,
}

/// The chunked streaming text sink.
///
/// Events are rendered into a reused line buffer and appended to a chunk
/// buffer that is flushed to the writer *before* an append would overflow
/// the chunk size — so peak memory is `max(chunk, longest line)`
/// regardless of run length. I/O errors are latched on first occurrence
/// (subsequent writes are skipped) and surfaced by [`StreamSink::finish`].
#[derive(Debug)]
pub struct StreamSink<W: Write + std::fmt::Debug> {
    out: W,
    chunk: usize,
    buf: Vec<u8>,
    line: String,
    events: u64,
    bytes_written: u64,
    peak_buffer: usize,
    error: Option<io::Error>,
}

impl StreamSink<File> {
    /// Creates `path` and streams the trace into it with the default
    /// chunk size.
    pub fn create<P: AsRef<Path>>(path: P, scenario: &str, seed: u64) -> io::Result<Self> {
        Ok(Self::new(File::create(path)?, scenario, seed))
    }
}

impl<W: Write + std::fmt::Debug> StreamSink<W> {
    /// Wraps `out` with the default chunk size, staging the v2 header
    /// (nothing reaches `out` until the first chunk flush).
    pub fn new(out: W, scenario: &str, seed: u64) -> Self {
        Self::with_chunk(out, scenario, seed, DEFAULT_CHUNK_BYTES)
    }

    /// [`StreamSink::new`] with an explicit chunk size (floored at 64
    /// bytes). Small chunks are useful in tests to exercise flushing.
    pub fn with_chunk(out: W, scenario: &str, seed: u64, chunk_bytes: usize) -> Self {
        let chunk = chunk_bytes.max(64);
        let mut sink = StreamSink {
            out,
            chunk,
            buf: Vec::with_capacity(chunk),
            line: String::with_capacity(192),
            events: 0,
            bytes_written: 0,
            peak_buffer: 0,
            error: None,
        };
        let _ = write!(
            sink.line,
            "# swift-trace v{TEXT_FORMAT_VERSION}\n# scenario={scenario} seed={seed}\n"
        );
        sink.append_line();
        sink
    }

    /// High-water mark of the chunk buffer so far.
    pub fn peak_buffer_bytes(&self) -> usize {
        self.peak_buffer
    }

    /// Writes the `# events=N` footer, flushes everything, and returns
    /// the stream statistics — or the first I/O error hit along the way.
    pub fn finish(self) -> io::Result<StreamStats> {
        self.finish_into_inner().map(|(_, stats)| stats)
    }

    /// [`StreamSink::finish`], but hands the inner writer back too (used
    /// by tests that stream into a `Vec<u8>` and compare the bytes).
    pub fn finish_into_inner(mut self) -> io::Result<(W, StreamStats)> {
        self.line.clear();
        let _ = writeln!(self.line, "# events={}", self.events);
        self.append_line();
        self.flush_chunk();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        let stats = StreamStats {
            events: self.events,
            bytes_written: self.bytes_written,
            peak_buffer_bytes: self.peak_buffer,
        };
        Ok((self.out, stats))
    }

    fn append_line(&mut self) {
        if !self.buf.is_empty() && self.buf.len() + self.line.len() > self.chunk {
            self.flush_chunk();
        }
        self.buf.extend_from_slice(self.line.as_bytes());
        self.peak_buffer = self.peak_buffer.max(self.buf.len());
    }

    fn flush_chunk(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.error.is_none() {
            match self.out.write_all(&self.buf) {
                Ok(()) => self.bytes_written += self.buf.len() as u64,
                Err(e) => self.error = Some(e),
            }
        }
        self.buf.clear();
    }
}

impl<W: Write + std::fmt::Debug> TraceSink for StreamSink<W> {
    fn record(&mut self, event: TraceEvent) {
        self.events += 1;
        self.line.clear();
        event.render_line_into(&mut self.line);
        self.line.push('\n');
        self.append_line();
    }

    fn events_recorded(&self) -> u64 {
        self.events
    }
}
