//! The metrics registry: counters and fixed-bucket histograms derived
//! entirely from a [`Trace`]'s event stream.
//!
//! Derivation replays the simulator's own accounting rules, so for any
//! run the trace-level numbers must agree exactly with the end-of-run
//! [`swift_scheduler::RunReport`] (the cross-check test suite pins this):
//!
//! * per-job idle time is the sum over `task_started` events of
//!   `start − plan_delivered` for the same `(task, epoch)` attempt;
//! * per-job occupied time is the sum over `task_finished` events of
//!   `finish − plan_delivered`;
//! * makespan is the latest non-aborted `job_completed` timestamp;
//! * a stage's `PhaseBreakdown::total` is the attempt's
//!   `(finish − start) + (plan_delivered − assigned) − schedule_overhead`
//!   (launch plus execution; the schedule overhead between assignment and
//!   plan dispatch is the cost model's, not the stage's).

use std::collections::BTreeMap;

use swift_sim::{SimDuration, SimTime};

use crate::event::{TaskRef, TraceEvent, TraceEventKind};
use crate::Trace;

// The histogram moved into the dependency-free `swift-metrics` registry
// crate; re-exported here so trace consumers keep their import paths.
pub use swift_metrics::{Histogram, LATENCY_BUCKETS_US};

/// Idle/occupied accumulator for one scope (a job or a graphlet).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IdleAccount {
    /// Executor time spent waiting for inputs after plan delivery, µs.
    pub idle_micros: u64,
    /// Executor time between plan delivery and task completion, µs.
    pub occupied_micros: u64,
}

impl IdleAccount {
    /// `idle / occupied`, with the [`swift_scheduler::JobReport`] edge-case
    /// semantics: `0/0 → 0.0`, `x/0 → ∞`.
    pub fn idle_ratio(&self) -> f64 {
        if self.occupied_micros == 0 {
            if self.idle_micros == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.idle_micros as f64 / 1e6) / (self.occupied_micros as f64 / 1e6)
        }
    }
}

/// Everything the registry derives from one trace.
#[derive(Clone, Debug, Default)]
pub struct TraceMetrics {
    /// Per-job idle/occupied accounting, keyed by workload index.
    pub job_idle: BTreeMap<u32, IdleAccount>,
    /// Per-graphlet idle/occupied accounting, keyed by `(job, unit)`.
    pub graphlet_idle: BTreeMap<(u32, u32), IdleAccount>,
    /// Jobs that completed with `aborted = true`.
    pub aborted_jobs: Vec<u32>,
    /// Latest non-aborted job completion (the `RunReport` makespan).
    pub makespan: SimTime,
    /// Per-stage `PhaseBreakdown::total` equivalent, keyed by
    /// `(job, stage)`, from the first completed attempt observed.
    pub stage_phase_total: BTreeMap<(u32, u32), SimDuration>,
    /// Scheme decisions per scheme label (`direct`/`remote`/`local`).
    pub scheme_counts: BTreeMap<&'static str, u64>,
    /// Summed edge sizes (M×N shuffle channel counts, the quantity the
    /// adaptive thresholds compare against) per scheme label.
    pub scheme_edge_size: BTreeMap<&'static str, u64>,
    /// Total bytes spilled by Cache Workers.
    pub spill_bytes: u64,
    /// Total spill events.
    pub spill_events: u64,
    /// Total segments spilled across those events.
    pub spill_segments: u64,
    /// Total bytes released by Cache Workers.
    pub evict_bytes: u64,
    /// Latency from a task's kill/invalidation to the Admin detecting the
    /// failure (§IV-A detection latency).
    pub detection_latency: Histogram,
    /// Latency from a recovery plan to the first re-run task starting.
    pub replan_to_rerun: Histogram,
    /// Template-cache lookups that missed (`template_miss` events).
    pub template_misses: u64,
    /// Template-cache hits (`template_hit` events).
    pub template_hits: u64,
    /// Hits that matched through the canonical form.
    pub template_canonical_hits: u64,
    /// Templates instantiated by parameter patching.
    pub template_instantiations: u64,
    /// Total events in the trace (including the `run_finished` marker).
    pub trace_events: u64,
    /// Events processed by the simulator loop (from `run_finished`).
    pub sim_events: u64,
    /// Counter-track frames in the trace (`counters` events).
    pub counter_frames: u64,
    /// Per-series totals of counter-kind series summed over all frames,
    /// keyed by series name. By the telescoping rule these equal the
    /// end-of-run cumulative values, so they cross-check integer-exact
    /// against the `RunReport` and the event stream itself.
    pub counter_totals: BTreeMap<&'static str, u64>,
    /// Final observed value of each gauge-kind series, keyed by name.
    pub counter_final: BTreeMap<&'static str, u64>,
}

impl TraceMetrics {
    /// Cluster-wide IdleRatio with the exact [`swift_scheduler::RunReport`]
    /// summation semantics: aborted jobs excluded, per-job second-valued
    /// sums in workload order, `0/0 → 0.0`.
    pub fn run_idle_ratio(&self) -> f64 {
        let idle: f64 = self
            .job_idle
            .iter()
            .filter(|(j, _)| !self.aborted_jobs.contains(j))
            .map(|(_, a)| a.idle_micros as f64 / 1e6)
            .sum();
        let occ: f64 = self
            .job_idle
            .iter()
            .filter(|(j, _)| !self.aborted_jobs.contains(j))
            .map(|(_, a)| a.occupied_micros as f64 / 1e6)
            .sum();
        if occ == 0.0 {
            0.0
        } else {
            idle / occ
        }
    }

    /// Folds one sealed counter frame into the registry: counter-kind
    /// series accumulate into [`TraceMetrics::counter_totals`], gauges
    /// overwrite [`TraceMetrics::counter_final`]. Unknown IDs (a newer
    /// trace read by an older build) are skipped.
    pub fn record_window(&mut self, values: &[(u16, u64)]) {
        self.counter_frames += 1;
        for (id, v) in values {
            let Some(d) = swift_metrics::series_def(*id) else {
                continue;
            };
            match d.kind {
                swift_metrics::SeriesKind::Counter => {
                    *self.counter_totals.entry(d.name).or_insert(0) += v;
                }
                swift_metrics::SeriesKind::Gauge => {
                    self.counter_final.insert(d.name, *v);
                }
            }
        }
    }

    /// Renders the registry as stable text (one `key value` pair per
    /// line), for CLI summaries.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "trace_events {}", self.trace_events);
        let _ = writeln!(s, "sim_events {}", self.sim_events);
        let _ = writeln!(s, "makespan_us {}", self.makespan.as_micros());
        let _ = writeln!(s, "run_idle_ratio {:.6}", self.run_idle_ratio());
        for (j, a) in &self.job_idle {
            let _ = writeln!(
                s,
                "job {j} idle_us={} occupied_us={} idle_ratio={:.6}",
                a.idle_micros,
                a.occupied_micros,
                a.idle_ratio()
            );
        }
        for ((j, u), a) in &self.graphlet_idle {
            let _ = writeln!(
                s,
                "graphlet {j}.{u} idle_us={} occupied_us={} idle_ratio={:.6}",
                a.idle_micros,
                a.occupied_micros,
                a.idle_ratio()
            );
        }
        for (scheme, n) in &self.scheme_counts {
            let size = self.scheme_edge_size.get(scheme).copied().unwrap_or(0);
            let _ = writeln!(s, "scheme {scheme} edges={n} total_edge_size={size}");
        }
        // Only cache-enabled runs emit template events; keep cache-off
        // summaries (and their goldens) unchanged.
        if self.template_misses + self.template_hits > 0 {
            let _ = writeln!(
                s,
                "template_cache hits={} canonical_hits={} misses={} instantiations={}",
                self.template_hits,
                self.template_canonical_hits,
                self.template_misses,
                self.template_instantiations
            );
        }
        let _ = writeln!(
            s,
            "cache spill_events={} spill_segments={} spill_bytes={} evict_bytes={}",
            self.spill_events, self.spill_segments, self.spill_bytes, self.evict_bytes
        );
        let _ = writeln!(
            s,
            "detection_latency samples={} mean_us={} max_us={} buckets={:?}",
            self.detection_latency.samples,
            self.detection_latency.mean_micros(),
            self.detection_latency.max_micros,
            self.detection_latency.counts
        );
        let _ = writeln!(
            s,
            "replan_to_rerun samples={} mean_us={} max_us={} buckets={:?}",
            self.replan_to_rerun.samples,
            self.replan_to_rerun.mean_micros(),
            self.replan_to_rerun.max_micros,
            self.replan_to_rerun.counts
        );
        // Counter tracks appear only in frame-carrying traces, so
        // lean-trace summaries are unchanged.
        if self.counter_frames > 0 {
            let _ = writeln!(s, "counter_frames {}", self.counter_frames);
            for (name, total) in &self.counter_totals {
                let _ = writeln!(s, "counter {name} total={total}");
            }
            for (name, last) in &self.counter_final {
                let _ = writeln!(s, "gauge {name} last={last}");
            }
        }
        s
    }
}

/// One attempt key: `(job, stage, index, epoch)`.
type AttemptKey = (u32, u32, u32, u32);

fn attempt_key(job: u32, t: TaskRef, epoch: u32) -> AttemptKey {
    (job, t.stage, t.index, epoch)
}

/// Derives the full metrics registry from a trace.
///
/// `schedule_overhead` is the cost model's `swift_schedule_overhead` (the
/// gap between assignment and plan dispatch that is *not* part of the
/// stage's launch phase); pass [`SimDuration::ZERO`] when stage phase
/// totals are not needed.
pub fn derive(trace: &Trace, schedule_overhead: SimDuration) -> TraceMetrics {
    let mut m = TraceMetrics {
        trace_events: trace.events.len() as u64,
        ..TraceMetrics::default()
    };

    // Per-attempt timestamps for idle/occupied/phase reconstruction.
    let mut assigned: BTreeMap<AttemptKey, SimTime> = BTreeMap::new();
    let mut delivered: BTreeMap<AttemptKey, SimTime> = BTreeMap::new();
    let mut started: BTreeMap<AttemptKey, SimTime> = BTreeMap::new();
    // Stage → unit map per job, from graphlet submission events.
    let mut stage_unit: BTreeMap<(u32, u32), u32> = BTreeMap::new();
    // Last kill/invalidation per task, for detection latency.
    let mut invalidated_at: BTreeMap<(u32, u32, u32), SimTime> = BTreeMap::new();
    // Open recovery plans: (plan time, rerun set) per job, consumed by the
    // first start of one of their tasks.
    let mut open_plans: Vec<(u32, SimTime, Vec<TaskRef>)> = Vec::new();

    for TraceEvent { at, kind } in &trace.events {
        let at = *at;
        match kind {
            TraceEventKind::SchemeSelected {
                scheme,
                size: edge_size,
                ..
            } => {
                let label = match scheme {
                    swift_shuffle::ShuffleScheme::Direct => "direct",
                    swift_shuffle::ShuffleScheme::Local => "local",
                    swift_shuffle::ShuffleScheme::Remote => "remote",
                };
                *m.scheme_counts.entry(label).or_insert(0) += 1;
                *m.scheme_edge_size.entry(label).or_insert(0) += edge_size;
            }
            TraceEventKind::GraphletState {
                job, unit, stages, ..
            } => {
                for &s in stages {
                    stage_unit.insert((*job, s), *unit);
                }
            }
            TraceEventKind::TaskAssigned {
                job, task, epoch, ..
            } => {
                assigned.insert(attempt_key(*job, *task, *epoch), at);
            }
            TraceEventKind::PlanDelivered { job, task, epoch } => {
                delivered.insert(attempt_key(*job, *task, *epoch), at);
            }
            TraceEventKind::TaskStarted { job, task, epoch } => {
                let key = attempt_key(*job, *task, *epoch);
                started.insert(key, at);
                if let Some(&d) = delivered.get(&key) {
                    let idle = at.saturating_since(d).as_micros();
                    m.job_idle.entry(*job).or_default().idle_micros += idle;
                    if let Some(&u) = stage_unit.get(&(*job, task.stage)) {
                        m.graphlet_idle.entry((*job, u)).or_default().idle_micros += idle;
                    }
                }
                // Consume any recovery plan waiting on this task.
                if let Some(pos) = open_plans
                    .iter()
                    .position(|(j, _, rerun)| j == job && rerun.contains(task))
                {
                    let (_, planned_at, _) = open_plans.remove(pos);
                    m.replan_to_rerun.observe(at.saturating_since(planned_at));
                }
            }
            TraceEventKind::TaskFinished { job, task, epoch } => {
                let key = attempt_key(*job, *task, *epoch);
                if let Some(&d) = delivered.get(&key) {
                    let occ = at.saturating_since(d).as_micros();
                    m.job_idle.entry(*job).or_default().occupied_micros += occ;
                    if let Some(&u) = stage_unit.get(&(*job, task.stage)) {
                        m.graphlet_idle
                            .entry((*job, u))
                            .or_default()
                            .occupied_micros += occ;
                    }
                    // Stage phase total = launch + execution, from the first
                    // completed attempt of any task in the stage.
                    if let std::collections::btree_map::Entry::Vacant(slot) =
                        m.stage_phase_total.entry((*job, task.stage))
                    {
                        if let (Some(&a), Some(&s)) = (assigned.get(&key), started.get(&key)) {
                            let launch = d.saturating_since(a) - schedule_overhead;
                            let exec = at.saturating_since(s);
                            slot.insert(launch + exec);
                        }
                    }
                }
            }
            TraceEventKind::TaskInvalidated { job, task, .. } => {
                invalidated_at.insert((*job, task.stage, task.index), at);
            }
            TraceEventKind::FailureDetected { job, task, .. } => {
                if let Some(&k) = invalidated_at.get(&(*job, task.stage, task.index)) {
                    m.detection_latency.observe(at.saturating_since(k));
                }
            }
            TraceEventKind::RecoveryPlanned {
                job, rerun, abort, ..
            } => {
                if !abort && !rerun.is_empty() {
                    open_plans.push((*job, at, rerun.clone()));
                }
            }
            TraceEventKind::JobCompleted { job, aborted } => {
                if *aborted {
                    m.aborted_jobs.push(*job);
                } else {
                    m.makespan = m.makespan.max(at);
                }
                // Jobs with no completed task still appear in the account.
                m.job_idle.entry(*job).or_default();
            }
            TraceEventKind::CacheSpill {
                bytes, segments, ..
            } => {
                m.spill_bytes += bytes;
                m.spill_events += 1;
                m.spill_segments += u64::from(*segments);
            }
            TraceEventKind::CacheEvict { bytes, .. } => {
                m.evict_bytes += bytes;
            }
            TraceEventKind::TemplateMiss { .. } => {
                m.template_misses += 1;
            }
            TraceEventKind::TemplateHit { canonical, .. } => {
                m.template_hits += 1;
                if *canonical {
                    m.template_canonical_hits += 1;
                }
            }
            TraceEventKind::TemplateInstantiate { .. } => {
                m.template_instantiations += 1;
            }
            TraceEventKind::CounterFrame { values, .. } => {
                m.record_window(values);
            }
            TraceEventKind::RunFinished { events } => {
                m.sim_events = *events;
            }
            TraceEventKind::JobSubmitted { .. }
            | TraceEventKind::GangWaitStarted { .. }
            | TraceEventKind::GangWaitEnded { .. }
            | TraceEventKind::InputRead { .. }
            | TraceEventKind::JobRestarted { .. }
            | TraceEventKind::MachineHealthChanged { .. }
            | TraceEventKind::JobAdmitted { .. }
            | TraceEventKind::JobRejected { .. }
            | TraceEventKind::SessionWarmHit { .. }
            | TraceEventKind::SessionColdStart { .. }
            | TraceEventKind::SessionExpired { .. } => {}
        }
    }
    m
}
