//! `trace diff`: structural comparison of two rendered trace files.
//!
//! Works on the stable text format (v2), so it can compare traces
//! produced by any sink — in-memory render, streamed file, chaos
//! `--trace-on-failure` dump — without re-running anything. Reports the
//! first divergent line, per-event-kind count deltas, and per-series
//! counter-track aggregate deltas (counters summed over windows, gauges
//! at their final value), which localizes "what changed between these two
//! runs" far faster than eyeballing a byte diff.

use std::collections::BTreeMap;

use swift_metrics::SeriesKind;

/// Result of comparing two rendered traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffReport {
    /// Whether the inputs are byte-identical (line-wise).
    pub identical: bool,
    /// 1-based line number and the two lines at the first divergence;
    /// a side is `None` when that input ended early.
    pub first_divergence: Option<(usize, Option<String>, Option<String>)>,
    /// Event-line counts (header/footer lines excluded).
    pub events: (u64, u64),
    /// Per-event-kind counts that differ: `(kind, a, b)`.
    pub kind_deltas: Vec<(String, u64, u64)>,
    /// Per-series counter-track aggregates that differ:
    /// `(series, "total" | "last", a, b)`.
    pub series_deltas: Vec<(String, &'static str, u64, u64)>,
}

#[derive(Default)]
struct Summary {
    events: u64,
    kinds: BTreeMap<String, u64>,
    series: BTreeMap<&'static str, (&'static str, u64)>,
}

fn summarize(text: &str) -> Summary {
    let mut s = Summary::default();
    for line in text.lines() {
        let t = line.trim_start();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut tok = t.split_whitespace();
        let _ts = tok.next();
        let Some(kind) = tok.next() else { continue };
        s.events += 1;
        *s.kinds.entry(kind.to_string()).or_insert(0) += 1;
        if kind != "counters" {
            continue;
        }
        for kv in tok {
            let Some(rest) = kv.strip_prefix('s') else {
                continue; // the window=N field
            };
            let Some((id, v)) = rest.split_once('=') else {
                continue;
            };
            let (Ok(id), Ok(v)) = (id.parse::<u16>(), v.parse::<u64>()) else {
                continue;
            };
            let Some(d) = swift_metrics::series_def(id) else {
                continue;
            };
            match d.kind {
                SeriesKind::Counter => {
                    s.series.entry(d.name).or_insert(("total", 0)).1 += v;
                }
                SeriesKind::Gauge => {
                    s.series.insert(d.name, ("last", v));
                }
            }
        }
    }
    s
}

/// Compares two rendered trace texts.
pub fn diff_texts(a: &str, b: &str) -> DiffReport {
    let mut first_divergence = None;
    let mut la = a.lines();
    let mut lb = b.lines();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        match (la.next(), lb.next()) {
            (None, None) => break,
            (x, y) if x == y => continue,
            (x, y) => {
                first_divergence = Some((lineno, x.map(String::from), y.map(String::from)));
                break;
            }
        }
    }

    let sa = summarize(a);
    let sb = summarize(b);

    let mut kind_deltas = Vec::new();
    let kinds: std::collections::BTreeSet<&String> =
        sa.kinds.keys().chain(sb.kinds.keys()).collect();
    for k in kinds {
        let ca = sa.kinds.get(k).copied().unwrap_or(0);
        let cb = sb.kinds.get(k).copied().unwrap_or(0);
        if ca != cb {
            kind_deltas.push((k.clone(), ca, cb));
        }
    }

    let mut series_deltas = Vec::new();
    let names: std::collections::BTreeSet<&&str> =
        sa.series.keys().chain(sb.series.keys()).collect();
    for name in names {
        let (agg_a, va) = sa.series.get(*name).copied().unwrap_or(("total", 0));
        let (agg_b, vb) = sb.series.get(*name).copied().unwrap_or((agg_a, 0));
        if va != vb {
            series_deltas.push((name.to_string(), agg_b, va, vb));
        }
    }

    DiffReport {
        identical: first_divergence.is_none(),
        first_divergence,
        events: (sa.events, sb.events),
        kind_deltas,
        series_deltas,
    }
}

/// Renders the report for terminal output.
pub fn render(r: &DiffReport, label_a: &str, label_b: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if r.identical {
        let _ = writeln!(out, "traces identical ({} events)", r.events.0);
        return out;
    }
    let _ = writeln!(out, "traces differ: {label_a} vs {label_b}");
    let _ = writeln!(out, "  events: {} vs {}", r.events.0, r.events.1);
    if let Some((line, a, b)) = &r.first_divergence {
        let _ = writeln!(out, "  first divergence at line {line}:");
        let _ = writeln!(out, "    a: {}", a.as_deref().unwrap_or("<end of input>"));
        let _ = writeln!(out, "    b: {}", b.as_deref().unwrap_or("<end of input>"));
    }
    if !r.kind_deltas.is_empty() {
        let _ = writeln!(out, "  event kinds differing:");
        for (k, a, b) in &r.kind_deltas {
            let _ = writeln!(out, "    {k}: {a} vs {b}");
        }
    }
    if !r.series_deltas.is_empty() {
        let _ = writeln!(out, "  counter series differing:");
        for (name, agg, a, b) in &r.series_deltas {
            let _ = writeln!(out, "    {name}: {agg} {a} vs {b}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: &str = "# swift-trace v2\n# scenario=x seed=1\n\
                     0 job_submitted job=0\n\
                     10 counters window=0 s1=5 s13=8\n\
                     20 run_finished events=9\n\
                     # events=3\n";

    #[test]
    fn identical_inputs() {
        let r = diff_texts(A, A);
        assert!(r.identical);
        assert_eq!(r.events, (3, 3));
        assert!(r.kind_deltas.is_empty());
        assert!(r.series_deltas.is_empty());
    }

    #[test]
    fn divergence_is_localized() {
        let b = A.replace("s1=5", "s1=7").replace("events=9", "events=11");
        let r = diff_texts(A, &b);
        assert!(!r.identical);
        let (line, la, lb) = r.first_divergence.clone().unwrap();
        assert_eq!(line, 4);
        assert!(la.unwrap().contains("s1=5"));
        assert!(lb.unwrap().contains("s1=7"));
        // sim.events is a counter: totals 5 vs 7.
        assert_eq!(
            r.series_deltas,
            vec![("sim.events".to_string(), "total", 5, 7)]
        );
        assert!(r.kind_deltas.is_empty());
    }

    #[test]
    fn missing_tail_reports_end_of_input() {
        let b = "# swift-trace v2\n# scenario=x seed=1\n0 job_submitted job=0\n";
        let r = diff_texts(A, b);
        assert!(!r.identical);
        let (line, _, lb) = r.first_divergence.clone().unwrap();
        assert_eq!(line, 4);
        assert!(lb.is_none());
        assert_eq!(r.events, (3, 1));
        assert_eq!(r.kind_deltas.len(), 2); // counters, run_finished
    }
}
