//! Multi-tenant arrival generator for the `swift-service` front door.
//!
//! Scales the [`crate::trace`] generator up to service shape: thousands of
//! tenants submitting tens of thousands of jobs, with a Poisson base
//! process whose rate is modulated by a diurnal load curve and seeded
//! arrival storms (the "scheduling storms" regime the service's admission
//! control and DRR fairness are built for). Everything is a pure function
//! of the config — same seed, byte-identical job list.

use std::sync::Arc;

use swift_dag::JobDag;
use swift_sim::{SimDuration, SimRng, SimTime};

use crate::trace::{trace_job_dag, TraceConfig};

/// Admission priority band of a service job. High-priority jobs overtake
/// normal ones within their tenant's queue (never across tenants — DRR
/// owns cross-tenant ordering).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobPriority {
    /// Front of the tenant queue.
    High,
    /// Default band.
    Normal,
}

/// One job submitted to the service front door.
#[derive(Clone, Debug)]
pub struct ServiceJob {
    /// Owning tenant (dense ids `0..tenants`).
    pub tenant: u32,
    /// Admission priority band.
    pub priority: JobPriority,
    /// The job DAG (shared, like [`crate::TraceJob`]).
    pub dag: Arc<JobDag>,
    /// Submission time.
    pub submit_at: SimTime,
    /// DRR cost of the job: its total task count.
    pub cost: u64,
}

/// Configuration of the multi-tenant service workload.
#[derive(Clone, Debug)]
pub struct ServiceWorkloadConfig {
    /// Number of tenants (dense ids `0..tenants`).
    pub tenants: u32,
    /// Total jobs across all tenants.
    pub jobs: usize,
    /// RNG seed (the whole workload is deterministic in it).
    pub seed: u64,
    /// Fleet-wide mean inter-arrival time at load factor 1.0.
    pub mean_interarrival: SimDuration,
    /// Modulate the arrival rate by the diurnal load curve (one "day"
    /// spans the workload's expected duration).
    pub diurnal: bool,
    /// Number of seeded arrival storms (burst windows).
    pub storms: u32,
    /// Rate multiplier inside a storm window.
    pub storm_factor: f64,
    /// Storm window length.
    pub storm_len: SimDuration,
    /// Zipf exponent of the tenant traffic split. `0.0` selects the
    /// deterministic round-robin split (`job % tenants`), which gives
    /// every tenant exactly the same demand — the shape the fairness
    /// tests and the golden scenario pin.
    pub tenant_skew: f64,
    /// Fraction of jobs submitted in the high-priority band.
    pub high_priority_share: f64,
    /// DAG-shape knobs, shared with the single-tenant trace generator
    /// (its `jobs`/`seed`/`mean_interarrival` fields are ignored here).
    pub shape: TraceConfig,
}

impl Default for ServiceWorkloadConfig {
    fn default() -> Self {
        ServiceWorkloadConfig {
            tenants: 50,
            jobs: 500,
            seed: 20210419,
            mean_interarrival: SimDuration::from_millis(400),
            diurnal: true,
            storms: 2,
            storm_factor: 6.0,
            storm_len: SimDuration::from_secs(10),
            tenant_skew: 1.1,
            high_priority_share: 0.15,
            shape: TraceConfig::default(),
        }
    }
}

/// Piecewise-linear diurnal load curve: relative rate over one "day"
/// (fraction of the workload's expected span), trough at night, plateau
/// across the working hours. Piecewise-linear rather than sinusoidal so
/// the factor is plain f64 arithmetic.
const DIURNAL_CURVE: [f64; 12] = [
    0.35, 0.30, 0.40, 0.70, 1.10, 1.50, 1.60, 1.55, 1.30, 1.00, 0.70, 0.45,
];

/// Relative arrival rate at `frac` of the day (wraps past 1.0).
fn diurnal_factor(frac: f64) -> f64 {
    let n = DIURNAL_CURVE.len() as f64;
    let x = (frac.rem_euclid(1.0)) * n;
    let i = (x as usize) % DIURNAL_CURVE.len();
    let j = (i + 1) % DIURNAL_CURVE.len();
    let t = x - x.floor();
    DIURNAL_CURVE[i] * (1.0 - t) + DIURNAL_CURVE[j] * t
}

/// Generates the multi-tenant service workload: `jobs` arrivals ordered
/// by submission time, tenants assigned by the Zipf split (or round-robin
/// at `tenant_skew == 0.0`), DAGs drawn from the trace-shape
/// distributions.
pub fn generate_service_workload(cfg: &ServiceWorkloadConfig) -> Vec<ServiceJob> {
    assert!(
        cfg.tenants > 0,
        "service workload needs at least one tenant"
    );
    let mut rng = SimRng::new(cfg.seed);

    // Storm windows are sampled up front from a forked stream so the
    // arrival/DAG sampling sequence is independent of the storm count.
    let mut storm_rng = rng.fork(0x5702_13AD);
    let expected_span = cfg.mean_interarrival.as_secs_f64() * cfg.jobs as f64;
    let mut storms: Vec<(f64, f64)> = (0..cfg.storms)
        .map(|_| {
            let start = storm_rng.range_f64(0.0, expected_span.max(1.0));
            (start, start + cfg.storm_len.as_secs_f64())
        })
        .collect();
    storms.sort_by(|a, b| a.partial_cmp(b).expect("storm times are finite"));

    let mut out = Vec::with_capacity(cfg.jobs);
    let mut clock = 0.0f64;
    for j in 0..cfg.jobs {
        // Thinning-free modulated Poisson: step by an exponential whose
        // mean is scaled by the instantaneous rate factor at the current
        // clock. Factors are bounded well away from zero, so the step is
        // always finite.
        let mut factor = 1.0;
        if cfg.diurnal {
            factor *= diurnal_factor(clock / expected_span.max(1.0));
        }
        if storms.iter().any(|&(s, e)| clock >= s && clock < e) {
            factor *= cfg.storm_factor.max(1.0);
        }
        clock += rng.exponential(cfg.mean_interarrival.as_secs_f64()) / factor;

        let tenant = if cfg.tenant_skew == 0.0 {
            (j as u32) % cfg.tenants
        } else {
            (rng.zipf(u64::from(cfg.tenants), cfg.tenant_skew) - 1) as u32
        };
        let priority = if rng.chance(cfg.high_priority_share) {
            JobPriority::High
        } else {
            JobPriority::Normal
        };
        let dag = Arc::new(trace_job_dag(j as u64, &mut rng, &cfg.shape));
        let cost = dag.total_tasks();
        out.push(ServiceJob {
            tenant,
            priority,
            dag,
            submit_at: SimTime::ZERO + SimDuration::from_secs_f64(clock),
            cost,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let cfg = ServiceWorkloadConfig {
            jobs: 200,
            ..ServiceWorkloadConfig::default()
        };
        let a = generate_service_workload(&cfg);
        let b = generate_service_workload(&cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn arrivals_are_ordered_and_tenants_in_range() {
        let cfg = ServiceWorkloadConfig {
            tenants: 17,
            jobs: 300,
            ..ServiceWorkloadConfig::default()
        };
        let jobs = generate_service_workload(&cfg);
        assert_eq!(jobs.len(), 300);
        for w in jobs.windows(2) {
            assert!(w[0].submit_at <= w[1].submit_at);
        }
        assert!(jobs.iter().all(|j| j.tenant < 17));
        assert!(jobs
            .iter()
            .all(|j| j.cost == j.dag.total_tasks() && j.cost > 0));
    }

    #[test]
    fn round_robin_split_is_exactly_uniform() {
        let cfg = ServiceWorkloadConfig {
            tenants: 3,
            jobs: 12,
            tenant_skew: 0.0,
            ..ServiceWorkloadConfig::default()
        };
        let jobs = generate_service_workload(&cfg);
        let mut counts = [0u32; 3];
        for j in &jobs {
            counts[j.tenant as usize] += 1;
        }
        assert_eq!(counts, [4, 4, 4]);
    }

    #[test]
    fn zipf_split_skews_towards_low_tenants() {
        let cfg = ServiceWorkloadConfig {
            tenants: 20,
            jobs: 2_000,
            tenant_skew: 1.2,
            ..ServiceWorkloadConfig::default()
        };
        let jobs = generate_service_workload(&cfg);
        let head = jobs.iter().filter(|j| j.tenant == 0).count();
        let tail = jobs.iter().filter(|j| j.tenant == 19).count();
        assert!(
            head > tail,
            "zipf head {head} should out-submit tail {tail}"
        );
    }

    #[test]
    fn storms_compress_interarrivals() {
        let base = ServiceWorkloadConfig {
            jobs: 2_000,
            diurnal: false,
            storms: 0,
            tenant_skew: 0.0,
            ..ServiceWorkloadConfig::default()
        };
        let stormy = ServiceWorkloadConfig {
            storms: 3,
            storm_factor: 10.0,
            storm_len: SimDuration::from_secs(60),
            ..base.clone()
        };
        let calm_span = generate_service_workload(&base).last().unwrap().submit_at;
        let storm_span = generate_service_workload(&stormy).last().unwrap().submit_at;
        assert!(
            storm_span < calm_span,
            "storm windows should compress the overall span ({storm_span:?} vs {calm_span:?})"
        );
    }
}
