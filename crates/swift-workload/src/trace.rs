//! Production-trace generator matching the published Fig. 8
//! characteristics:
//!
//! * job runtime: log-normal, mean ≈ 30 s, > 90 % of jobs under 120 s;
//! * job size: > 80 % of jobs with ≤ 80 tasks and ≤ 4 stages;
//! * failure times: ~50 % within 30 s of job start, ~90 % within 200 s.
//!
//! The paper's experiments replay 2 000 such jobs (Figs. 10, 11, 15) and
//! bucket jobs by shuffle edge size for the Fig. 12 comparison.

use std::sync::Arc;
use swift_dag::{DagBuilder, JobDag, Operator, StageProfile};
use swift_sim::{SimDuration, SimRng, SimTime};

/// Configuration of the trace generator.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// RNG seed (the whole trace is deterministic in it).
    pub seed: u64,
    /// Mean inter-arrival time between job submissions (exponential).
    pub mean_interarrival: SimDuration,
    /// Median of the log-normal job-runtime target, seconds.
    pub runtime_median_secs: f64,
    /// Multiplicative spread (sigma of the underlying normal).
    pub runtime_sigma: f64,
    /// Median of the log-normal total-task-count distribution.
    pub tasks_median: f64,
    /// Spread of the task-count distribution (larger -> heavier tail of
    /// big jobs, which stresses whole-job gang scheduling).
    pub tasks_sigma: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            jobs: 2_000,
            seed: 20210419,
            mean_interarrival: SimDuration::from_millis(120),
            runtime_median_secs: 18.0,
            runtime_sigma: 0.9,
            tasks_median: 25.0,
            tasks_sigma: 1.1,
        }
    }
}

/// One trace job: its DAG and submission time.
///
/// The DAG is reference-counted: converting a trace into scheduler job
/// specs (or replaying it several times) shares one immutable `JobDag`
/// instead of deep-copying stages and edges per run.
#[derive(Clone, Debug)]
pub struct TraceJob {
    /// The job DAG (a chain of 1–10 stages with realistic profiles).
    pub dag: Arc<JobDag>,
    /// Submission time.
    pub submit_at: SimTime,
}

/// Stage-count distribution: > 80 % of jobs have ≤ 4 stages (Fig. 8b).
fn sample_stage_count(rng: &mut SimRng) -> u32 {
    let u = rng.f64();
    match u {
        x if x < 0.15 => 1,
        x if x < 0.40 => 2,
        x if x < 0.65 => 3,
        x if x < 0.81 => 4,
        x if x < 0.89 => 5,
        x if x < 0.94 => 6,
        x if x < 0.97 => 7,
        x if x < 0.99 => 8,
        _ => 10,
    }
}

/// Generates the job trace.
pub fn generate_trace(cfg: &TraceConfig) -> Vec<TraceJob> {
    let mut rng = SimRng::new(cfg.seed);
    let mut out = Vec::with_capacity(cfg.jobs);
    let mut clock = SimTime::ZERO;
    for j in 0..cfg.jobs {
        clock += SimDuration::from_secs_f64(rng.exponential(cfg.mean_interarrival.as_secs_f64()));
        let dag = Arc::new(trace_job_dag(j as u64, &mut rng, cfg));
        out.push(TraceJob {
            dag,
            submit_at: clock,
        });
    }
    out
}

pub(crate) fn trace_job_dag(job_id: u64, rng: &mut SimRng, cfg: &TraceConfig) -> JobDag {
    let stages = sample_stage_count(rng);
    // Total tasks: log-normal, > 80 % under 80 tasks, capped at 2 000
    // (the Fig. 8b axis).
    let total_tasks =
        (rng.log_normal_median(cfg.tasks_median, cfg.tasks_sigma) as u64).clamp(1, 2_000);
    // Target runtime, split across the stage chain.
    let runtime = rng
        .log_normal_median(cfg.runtime_median_secs, cfg.runtime_sigma)
        .min(600.0);
    let per_stage_secs = runtime / stages as f64;

    let mut b = DagBuilder::new(job_id, format!("trace-{job_id}"));
    let mut prev = None;
    // Decreasing parallelism along the chain; the triangular weights sum to
    // 1 so the per-stage counts add up to ~total_tasks.
    let weight_sum = stages as f64 * (stages as f64 + 1.0) / 2.0;
    for s in 0..stages {
        let share = (stages - s) as f64 / weight_sum;
        let tasks = ((total_tasks as f64 * share).round() as u32).max(1);
        let process_us = (per_stage_secs * 1e6 * rng.range_f64(0.7, 1.3)) as u64;
        // Bytes sized so shuffle takes a modest fraction of the stage.
        let out_bytes = (per_stage_secs * rng.range_f64(2.0, 20.0) * 1e6) as u64;
        let sorts = s + 1 < stages && rng.chance(0.35);
        let mut sb = b.stage(format!("S{s}"), tasks);
        sb = if s == 0 {
            sb.op(Operator::TableScan {
                table: "input".into(),
            })
        } else {
            sb.op(Operator::ShuffleRead)
        };
        if sorts {
            sb = sb.op(Operator::MergeSort);
        }
        sb = if s + 1 == stages {
            sb.op(Operator::AdhocSink)
        } else {
            sb.op(Operator::ShuffleWrite)
        };
        let id = sb
            .profile(StageProfile {
                input_rows_per_task: out_bytes / 100,
                input_bytes_per_task: out_bytes,
                output_bytes_per_task: out_bytes / 2,
                process_us_per_task: process_us,
                locality: vec![],
            })
            .build();
        if let Some(p) = prev {
            b.edge(p, id);
        }
        prev = Some(id);
    }
    b.build().expect("trace job DAG is valid")
}

/// Samples `n` failure times matching Fig. 8a: log-normal with median 30 s
/// and P90 ≈ 200 s (sigma ≈ 1.48).
pub fn failure_times(n: usize, seed: u64) -> Vec<SimDuration> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| SimDuration::from_secs_f64(rng.log_normal_median(30.0, 1.48).min(3_600.0)))
        .collect()
}

/// One failure to inject during a trace replay.
#[derive(Clone, Debug)]
pub struct TraceFailure {
    /// Index of the affected job in the trace.
    pub job_index: usize,
    /// Name of the affected stage.
    pub stage: String,
    /// Task index within the stage.
    pub task_index: u32,
    /// Failure time relative to the job's submission.
    pub after: SimDuration,
}

/// Picks a `frac` fraction of trace jobs to fail, with Fig. 8a-distributed
/// failure times, random victim stages/tasks. Deterministic in `seed`.
pub fn failure_injections(trace: &[TraceJob], frac: f64, seed: u64) -> Vec<TraceFailure> {
    let mut rng = SimRng::new(seed ^ 0xFA11);
    let times = failure_times(trace.len(), seed);
    let mut out = Vec::new();
    for (i, job) in trace.iter().enumerate() {
        if !rng.chance(frac) {
            continue;
        }
        let stages = job.dag.stages();
        let s = &stages[rng.range(0, stages.len() as u64) as usize];
        // Observed failures strike *running* jobs by construction: clamp
        // the sampled failure time into the job's expected lifetime.
        let est_runtime: f64 = stages
            .iter()
            .map(|st| st.profile.process_us_per_task as f64 / 1e6)
            .sum();
        let after = SimDuration::from_secs_f64(times[i].as_secs_f64().min(est_runtime * 0.9));
        out.push(TraceFailure {
            job_index: i,
            stage: s.name.clone(),
            task_index: rng.range(0, s.task_count as u64) as u32,
            after,
        });
    }
    out
}

/// Shuffle-size buckets of §V-E (Fig. 12), by shuffle edge count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShuffleBucket {
    /// `M × N < 10 000`.
    Small,
    /// `10 000 ≤ M × N ≤ 90 000`.
    Medium,
    /// `M × N > 90 000`.
    Large,
}

/// Builds a two-stage shuffle job in the given bucket: `M` producers,
/// `N` consumers, bytes proportional to the edge count. Deterministic in
/// `seed`.
pub fn shuffle_sized_job(job_id: u64, bucket: ShuffleBucket, seed: u64) -> JobDag {
    let mut rng = SimRng::new(seed);
    let (m, n) = match bucket {
        ShuffleBucket::Small => (rng.range(30, 70) as u32, rng.range(30, 70) as u32),
        ShuffleBucket::Medium => (rng.range(160, 240) as u32, rng.range(160, 240) as u32),
        ShuffleBucket::Large => (rng.range(420, 580) as u32, rng.range(420, 580) as u32),
    };
    let bytes_total: u64 = (m as u64 * n as u64) * 500_000; // ~0.5 MB per task pair
    let mut b = DagBuilder::new(job_id, format!("shuffle-{bucket:?}-{m}x{n}"));
    let per_map = bytes_total / m as u64;
    let map = b
        .stage("map", m)
        .op(Operator::TableScan {
            table: "input".into(),
        })
        .op(Operator::SortBy)
        .op(Operator::ShuffleWrite)
        .profile(StageProfile {
            input_rows_per_task: per_map / 100,
            input_bytes_per_task: per_map,
            output_bytes_per_task: per_map,
            process_us_per_task: per_map / 400,
            locality: vec![],
        })
        .build();
    let per_red = bytes_total / n as u64;
    let reduce = b
        .stage("reduce", n)
        .op(Operator::ShuffleRead)
        .op(Operator::MergeSort)
        .op(Operator::AdhocSink)
        .profile(StageProfile {
            input_rows_per_task: per_red / 100,
            input_bytes_per_task: per_red,
            output_bytes_per_task: per_red / 10,
            process_us_per_task: per_red / 400,
            locality: vec![],
        })
        .build();
    b.edge(map, reduce);
    b.build().expect("shuffle job is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_sim::stats::fraction_at_most;

    #[test]
    fn trace_matches_fig8_shape() {
        let trace = generate_trace(&TraceConfig {
            jobs: 2_000,
            ..TraceConfig::default()
        });
        assert_eq!(trace.len(), 2_000);

        let stages: Vec<f64> = trace.iter().map(|t| t.dag.stage_count() as f64).collect();
        assert!(
            fraction_at_most(&stages, 4.0) > 0.78,
            "≥ ~80% of jobs ≤ 4 stages"
        );

        let tasks: Vec<f64> = trace.iter().map(|t| t.dag.total_tasks() as f64).collect();
        let f80 = fraction_at_most(&tasks, 80.0);
        assert!(
            f80 > 0.72 && f80 < 0.95,
            "~80% of jobs ≤ 80 tasks, got {f80}"
        );

        // Submissions are monotone.
        for w in trace.windows(2) {
            assert!(w[0].submit_at <= w[1].submit_at);
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let a = generate_trace(&TraceConfig {
            jobs: 50,
            ..TraceConfig::default()
        });
        let b = generate_trace(&TraceConfig {
            jobs: 50,
            ..TraceConfig::default()
        });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit_at, y.submit_at);
            assert_eq!(x.dag, y.dag);
        }
    }

    #[test]
    fn failure_times_match_fig8a() {
        let times: Vec<f64> = failure_times(20_000, 5)
            .iter()
            .map(|d| d.as_secs_f64())
            .collect();
        let p30 = fraction_at_most(&times, 30.0);
        let p200 = fraction_at_most(&times, 200.0);
        assert!((0.45..0.55).contains(&p30), "≈50% under 30s, got {p30}");
        assert!((0.85..0.95).contains(&p200), "≈90% under 200s, got {p200}");
    }

    #[test]
    fn failure_injections_reference_valid_targets() {
        let trace = generate_trace(&TraceConfig {
            jobs: 200,
            ..TraceConfig::default()
        });
        let inj = failure_injections(&trace, 0.3, 9);
        assert!(!inj.is_empty());
        for f in &inj {
            let dag = &trace[f.job_index].dag;
            let stage = dag.stage_by_name(&f.stage).expect("stage exists");
            assert!(f.task_index < stage.task_count);
        }
    }

    #[test]
    fn shuffle_buckets_land_in_their_ranges() {
        for (bucket, lo, hi) in [
            (ShuffleBucket::Small, 0, 9_999),
            (ShuffleBucket::Medium, 10_000, 90_000),
            (ShuffleBucket::Large, 90_001, u64::MAX),
        ] {
            for seed in 0..20 {
                let dag = shuffle_sized_job(1, bucket, seed);
                let size = dag.max_shuffle_edge_size();
                assert!(
                    (lo..=hi).contains(&size),
                    "{bucket:?} seed {seed}: edge size {size} outside [{lo}, {hi}]"
                );
            }
        }
    }
}
