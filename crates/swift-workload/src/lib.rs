//! # swift-workload — workload and trace generators for the reproduction
//!
//! Everything the evaluation (§V) runs:
//!
//! * [`tpch`] — a deterministic TPC-H-style data generator for the real
//!   engine, runnable SQL for Q9 (the paper's Fig. 1) and Q13, and
//!   calibrated simulator DAGs for all 22 queries, including the exact
//!   Fig. 4 shape of Q9 (four graphlets) and the Fig. 13 shape of Q13;
//! * [`terasort`] — the Table I `M×N` Terasort job builder (cluster scale)
//!   plus an engine-scale real-data terasort;
//! * [`trace`] — a production-trace generator matching the Fig. 8
//!   distributions (runtime, task/stage counts, failure times), failure
//!   injection sampling, and the Fig. 12 shuffle-size buckets;
//! * [`service`] — a multi-tenant arrival generator (Poisson base process
//!   with diurnal modulation, seeded storms and a Zipf tenant split) for
//!   the `swift-service` front door.

#![warn(missing_docs)]

pub mod service;
pub mod terasort;
pub mod tpch;
pub mod trace;

pub use service::{generate_service_workload, JobPriority, ServiceJob, ServiceWorkloadConfig};
pub use terasort::{teragen, terasort_dag, terasort_engine_job};
pub use tpch::{generate_catalog, q13_sim_dag, q9_sim_dag, tpch_sim_dag, Q13_SQL, Q9_SQL};
pub use trace::{
    failure_injections, failure_times, generate_trace, shuffle_sized_job, ShuffleBucket,
    TraceConfig, TraceFailure, TraceJob,
};
