//! Terasort workloads: the Table I cluster-scale job builder and an
//! engine-scale real-data variant.

use swift_dag::{DagBuilder, JobDag, Operator, StageProfile};
use swift_engine::{Catalog, Row, Schema, Table, Value};
use swift_sim::SimRng;

/// Builds the Table I Terasort job: `m` map tasks (each processing
/// `bytes_per_map` bytes — 200 MB in the paper) feeding `n` reduce tasks
/// that merge-sort their range partitions.
pub fn terasort_dag(job_id: u64, m: u32, n: u32, bytes_per_map: u64) -> JobDag {
    let mut b = DagBuilder::new(job_id, format!("terasort-{m}x{n}"));
    let map = b
        .stage("map", m)
        .op(Operator::TableScan {
            table: "teragen".into(),
        })
        // Each map task sorts its partition before writing ranged runs —
        // this is what makes the map→reduce edge a barrier edge.
        .op(Operator::SortBy)
        .op(Operator::ShuffleWrite)
        .profile(StageProfile {
            input_rows_per_task: bytes_per_map / 100, // 100-byte records
            input_bytes_per_task: bytes_per_map,
            output_bytes_per_task: bytes_per_map,
            process_us_per_task: bytes_per_map / 400, // sort rate ~400 B/us
            locality: vec![],
        })
        .build();
    let bytes_per_reduce = bytes_per_map * m as u64 / n as u64;
    let reduce = b
        .stage("reduce", n)
        .op(Operator::ShuffleRead)
        .op(Operator::MergeSort)
        .op(Operator::TableSink {
            table: "terasort-out".into(),
        })
        .profile(StageProfile {
            input_rows_per_task: bytes_per_reduce / 100,
            input_bytes_per_task: bytes_per_reduce,
            output_bytes_per_task: bytes_per_reduce,
            process_us_per_task: bytes_per_reduce / 400,
            locality: vec![],
        })
        .build();
    b.edge(map, reduce);
    b.build().expect("terasort DAG is valid")
}

/// Generates a `teragen` table of `rows` random `(key, payload)` records
/// for engine-scale terasort runs. Deterministic in `seed`.
pub fn teragen(rows: u64, seed: u64) -> Catalog {
    let mut rng = SimRng::new(seed);
    let data: Vec<Row> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(rng.range(0, u64::MAX / 2) as i64),
                Value::Str(format!("payload-{i:012}")),
            ]
        })
        .collect();
    let mut c = Catalog::new();
    c.register(Table::new(
        "teragen",
        Schema::new(vec!["key", "payload"]),
        data,
    ));
    c
}

/// Builds an engine-executable terasort job over the `teragen` table:
/// `m` scan tasks range-free hash... no — terasort needs a *global sort*,
/// so the plan sorts per map partition and merges in `n` reduce tasks via
/// a single final merge task (per-reduce ranges are approximated with a
/// hash partition plus a final merge stage, keeping the engine simple
/// while still moving all data through the shuffle).
pub fn terasort_engine_job(job_id: u64, m: u32, n: u32) -> swift_engine::EngineJob {
    use swift_engine::{EngineJob, ExecOp, OutputPartitioning, SortKey, StagePlan};
    let dag = {
        let mut b = DagBuilder::new(job_id, format!("terasort-engine-{m}x{n}"));
        let map = b
            .stage("map", m)
            .op(Operator::TableScan {
                table: "teragen".into(),
            })
            .op(Operator::SortBy)
            .op(Operator::ShuffleWrite)
            .build();
        let reduce = b
            .stage("reduce", n)
            .op(Operator::ShuffleRead)
            .op(Operator::MergeSort)
            .op(Operator::ShuffleWrite)
            .build();
        let merge = b
            .stage("merge", 1)
            .op(Operator::ShuffleRead)
            .op(Operator::MergeSort)
            .op(Operator::AdhocSink)
            .build();
        b.edge(map, reduce).edge(reduce, merge);
        b.build().expect("valid")
    };
    EngineJob {
        dag,
        plans: vec![
            StagePlan {
                ops: vec![
                    ExecOp::Scan {
                        table: "teragen".into(),
                    },
                    ExecOp::Sort(vec![SortKey {
                        col: 0,
                        desc: false,
                    }]),
                ],
                outputs: vec![OutputPartitioning::Hash(vec![0])],
            },
            StagePlan {
                ops: vec![ExecOp::Sort(vec![SortKey {
                    col: 0,
                    desc: false,
                }])],
                outputs: vec![OutputPartitioning::Single],
            },
            StagePlan {
                ops: vec![ExecOp::Sort(vec![SortKey {
                    col: 0,
                    desc: false,
                }])],
                outputs: vec![],
            },
        ],
        output_columns: vec!["key".into(), "payload".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_dag::partition;

    #[test]
    fn terasort_dag_is_two_stage_barrier() {
        let dag = terasort_dag(1, 250, 250, 200 << 20);
        assert_eq!(dag.stage_count(), 2);
        assert_eq!(dag.total_tasks(), 500);
        let p = partition(&dag);
        assert_eq!(p.len(), 2, "map sorts -> barrier edge -> two graphlets");
        assert_eq!(dag.max_shuffle_edge_size(), 250 * 250);
    }

    #[test]
    fn teragen_is_deterministic() {
        let a = teragen(100, 3);
        let b = teragen(100, 3);
        assert_eq!(
            a.get("teragen").unwrap().rows,
            b.get("teragen").unwrap().rows
        );
    }

    #[test]
    fn engine_terasort_produces_globally_sorted_output() {
        let catalog = teragen(500, 42);
        let job = terasort_engine_job(1, 4, 3);
        let engine = swift_engine::Engine::new(catalog);
        let out = engine.run(&job).unwrap();
        assert_eq!(out.len(), 500);
        for w in out.windows(2) {
            assert!(w[0][0].total_cmp(&w[1][0]).is_le(), "output must be sorted");
        }
    }
}
