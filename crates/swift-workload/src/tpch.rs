//! TPC-H-style workload: a deterministic data generator for the real
//! engine, runnable SQL for representative queries, and calibrated
//! simulator DAGs for all 22 queries (including the exact Fig. 4 shape of
//! Q9 and the Fig. 13 shape of Q13).

use swift_dag::{DagBuilder, JobDag, Operator, StageId, StageProfile};
use swift_engine::{Catalog, Row, Schema, Table, Value};
use swift_sim::SimRng;

/// Generates a TPC-H-style catalog at the given micro scale factor
/// (`sf = 1` ≈ a few thousand rows total — engine-scale, not cluster-scale;
/// the cluster-scale numbers live in the simulator DAGs below).
///
/// Tables and columns follow TPC-H, restricted to the columns the bundled
/// queries touch. Generation is deterministic in `seed`.
pub fn generate_catalog(sf: u32, seed: u64) -> Catalog {
    let sf = sf.max(1) as i64;
    let mut rng = SimRng::new(seed);
    let mut c = Catalog::new();

    let nations = [
        "ALGERIA",
        "ARGENTINA",
        "BRAZIL",
        "CANADA",
        "EGYPT",
        "ETHIOPIA",
        "FRANCE",
        "GERMANY",
        "INDIA",
        "INDONESIA",
        "IRAN",
        "IRAQ",
        "JAPAN",
        "JORDAN",
        "KENYA",
        "MOROCCO",
        "MOZAMBIQUE",
        "PERU",
        "CHINA",
        "ROMANIA",
        "SAUDI ARABIA",
        "VIETNAM",
        "RUSSIA",
        "UNITED KINGDOM",
        "UNITED STATES",
    ];
    let regions = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
    let colors = [
        "green", "red", "blue", "ivory", "navy", "plum", "khaki", "puff", "salmon", "peach",
    ];
    let segments = [
        "BUILDING",
        "AUTOMOBILE",
        "MACHINERY",
        "HOUSEHOLD",
        "FURNITURE",
    ];
    let priorities = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

    let region_rows: Vec<Row> = regions
        .iter()
        .enumerate()
        .map(|(i, r)| vec![Value::Int(i as i64), Value::Str(r.to_string())])
        .collect();
    c.register(Table::new(
        "tpch_region",
        Schema::new(vec!["r_regionkey", "r_name"]),
        region_rows,
    ));

    let nation_rows: Vec<Row> = nations
        .iter()
        .enumerate()
        .map(|(i, n)| {
            vec![
                Value::Int(i as i64),
                Value::Str(n.to_string()),
                Value::Int((i % 5) as i64),
            ]
        })
        .collect();
    c.register(Table::new(
        "tpch_nation",
        Schema::new(vec!["n_nationkey", "n_name", "n_regionkey"]),
        nation_rows,
    ));

    let n_supp = 10 * sf;
    let supplier: Vec<Row> = (0..n_supp)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Str(format!("Supplier#{i:06}")),
                Value::Int(rng.range(0, 25) as i64),
            ]
        })
        .collect();
    c.register(Table::new(
        "tpch_supplier",
        Schema::new(vec!["s_suppkey", "s_name", "s_nationkey"]),
        supplier,
    ));

    let n_part = 40 * sf;
    let part: Vec<Row> = (0..n_part)
        .map(|i| {
            let color = colors[rng.range(0, colors.len() as u64) as usize];
            vec![
                Value::Int(i),
                Value::Str(format!("{color} polished item {i}")),
                Value::Str(format!("Brand#{}", rng.range(1, 6))),
                Value::Int(rng.range(1, 51) as i64),
            ]
        })
        .collect();
    c.register(Table::new(
        "tpch_part",
        Schema::new(vec!["p_partkey", "p_name", "p_brand", "p_size"]),
        part,
    ));

    let n_ps = 80 * sf;
    let partsupp: Vec<Row> = (0..n_ps)
        .map(|i| {
            vec![
                Value::Int(i % n_part),
                Value::Int(i % n_supp),
                Value::Float((rng.range(100, 100_000) as f64) / 100.0),
                Value::Int(rng.range(1, 10_000) as i64),
            ]
        })
        .collect();
    c.register(Table::new(
        "tpch_partsupp",
        Schema::new(vec![
            "ps_partkey",
            "ps_suppkey",
            "ps_supplycost",
            "ps_availqty",
        ]),
        partsupp,
    ));

    let n_cust = 30 * sf;
    let customer: Vec<Row> = (0..n_cust)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Str(format!("Customer#{i:06}")),
                Value::Int(rng.range(0, 25) as i64),
                Value::Str(segments[rng.range(0, segments.len() as u64) as usize].to_string()),
            ]
        })
        .collect();
    c.register(Table::new(
        "tpch_customer",
        Schema::new(vec!["c_custkey", "c_name", "c_nationkey", "c_mktsegment"]),
        customer,
    ));

    let n_orders = 150 * sf;
    let orders: Vec<Row> = (0..n_orders)
        .map(|i| {
            let year = 1992 + rng.range(0, 7);
            let month = rng.range(1, 13);
            let day = rng.range(1, 29);
            let special = rng.chance(0.2);
            vec![
                Value::Int(i),
                Value::Int(rng.range(0, n_cust as u64) as i64),
                Value::Str(format!("{year:04}-{month:02}-{day:02}")),
                Value::Str(priorities[rng.range(0, priorities.len() as u64) as usize].to_string()),
                Value::Str(if special {
                    "special requests noted".into()
                } else {
                    "none".to_string()
                }),
            ]
        })
        .collect();
    c.register(Table::new(
        "tpch_orders",
        Schema::new(vec![
            "o_orderkey",
            "o_custkey",
            "o_orderdate",
            "o_orderpriority",
            "o_comment",
        ]),
        orders,
    ));

    let n_li = 600 * sf;
    let lineitem: Vec<Row> = (0..n_li)
        .map(|_| {
            let qty = rng.range(1, 51) as i64;
            let price = (rng.range(100_000, 10_000_000) as f64) / 100.0;
            vec![
                Value::Int(rng.range(0, n_orders as u64) as i64),
                Value::Int(rng.range(0, n_part as u64) as i64),
                Value::Int(rng.range(0, n_supp as u64) as i64),
                Value::Int(qty),
                Value::Float(price),
                Value::Float((rng.range(0, 11) as f64) / 100.0),
                Value::Str(format!(
                    "199{}-0{}-1{}",
                    rng.range(2, 9),
                    rng.range(1, 9),
                    rng.range(0, 9)
                )),
            ]
        })
        .collect();
    c.register(Table::new(
        "tpch_lineitem",
        Schema::new(vec![
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_shipdate",
        ]),
        lineitem,
    ));

    c
}

/// The paper's Fig. 1 query — TPC-H Q9 — adapted to the generated columns.
/// Runnable through `swift-sql` on the engine.
pub const Q9_SQL: &str = "\
select nation, o_year, sum(amount) as sum_profit
from (
  select n_name as nation, substr(o_orderdate, 1, 4) as o_year,
         l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount
  from tpch_supplier s
  join tpch_lineitem l on s.s_suppkey = l.l_suppkey
  join tpch_partsupp ps on ps.ps_suppkey = l.l_suppkey and ps.ps_partkey = l.l_partkey
  join tpch_part p on p.p_partkey = l.l_partkey
  join tpch_orders o on o.o_orderkey = l.l_orderkey
  join tpch_nation n on s.s_nationkey = n.n_nationkey
  where p_name like '%green%'
) profit
group by nation, o_year
order by nation, o_year desc
limit 999999;";

/// TPC-H Q13 with its original LEFT OUTER JOIN shape (the comment filter
/// lives in the ON clause, so customers without matching orders survive
/// with `c_count = 0`), adapted to the generated columns.
pub const Q13_SQL: &str = "\
select c_count, count(*) as custdist
from (
  select c.c_custkey as ckey, count(o.o_orderkey) as c_count
  from tpch_customer c
  left outer join tpch_orders o
    on c.c_custkey = o.o_custkey and not o.o_comment like '%special%'
  group by c.c_custkey
) c_orders
group by c_count
order by custdist desc, c_count desc;";

/// Cluster-scale table sizes at 1 TB (paper §V-C1), expressed as scan task
/// counts (Fig. 4 shows lineitem scanning with 956 tasks) and bytes.
const LINEITEM: (u32, u64) = (956, 742 << 30);
const ORDERS: (u32, u64) = (220, 170 << 30);
const PARTSUPP: (u32, u64) = (220, 115 << 30);
const PART: (u32, u64) = (30, 23 << 30);
const CUSTOMER: (u32, u64) = (30, 23 << 30);
const SUPPLIER: (u32, u64) = (3, 1 << 30);
const NATION: (u32, u64) = (1, 1 << 20);
const REGION: (u32, u64) = (1, 1 << 20);

/// Shape of one simulated TPC-H query: which tables it scans, how many
/// join stages follow, whether the plan is sort-heavy (merge joins /
/// streamed aggregation — barrier edges), and the final reduce fan-in.
struct QueryShape {
    scans: &'static [(u32, u64)],
    joins: u32,
    sort_heavy: bool,
    agg_tasks: u32,
}

/// Per-query shapes for Q1..Q22, from the queries' published table footprints.
fn shape(q: usize) -> QueryShape {
    use self::{
        CUSTOMER as C, LINEITEM as L, NATION as N, ORDERS as O, PART as P, PARTSUPP as PS,
        REGION as R, SUPPLIER as S,
    };
    let (scans, joins, sort_heavy): (&[(u32, u64)], u32, bool) = match q {
        1 => (&[L], 0, true),
        2 => (&[P, S, PS, N, R], 4, false),
        3 => (&[C, O, L], 2, true),
        4 => (&[O, L], 1, false),
        5 => (&[C, O, L, S, N, R], 5, false),
        6 => (&[L], 0, false),
        7 => (&[S, L, O, C, N], 4, true),
        8 => (&[P, S, L, O, C, N, R], 6, false),
        9 => (&[S, L, PS, P, O, N], 5, true),
        10 => (&[C, O, L, N], 3, true),
        11 => (&[PS, S, N], 2, true),
        12 => (&[O, L], 1, false),
        13 => (&[C, O], 1, true),
        14 => (&[L, P], 1, false),
        15 => (&[S, L], 1, true),
        16 => (&[PS, P, S], 2, false),
        17 => (&[L, P], 1, false),
        18 => (&[C, O, L], 2, true),
        19 => (&[L, P], 1, false),
        20 => (&[S, N, PS, P, L], 4, false),
        21 => (&[S, L, O, N], 3, true),
        22 => (&[C, O], 1, false),
        _ => (&[L], 0, false),
    };
    QueryShape {
        scans,
        joins,
        sort_heavy,
        agg_tasks: 50,
    }
}

/// Builds the simulator DAG for TPC-H query `q` (1..=22) at the 1 TB /
/// 100-node calibration. `job_id` namespaces the job.
pub fn tpch_sim_dag(q: usize, job_id: u64) -> JobDag {
    assert!((1..=22).contains(&q), "TPC-H has queries 1..=22");
    if q == 9 {
        return q9_sim_dag(job_id);
    }
    if q == 13 {
        return q13_sim_dag(job_id);
    }
    let sh = shape(q);
    let mut b = DagBuilder::new(job_id, format!("tpch-q{q}"));
    let mut scan_ids: Vec<StageId> = Vec::new();
    for (i, &(tasks, bytes)) in sh.scans.iter().enumerate() {
        let mut sb = b
            .stage(format!("M{}", i + 1), tasks)
            .op(Operator::TableScan {
                table: format!("t{i}"),
            });
        if sh.sort_heavy {
            sb = sb.op(Operator::MergeSort);
        }
        scan_ids.push(
            sb.op(Operator::ShuffleWrite)
                .profile(scan_profile(tasks, bytes))
                .build(),
        );
    }
    // Left-deep joins over the scans.
    let mut current = scan_ids[0];
    let mut current_bytes = sh.scans[0].1 / 3;
    for j in 0..sh.joins.min(sh.scans.len() as u32 - 1) {
        let right = scan_ids[(j + 1) as usize];
        let tasks = (sh.scans[0].0 / 2).clamp(20, 400);
        let join_op = if sh.sort_heavy {
            Operator::MergeJoin
        } else {
            Operator::HashJoin
        };
        let mut sb = b
            .stage(format!("J{}", j + 1), tasks)
            .op(Operator::ShuffleRead)
            .op(join_op);
        if sh.sort_heavy {
            sb = sb.op(Operator::MergeSort);
        }
        let join = sb
            .op(Operator::ShuffleWrite)
            .profile(mid_profile(tasks, current_bytes))
            .build();
        b.edge(current, join);
        b.edge(right, join);
        current = join;
        current_bytes /= 2;
    }
    // Aggregate.
    let agg_op = if sh.sort_heavy {
        Operator::StreamedAggregate
    } else {
        Operator::HashAggregate
    };
    let agg = b
        .stage("R_agg", sh.agg_tasks)
        .op(Operator::ShuffleRead)
        .op(agg_op)
        .op(Operator::SortBy)
        .op(Operator::ShuffleWrite)
        .profile(mid_profile(sh.agg_tasks, current_bytes / 4))
        .build();
    b.edge(current, agg);
    // Final merge/sink.
    let sink = b
        .stage("R_sink", 1)
        .op(Operator::ShuffleRead)
        .op(Operator::MergeSort)
        .op(Operator::AdhocSink)
        .profile(mid_profile(1, 1 << 20))
        .build();
    b.edge(agg, sink);
    b.build().expect("generated TPC-H DAG is valid")
}

fn scan_profile(tasks: u32, table_bytes: u64) -> StageProfile {
    let per = table_bytes / tasks as u64;
    StageProfile {
        input_rows_per_task: per / 120,
        input_bytes_per_task: per,
        output_bytes_per_task: per / 3, // projection/filter reduce
        process_us_per_task: per / 300, // ~300 B/us processing rate
        locality: vec![],
    }
}

fn mid_profile(tasks: u32, input_bytes: u64) -> StageProfile {
    let per = input_bytes / tasks as u64;
    StageProfile {
        input_rows_per_task: per / 100,
        input_bytes_per_task: per,
        output_bytes_per_task: per / 2,
        process_us_per_task: per / 250,
        locality: vec![],
    }
}

/// The exact Fig. 4 DAG of TPC-H Q9: stages M1–M8, R9, J10, R11, R12 with
/// the published task counts, partitioning into the four published
/// graphlets.
pub fn q9_sim_dag(job_id: u64) -> JobDag {
    let mut b = DagBuilder::new(job_id, "tpch-q9");
    let scan = |b: &mut DagBuilder, name: &str, tasks: u32, bytes: u64| {
        b.stage(name, tasks)
            .op(Operator::TableScan {
                table: name.to_lowercase(),
            })
            .op(Operator::ShuffleWrite)
            .profile(scan_profile(tasks, bytes))
            .build()
    };
    let m1 = scan(&mut b, "M1", 956, LINEITEM.1);
    let m2 = scan(&mut b, "M2", 220, PARTSUPP.1);
    let m3 = scan(&mut b, "M3", 3, SUPPLIER.1);
    let j4 = b
        .stage("J4", 403)
        .op(Operator::ShuffleRead)
        .op(Operator::HashJoin)
        .op(Operator::MergeSort)
        .op(Operator::ShuffleWrite)
        .profile(mid_profile(403, 250 << 30))
        .build();
    let m5 = scan(&mut b, "M5", 403, PART.1);
    let j6 = b
        .stage("J6", 403)
        .op(Operator::ShuffleRead)
        .op(Operator::MergeJoin)
        .op(Operator::MergeSort)
        .op(Operator::ShuffleWrite)
        .profile(mid_profile(403, 120 << 30))
        .build();
    let m7 = scan(&mut b, "M7", 220, ORDERS.1);
    let m8 = scan(&mut b, "M8", 20, NATION.1.max(1 << 30));
    let r9 = b
        .stage("R9", 100)
        .op(Operator::ShuffleRead)
        .op(Operator::HashJoin)
        .op(Operator::ShuffleWrite)
        .profile(mid_profile(100, 60 << 30))
        .build();
    let j10 = b
        .stage("J10", 200)
        .op(Operator::ShuffleRead)
        .op(Operator::MergeJoin)
        .op(Operator::MergeSort)
        .op(Operator::ShuffleWrite)
        .profile(mid_profile(200, 60 << 30))
        .build();
    let r11 = b
        .stage("R11", 50)
        .op(Operator::ShuffleRead)
        .op(Operator::StreamedAggregate)
        .op(Operator::ShuffleWrite)
        .profile(mid_profile(50, 4 << 30))
        .build();
    let r12 = b
        .stage("R12", 1)
        .op(Operator::ShuffleRead)
        .op(Operator::AdhocSink)
        .profile(mid_profile(1, 64 << 20))
        .build();
    b.edge(m1, j4).edge(m2, j4).edge(m3, j4);
    b.edge(j4, j6).edge(m5, j6);
    b.edge(m7, r9).edge(m8, r9);
    b.edge(r9, j10).edge(j6, j10);
    b.edge(j10, r11).edge(r11, r12);
    b.build().expect("Q9 DAG is valid")
}

/// The exact Fig. 13 DAG of TPC-H Q13: M1 (498 tasks), M2 (72), J3 (300),
/// R4 (100), R5 (1), R6 (1) with the published per-task input sizes.
pub fn q13_sim_dag(job_id: u64) -> JobDag {
    let mut b = DagBuilder::new(job_id, "tpch-q13");
    let prof = |rows: u64, bytes: u64| StageProfile {
        input_rows_per_task: rows,
        input_bytes_per_task: bytes,
        output_bytes_per_task: bytes / 3,
        process_us_per_task: bytes / 250,
        locality: vec![],
    };
    // Fig. 13: input records/sizes per task.
    let m1 = b
        .stage("M1", 498)
        .op(Operator::TableScan {
            table: "orders".into(),
        })
        .op(Operator::ShuffleWrite)
        .profile(prof(3_012_048, 176 << 20))
        .build();
    let m2 = b
        .stage("M2", 72)
        .op(Operator::TableScan {
            table: "customer".into(),
        })
        .op(Operator::ShuffleWrite)
        .profile(prof(2_861_350, 26 << 20))
        .build();
    let j3 = b
        .stage("J3", 300)
        .op(Operator::ShuffleRead)
        .op(Operator::HashJoin)
        .op(Operator::HashAggregate)
        .op(Operator::MergeSort)
        .op(Operator::ShuffleWrite)
        .profile(prof(262_697, 5 << 20))
        .build();
    let r4 = b
        .stage("R4", 100)
        .op(Operator::ShuffleRead)
        .op(Operator::StreamedAggregate)
        .op(Operator::MergeSort)
        .op(Operator::ShuffleWrite)
        .profile(prof(262_698, 2 << 20))
        .build();
    let r5 = b
        .stage("R5", 1)
        .op(Operator::ShuffleRead)
        .op(Operator::MergeSort)
        .op(Operator::ShuffleWrite)
        .profile(prof(28, 1 << 10))
        .build();
    let r6 = b
        .stage("R6", 1)
        .op(Operator::ShuffleRead)
        .op(Operator::AdhocSink)
        .profile(prof(30, 1 << 10))
        .build();
    b.edge(m1, j3)
        .edge(m2, j3)
        .edge(j3, r4)
        .edge(r4, r5)
        .edge(r5, r6);
    b.build().expect("Q13 DAG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_dag::partition;

    #[test]
    fn catalog_has_all_tables() {
        let c = generate_catalog(1, 7);
        for t in [
            "tpch_region",
            "tpch_nation",
            "tpch_supplier",
            "tpch_part",
            "tpch_partsupp",
            "tpch_customer",
            "tpch_orders",
            "tpch_lineitem",
        ] {
            assert!(c.get(t).is_some(), "missing {t}");
            assert!(!c.get(t).unwrap().rows.is_empty(), "{t} empty");
        }
        assert_eq!(c.get("tpch_lineitem").unwrap().rows.len(), 600);
    }

    #[test]
    fn catalog_is_deterministic_and_scales() {
        let a = generate_catalog(1, 7);
        let b = generate_catalog(1, 7);
        assert_eq!(
            a.get("tpch_orders").unwrap().rows,
            b.get("tpch_orders").unwrap().rows
        );
        let big = generate_catalog(3, 7);
        assert_eq!(big.get("tpch_lineitem").unwrap().rows.len(), 1800);
    }

    #[test]
    fn q9_dag_partitions_into_four_graphlets() {
        let dag = q9_sim_dag(9);
        assert_eq!(dag.stage_count(), 12);
        assert_eq!(
            dag.total_tasks(),
            956 + 220 + 3 + 403 + 403 + 403 + 220 + 20 + 100 + 200 + 50 + 1
        );
        let p = partition(&dag);
        assert_eq!(p.len(), 4, "Fig. 4 shows four graphlets");
    }

    #[test]
    fn q13_dag_matches_fig13() {
        let dag = q13_sim_dag(13);
        assert_eq!(dag.stage_count(), 6);
        let names: Vec<&str> = dag.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["M1", "M2", "J3", "R4", "R5", "R6"]);
        assert_eq!(dag.stage_by_name("M1").unwrap().task_count, 498);
        assert_eq!(dag.stage_by_name("J3").unwrap().task_count, 300);
    }

    #[test]
    fn all_22_queries_build_valid_dags() {
        for q in 1..=22 {
            let dag = tpch_sim_dag(q, q as u64);
            assert!(dag.stage_count() >= 2, "q{q}");
            assert!(dag.total_tasks() > 0, "q{q}");
            let p = partition(&dag);
            assert!(p.submission_order().len() == p.len(), "q{q} graphlet order");
        }
    }

    #[test]
    fn sort_heavy_queries_have_more_graphlets() {
        let q6 = partition(&tpch_sim_dag(6, 6)); // scan + agg, hash
        let q3 = partition(&tpch_sim_dag(3, 3)); // sort-heavy
        assert!(q3.len() > q6.len());
    }
}
