//! `swift-sql-shell` — an interactive SQL shell over the Swift engine,
//! preloaded with the TPC-H-style catalog.
//!
//! ```sh
//! cargo run -p swift-cli --release            # interactive
//! cargo run -p swift-cli --release -- --sf 4 "select count(*) as n from tpch_lineitem"
//! ```
//!
//! Shell commands:
//! * `\t` / `\tables` — list tables
//! * `\d <table>` — describe a table
//! * `\plan <sql>` — show the stage DAG and graphlet partitioning
//! * `\sort on|off` — toggle the sort-merge planner mode (Fig. 4 plans)
//! * `\q` — quit
//!
//! The binary also fronts the static analyzer and the run tracer:
//! * `swift-sql-shell analyze --workspace --deny-warnings`
//! * `swift-sql-shell trace <scenario> --seed N [--out FILE] [--chrome FILE]`
//!   (see `trace --list` for the scenario registry)

use std::io::{BufRead, Write};
use swift_dag::partition;
use swift_engine::{Engine, Row, Value};
use swift_sql::{compile, run_sql, PlanOptions};
use swift_workload::generate_catalog;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `swift-sql-shell analyze ...` delegates to the swift-analyze CLI so
    // the static-analysis passes are reachable from the main binary.
    if raw.first().map(String::as_str) == Some("analyze") {
        std::process::exit(swift_analyze::run_cli(&raw[1..]));
    }
    // `swift-sql-shell trace <scenario> ...` delegates to the swift-trace
    // CLI: deterministic scenario runs dumped as text or Chrome JSON.
    if raw.first().map(String::as_str) == Some("trace") {
        std::process::exit(swift_trace::run_cli(&raw[1..]));
    }
    // `swift-sql-shell serve ...` / `swift-sql-shell service-replay ...`
    // delegate to the swift-service CLI: the multi-tenant front door and
    // its scenario replayer (the subcommand word is part of the args).
    if matches!(
        raw.first().map(String::as_str),
        Some("serve") | Some("service-replay")
    ) {
        std::process::exit(swift_service::run_cli(&raw));
    }
    let mut args = raw.into_iter();
    let mut sf = 2u32;
    let mut one_shot: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sf" => {
                sf = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--sf needs a positive integer"));
            }
            "--help" | "-h" => {
                println!("usage: swift-sql-shell [--sf N] [SQL]");
                println!("       swift-sql-shell analyze [swift-analyze flags]");
                println!("       swift-sql-shell trace <scenario> [swift-trace flags]");
                println!("       swift-sql-shell serve [swift-service flags]");
                println!("       swift-sql-shell service-replay <scenario> [swift-service flags]");
                return;
            }
            sql => one_shot = Some(sql.to_string()),
        }
    }

    let engine = Engine::new(generate_catalog(sf, 42));
    let mut opts = PlanOptions::default();

    if let Some(sql) = one_shot {
        execute(&engine, &sql, &opts);
        return;
    }

    println!("swift-sql-shell — TPC-H catalog at micro scale factor {sf}");
    println!("type SQL, or \\tables, \\d <table>, \\plan <sql>, \\sort on|off, \\q");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("swift> ");
        } else {
            print!("   ..> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match shell_command(&engine, trimmed, &mut opts) {
                ShellOutcome::Quit => break,
                ShellOutcome::Handled => continue,
            }
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') || trimmed.is_empty() && !buffer.trim().is_empty() {
            let sql = std::mem::take(&mut buffer);
            if !sql.trim().is_empty() {
                execute(&engine, &sql, &opts);
            }
        }
    }
}

enum ShellOutcome {
    Quit,
    Handled,
}

fn shell_command(engine: &Engine, cmd: &str, opts: &mut PlanOptions) -> ShellOutcome {
    let mut parts = cmd.splitn(2, ' ');
    match parts.next().unwrap_or("") {
        "\\q" | "\\quit" => return ShellOutcome::Quit,
        "\\t" | "\\tables" => {
            for t in engine.catalog().table_names() {
                let rows = engine.catalog().get(t).map_or(0, |t| t.rows.len());
                println!("  {t} ({rows} rows)");
            }
        }
        "\\d" => {
            let Some(name) = parts.next() else {
                println!("usage: \\d <table>");
                return ShellOutcome::Handled;
            };
            match engine.catalog().get(name.trim()) {
                Some(t) => {
                    for f in t.schema.fields() {
                        println!("  {f}");
                    }
                }
                None => println!("unknown table {name}"),
            }
        }
        "\\plan" => {
            let Some(sql) = parts.next() else {
                println!("usage: \\plan <sql>");
                return ShellOutcome::Handled;
            };
            match compile(sql, engine.catalog(), 1, opts) {
                Ok(job) => {
                    print!("{}", job.dag.render());
                    let p = partition(&job.dag);
                    println!("graphlets: {}", p.len());
                    for g in p.graphlets() {
                        let names: Vec<&str> = g
                            .stages
                            .iter()
                            .map(|&s| job.dag.stage(s).name.as_str())
                            .collect();
                        println!("  {:?}: {names:?}", g.id);
                    }
                }
                Err(e) => println!("{e}"),
            }
        }
        "\\sort" => {
            match parts.next().map(str::trim) {
                Some("on") => opts.prefer_sort = true,
                Some("off") => opts.prefer_sort = false,
                _ => println!("usage: \\sort on|off"),
            }
            println!(
                "sort-merge planner mode: {}",
                if opts.prefer_sort { "on" } else { "off" }
            );
        }
        other => println!("unknown command {other}; try \\tables, \\d, \\plan, \\sort, \\q"),
    }
    ShellOutcome::Handled
}

fn execute(engine: &Engine, sql: &str, opts: &PlanOptions) {
    let start = std::time::Instant::now();
    match run_sql(engine, sql, opts) {
        Ok((cols, rows)) => {
            print_result(&cols, &rows);
            println!(
                "({} rows in {:.3}s)",
                rows.len(),
                start.elapsed().as_secs_f64()
            );
        }
        Err(e) => println!("error: {e}"),
    }
}

fn print_result(cols: &[String], rows: &[Row]) {
    let fmt = |v: &Value| match v {
        Value::Float(f) => format!("{f:.4}"),
        other => other.to_string(),
    };
    let mut widths: Vec<usize> = cols.iter().map(String::len).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .take(200)
        .map(|r| r.iter().map(fmt).collect())
        .collect();
    for row in &rendered {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", joined.join(" | "));
    };
    line(&cols.iter().map(String::clone).collect::<Vec<_>>());
    println!(
        "  {}",
        "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len())
    );
    for row in &rendered {
        line(row);
    }
    if rows.len() > 200 {
        println!("  ... ({} more rows)", rows.len() - 200);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
