//! The real (byte-moving) Cache Worker: an in-memory shuffle segment store
//! with LRU spill to actual disk files.
//!
//! `swift-engine` uses one `CacheWorkerStore` per simulated machine (or one
//! shared store in single-process runs) as the staging area for Local and
//! Remote shuffle. Unlike the accounting model in [`crate::memory`], this
//! store holds real payloads and really writes spill files.

use crate::bytes::Bytes;
use crate::memory::SegmentKey;
use crate::sync::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::PathBuf;
#[derive(Debug)]
enum Payload {
    Memory(Bytes),
    Spilled { path: PathBuf },
}

/// Sentinel "no node" index for the intrusive LRU list.
const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct LruNode {
    key: SegmentKey,
    prev: u32,
    next: u32,
}

/// Intrusive doubly-linked recency list over slab-allocated nodes.
///
/// Every *in-memory* segment owns exactly one node; spilled segments own
/// none. A touch (put or peek) unlinks the node and relinks it at the
/// MRU end — O(1), where the previous design re-keyed a
/// `BTreeMap<SegmentKey, clock>` on every access and sorted all stamps
/// on every eviction. The eviction order (walk from the LRU end) is the
/// same least-recently-touched-first order the stamps produced.
#[derive(Debug)]
struct LruList {
    nodes: Vec<LruNode>,
    free: Vec<u32>,
    /// Least recently used (eviction starts here).
    head: u32,
    /// Most recently used (touches land here).
    tail: u32,
}

impl Default for LruList {
    fn default() -> Self {
        LruList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }
}

impl LruList {
    /// Links `key` at the MRU end, returning its node index.
    fn push_mru(&mut self, key: SegmentKey) -> u32 {
        let node = LruNode {
            key,
            prev: self.tail,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        idx
    }

    /// Unlinks the node at `idx` and returns its slot to the free list.
    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.free.push(idx);
    }

    /// Moves the node at `idx` to the MRU end, returning its (possibly
    /// recycled) new index.
    fn touch(&mut self, idx: u32) -> u32 {
        let key = self.nodes[idx as usize].key;
        self.unlink(idx);
        self.push_mru(key)
    }

    /// Key of the least recently used segment, if any is in memory.
    fn lru_key(&self) -> Option<SegmentKey> {
        (self.head != NIL).then(|| self.nodes[self.head as usize].key)
    }
}

/// One stored segment plus its recency-list node (`NIL` when spilled —
/// spilled segments never compete for memory, so they are not tracked).
#[derive(Debug)]
struct Entry {
    payload: Payload,
    lru: u32,
}

#[derive(Default)]
struct StoreState {
    segments: BTreeMap<SegmentKey, Entry>,
    lru: LruList,
    in_memory: u64,
    spilled_bytes_total: u64,
}

impl StoreState {
    /// Debug cross-check: the recency list is a pure cache of "which
    /// segments are in memory" — its key set must equal the Memory
    /// entries, and every entry's node index must point back at its key.
    #[cfg(debug_assertions)]
    fn check_lru_invariant(&self) {
        let mut listed = 0;
        for (k, e) in &self.segments {
            match e.payload {
                Payload::Memory(_) => {
                    assert_ne!(e.lru, NIL, "in-memory segment missing from LRU list");
                    assert_eq!(
                        self.lru.nodes[e.lru as usize].key, *k,
                        "LRU node points at the wrong key"
                    );
                    listed += 1;
                }
                Payload::Spilled { .. } => {
                    assert_eq!(e.lru, NIL, "spilled segment still on the LRU list")
                }
            }
        }
        let mut walked = 0;
        let mut i = self.lru.head;
        while i != NIL {
            walked += 1;
            i = self.lru.nodes[i as usize].next;
        }
        assert_eq!(walked, listed, "LRU list length drifted from Memory count");
    }

    #[cfg(not(debug_assertions))]
    fn check_lru_invariant(&self) {}
}

/// A thread-safe shuffle segment store with bounded memory and LRU spill.
///
/// Producers [`put`](CacheWorkerStore::put) segments; consumers
/// [`collect`](CacheWorkerStore::collect) all segments of their partition,
/// blocking until the expected number of producers has delivered. Segments
/// are removed when collected (the §III-B "delete after consumed" rule);
/// [`peek`](CacheWorkerStore::peek) reads without consuming, which failure
/// recovery uses to re-serve data to re-run consumers.
pub struct CacheWorkerStore {
    capacity: u64,
    // The store emulates the Cache Worker *service*: producers and
    // consumers on OS threads block on it in integration tests. It is
    // never on the deterministic sim step path (the simulator models
    // shuffles as queue events), so the locking is deliberate.
    state: Mutex<StoreState>, // swift-analyze: allow(SW008) — threaded service emulation, not sim state
    arrived: Condvar, // swift-analyze: allow(SW008) — threaded service emulation, not sim state
    spill_dir: PathBuf,
}

// Manual impl: must not take the lock (Debug can be called while held).
impl std::fmt::Debug for CacheWorkerStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheWorkerStore")
            .field("capacity", &self.capacity)
            .field("spill_dir", &self.spill_dir)
            .finish_non_exhaustive()
    }
}

impl CacheWorkerStore {
    /// Creates a store holding at most `capacity` bytes in memory; overflow
    /// spills to a fresh directory under the system temp dir.
    pub fn new(capacity: u64) -> io::Result<Self> {
        // Probe for an unused directory instead of a process-global
        // counter: `create_dir` failing with AlreadyExists is the
        // atomicity primitive, so no shared mutable state is needed.
        let base = std::env::temp_dir();
        let pid = std::process::id();
        let mut id = 0u32;
        let spill_dir = loop {
            let cand = base.join(format!("swift-cache-worker-{pid}-{id}"));
            match fs::create_dir(&cand) {
                Ok(()) => break cand,
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists && id < 10_000 => id += 1,
                Err(e) => return Err(e),
            }
        };
        Ok(CacheWorkerStore {
            capacity,
            state: Mutex::new(StoreState::default()),
            arrived: Condvar::new(),
            spill_dir,
        })
    }

    /// Bytes currently resident in memory.
    pub fn in_memory_bytes(&self) -> u64 {
        self.state.lock().in_memory
    }

    /// Total bytes spilled to disk over the store's lifetime.
    pub fn spilled_bytes_total(&self) -> u64 {
        self.state.lock().spilled_bytes_total
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.state.lock().segments.len()
    }

    /// Stores `data` under `key`, spilling LRU segments if the memory cap
    /// is exceeded. Overwrites any previous segment with the same key
    /// (idempotent producer re-runs).
    pub fn put(&self, key: SegmentKey, data: Bytes) -> io::Result<()> {
        let mut st = self.state.lock();
        Self::remove_locked(&mut st, &key)?;
        st.in_memory += data.len() as u64;
        let node = st.lru.push_mru(key);
        st.segments.insert(
            key,
            Entry {
                payload: Payload::Memory(data),
                lru: node,
            },
        );
        self.enforce_capacity(&mut st)?;
        st.check_lru_invariant();
        drop(st);
        self.arrived.notify_all();
        Ok(())
    }

    /// Reads one segment without consuming it, loading from the spill file
    /// if necessary (the segment stays spilled). Returns `None` if the key
    /// is unknown.
    pub fn peek(&self, key: SegmentKey) -> io::Result<Option<Bytes>> {
        let mut guard = self.state.lock();
        let st = &mut *guard;
        match st.segments.get_mut(&key) {
            None => Ok(None),
            Some(e) => match &e.payload {
                Payload::Memory(b) => {
                    let out = b.clone();
                    e.lru = st.lru.touch(e.lru);
                    Ok(Some(out))
                }
                Payload::Spilled { path, .. } => {
                    let path = path.clone();
                    drop(guard);
                    let mut buf = Vec::new();
                    fs::File::open(path)?.read_to_end(&mut buf)?;
                    Ok(Some(Bytes::from(buf)))
                }
            },
        }
    }

    /// Blocks until all `expected` producers have delivered their segment
    /// for `(job, edge, partition)`, then removes and returns the payloads
    /// ordered by producer index.
    pub fn collect(
        &self,
        job: u64,
        edge: u32,
        partition: u32,
        expected: u32,
    ) -> io::Result<Vec<Bytes>> {
        let mut st = self.state.lock();
        loop {
            let ready = (0..expected).all(|p| {
                st.segments.contains_key(&SegmentKey {
                    job,
                    edge,
                    producer: p,
                    partition,
                })
            });
            if ready {
                break;
            }
            self.arrived.wait(&mut st);
        }
        let mut out = Vec::with_capacity(expected as usize);
        for p in 0..expected {
            let key = SegmentKey {
                job,
                edge,
                producer: p,
                partition,
            };
            let entry = st.segments.remove(&key).expect("checked ready above");
            match entry.payload {
                Payload::Memory(b) => {
                    st.lru.unlink(entry.lru);
                    st.in_memory -= b.len() as u64;
                    out.push(b);
                }
                Payload::Spilled { path, .. } => {
                    // Read outside the lock would be nicer but correctness
                    // first: spill reads are the rare path.
                    let mut buf = Vec::new();
                    fs::File::open(&path)?.read_to_end(&mut buf)?;
                    let _ = fs::remove_file(&path);
                    out.push(Bytes::from(buf));
                }
            }
        }
        st.check_lru_invariant();
        Ok(out)
    }

    /// Like [`CacheWorkerStore::collect`], but *non-consuming*: segments
    /// stay in the store (and keep their spill state), so failure recovery
    /// can re-serve the same data to a re-launched consumer (§IV-B input
    /// failure). Pair with [`CacheWorkerStore::delete_job`] for cleanup.
    pub fn collect_keep(
        &self,
        job: u64,
        edge: u32,
        partition: u32,
        expected: u32,
    ) -> io::Result<Vec<Bytes>> {
        let mut st = self.state.lock();
        loop {
            let ready = (0..expected).all(|p| {
                st.segments.contains_key(&SegmentKey {
                    job,
                    edge,
                    producer: p,
                    partition,
                })
            });
            if ready {
                break;
            }
            self.arrived.wait(&mut st);
        }
        drop(st);
        let mut out = Vec::with_capacity(expected as usize);
        for p in 0..expected {
            let key = SegmentKey {
                job,
                edge,
                producer: p,
                partition,
            };
            out.push(
                self.peek(key)?
                    .expect("segment present: checked under lock and only consumers remove"),
            );
        }
        Ok(out)
    }

    /// Drops all segments of `job` and deletes their spill files.
    pub fn delete_job(&self, job: u64) -> io::Result<()> {
        let mut st = self.state.lock();
        let keys: Vec<SegmentKey> = st
            .segments
            .keys()
            .filter(|k| k.job == job)
            .copied()
            .collect();
        for key in keys {
            Self::remove_locked(&mut st, &key)?;
        }
        Ok(())
    }

    fn remove_locked(st: &mut StoreState, key: &SegmentKey) -> io::Result<()> {
        if let Some(e) = st.segments.remove(key) {
            match e.payload {
                Payload::Memory(b) => {
                    st.lru.unlink(e.lru);
                    st.in_memory -= b.len() as u64;
                }
                Payload::Spilled { path, .. } => {
                    let _ = fs::remove_file(path);
                }
            }
        }
        Ok(())
    }

    fn spill_path(&self, key: &SegmentKey) -> PathBuf {
        self.spill_dir.join(format!(
            "{}-{}-{}-{}.seg",
            key.job, key.edge, key.producer, key.partition
        ))
    }

    fn enforce_capacity(&self, st: &mut StoreState) -> io::Result<()> {
        // Walk the recency list from the LRU end — exactly the ascending
        // stamp order the old sort produced, with no allocation or sort.
        while st.in_memory > self.capacity {
            let Some(key) = st.lru.lru_key() else {
                break; // everything left is already spilled
            };
            let e = st.segments.get_mut(&key).expect("listed segments exist");
            let Payload::Memory(b) = std::mem::replace(
                &mut e.payload,
                Payload::Spilled {
                    path: self.spill_path(&key),
                },
            ) else {
                unreachable!("LRU list holds only in-memory segments");
            };
            st.lru.unlink(e.lru);
            e.lru = NIL;
            let path = self.spill_path(&key);
            let mut f = fs::File::create(&path)?;
            f.write_all(&b)?;
            f.sync_data()?;
            st.in_memory -= b.len() as u64;
            st.spilled_bytes_total += b.len() as u64;
        }
        Ok(())
    }
}

impl Drop for CacheWorkerStore {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.spill_dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn key(job: u64, producer: u32, partition: u32) -> SegmentKey {
        SegmentKey {
            job,
            edge: 0,
            producer,
            partition,
        }
    }

    #[test]
    fn put_then_collect_orders_by_producer() {
        let store = CacheWorkerStore::new(1 << 20).unwrap();
        store.put(key(1, 1, 0), Bytes::from_static(b"bb")).unwrap();
        store.put(key(1, 0, 0), Bytes::from_static(b"aa")).unwrap();
        let got = store.collect(1, 0, 0, 2).unwrap();
        assert_eq!(
            got,
            vec![Bytes::from_static(b"aa"), Bytes::from_static(b"bb")]
        );
        assert_eq!(store.segment_count(), 0);
        assert_eq!(store.in_memory_bytes(), 0);
    }

    #[test]
    fn collect_blocks_until_all_producers_deliver() {
        let store = Arc::new(CacheWorkerStore::new(1 << 20).unwrap());
        let s2 = Arc::clone(&store);
        let reader = thread::spawn(move || s2.collect(7, 0, 3, 2).unwrap());
        store.put(key(7, 0, 3), Bytes::from_static(b"x")).unwrap();
        thread::sleep(std::time::Duration::from_millis(20));
        assert!(!reader.is_finished(), "must wait for producer 1");
        store.put(key(7, 1, 3), Bytes::from_static(b"y")).unwrap();
        let got = reader.join().unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn spills_and_reads_back() {
        let store = CacheWorkerStore::new(10).unwrap();
        let big = Bytes::from(vec![7u8; 64]);
        store.put(key(1, 0, 0), big.clone()).unwrap();
        assert_eq!(store.in_memory_bytes(), 0, "segment larger than cap spills");
        assert!(store.spilled_bytes_total() >= 64);
        let got = store.peek(key(1, 0, 0)).unwrap().unwrap();
        assert_eq!(got, big);
        let collected = store.collect(1, 0, 0, 1).unwrap();
        assert_eq!(collected[0], big);
    }

    #[test]
    fn lru_spills_oldest() {
        let store = CacheWorkerStore::new(100).unwrap();
        store.put(key(1, 0, 0), Bytes::from(vec![0u8; 60])).unwrap();
        store.put(key(1, 1, 0), Bytes::from(vec![1u8; 60])).unwrap();
        // 120 > 100: producer 0's segment (older) spilled.
        assert_eq!(store.in_memory_bytes(), 60);
        assert_eq!(store.spilled_bytes_total(), 60);
        // Both still collectable.
        let got = store.collect(1, 0, 0, 2).unwrap();
        assert_eq!(got[0], Bytes::from(vec![0u8; 60]));
        assert_eq!(got[1], Bytes::from(vec![1u8; 60]));
    }

    #[test]
    fn peek_touch_protects_from_eviction() {
        let store = CacheWorkerStore::new(100).unwrap();
        store.put(key(1, 0, 0), Bytes::from(vec![0u8; 60])).unwrap();
        store.put(key(1, 1, 0), Bytes::from(vec![1u8; 30])).unwrap();
        // Touch the older, larger segment; the overflow from the next put
        // must then evict producer 1 (now least recently used), not 0.
        store.peek(key(1, 0, 0)).unwrap();
        store.put(key(1, 2, 0), Bytes::from(vec![2u8; 30])).unwrap();
        assert_eq!(store.in_memory_bytes(), 90, "producer 1 (30 B) spilled");
        assert_eq!(store.spilled_bytes_total(), 30);
        // Everything is still readable regardless of residency.
        for p in 0..3 {
            assert_eq!(store.peek(key(1, p, 0)).unwrap().unwrap()[0], p as u8);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let store = CacheWorkerStore::new(1 << 20).unwrap();
        store
            .put(key(1, 0, 0), Bytes::from_static(b"data"))
            .unwrap();
        assert!(store.peek(key(1, 0, 0)).unwrap().is_some());
        assert!(store.peek(key(1, 0, 0)).unwrap().is_some());
        assert_eq!(store.segment_count(), 1);
        assert!(store.peek(key(9, 0, 0)).unwrap().is_none());
    }

    #[test]
    fn delete_job_is_selective() {
        let store = CacheWorkerStore::new(1 << 20).unwrap();
        store.put(key(1, 0, 0), Bytes::from_static(b"a")).unwrap();
        store.put(key(2, 0, 0), Bytes::from_static(b"b")).unwrap();
        store.delete_job(1).unwrap();
        assert!(store.peek(key(1, 0, 0)).unwrap().is_none());
        assert!(store.peek(key(2, 0, 0)).unwrap().is_some());
    }

    #[test]
    fn overwrite_replaces_payload() {
        let store = CacheWorkerStore::new(1 << 20).unwrap();
        store.put(key(1, 0, 0), Bytes::from_static(b"old")).unwrap();
        store.put(key(1, 0, 0), Bytes::from_static(b"new")).unwrap();
        assert_eq!(store.in_memory_bytes(), 3);
        assert_eq!(
            store.peek(key(1, 0, 0)).unwrap().unwrap(),
            Bytes::from_static(b"new")
        );
    }

    #[test]
    fn many_concurrent_producers_and_consumers() {
        let store = Arc::new(CacheWorkerStore::new(1 << 12).unwrap());
        let (m, n) = (8u32, 4u32);
        let mut handles = Vec::new();
        for p in 0..m {
            let s = Arc::clone(&store);
            handles.push(thread::spawn(move || {
                for part in 0..n {
                    let payload = Bytes::from(vec![p as u8; 256]);
                    s.put(
                        SegmentKey {
                            job: 5,
                            edge: 0,
                            producer: p,
                            partition: part,
                        },
                        payload,
                    )
                    .unwrap();
                }
            }));
        }
        let mut readers = Vec::new();
        for part in 0..n {
            let s = Arc::clone(&store);
            readers.push(thread::spawn(move || s.collect(5, 0, part, m).unwrap()));
        }
        for h in handles {
            h.join().unwrap();
        }
        for (part, r) in readers.into_iter().enumerate() {
            let got = r.join().unwrap();
            assert_eq!(got.len(), m as usize, "partition {part}");
            for (p, b) in got.iter().enumerate() {
                assert_eq!(b[0], p as u8);
                assert_eq!(b.len(), 256);
            }
        }
        assert_eq!(store.segment_count(), 0);
    }
}
