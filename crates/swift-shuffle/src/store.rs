//! The real (byte-moving) Cache Worker: an in-memory shuffle segment store
//! with LRU spill to actual disk files.
//!
//! `swift-engine` uses one `CacheWorkerStore` per simulated machine (or one
//! shared store in single-process runs) as the staging area for Local and
//! Remote shuffle. Unlike the accounting model in [`crate::memory`], this
//! store holds real payloads and really writes spill files.

use crate::bytes::Bytes;
use crate::memory::SegmentKey;
use crate::sync::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static STORE_COUNTER: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
enum Payload {
    Memory(Bytes),
    Spilled { path: PathBuf },
}

#[derive(Default)]
struct StoreState {
    segments: BTreeMap<SegmentKey, Payload>,
    lru: BTreeMap<SegmentKey, u64>,
    clock: u64,
    in_memory: u64,
    spilled_bytes_total: u64,
}

/// A thread-safe shuffle segment store with bounded memory and LRU spill.
///
/// Producers [`put`](CacheWorkerStore::put) segments; consumers
/// [`collect`](CacheWorkerStore::collect) all segments of their partition,
/// blocking until the expected number of producers has delivered. Segments
/// are removed when collected (the §III-B "delete after consumed" rule);
/// [`peek`](CacheWorkerStore::peek) reads without consuming, which failure
/// recovery uses to re-serve data to re-run consumers.
pub struct CacheWorkerStore {
    capacity: u64,
    state: Mutex<StoreState>,
    arrived: Condvar,
    spill_dir: PathBuf,
}

// Manual impl: must not take the lock (Debug can be called while held).
impl std::fmt::Debug for CacheWorkerStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheWorkerStore")
            .field("capacity", &self.capacity)
            .field("spill_dir", &self.spill_dir)
            .finish_non_exhaustive()
    }
}

impl CacheWorkerStore {
    /// Creates a store holding at most `capacity` bytes in memory; overflow
    /// spills to a fresh directory under the system temp dir.
    pub fn new(capacity: u64) -> io::Result<Self> {
        let id = STORE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let spill_dir =
            std::env::temp_dir().join(format!("swift-cache-worker-{}-{}", std::process::id(), id));
        fs::create_dir_all(&spill_dir)?;
        Ok(CacheWorkerStore {
            capacity,
            state: Mutex::new(StoreState::default()),
            arrived: Condvar::new(),
            spill_dir,
        })
    }

    /// Bytes currently resident in memory.
    pub fn in_memory_bytes(&self) -> u64 {
        self.state.lock().in_memory
    }

    /// Total bytes spilled to disk over the store's lifetime.
    pub fn spilled_bytes_total(&self) -> u64 {
        self.state.lock().spilled_bytes_total
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.state.lock().segments.len()
    }

    /// Stores `data` under `key`, spilling LRU segments if the memory cap
    /// is exceeded. Overwrites any previous segment with the same key
    /// (idempotent producer re-runs).
    pub fn put(&self, key: SegmentKey, data: Bytes) -> io::Result<()> {
        let mut st = self.state.lock();
        Self::remove_locked(&mut st, &key)?;
        st.clock += 1;
        let stamp = st.clock;
        st.in_memory += data.len() as u64;
        st.segments.insert(key, Payload::Memory(data));
        st.lru.insert(key, stamp);
        self.enforce_capacity(&mut st)?;
        drop(st);
        self.arrived.notify_all();
        Ok(())
    }

    /// Reads one segment without consuming it, loading from the spill file
    /// if necessary (the segment stays spilled). Returns `None` if the key
    /// is unknown.
    pub fn peek(&self, key: SegmentKey) -> io::Result<Option<Bytes>> {
        let mut st = self.state.lock();
        st.clock += 1;
        let stamp = st.clock;
        if st.segments.contains_key(&key) {
            st.lru.insert(key, stamp);
        }
        match st.segments.get(&key) {
            None => Ok(None),
            Some(Payload::Memory(b)) => Ok(Some(b.clone())),
            Some(Payload::Spilled { path, .. }) => {
                let path = path.clone();
                drop(st);
                let mut buf = Vec::new();
                fs::File::open(path)?.read_to_end(&mut buf)?;
                Ok(Some(Bytes::from(buf)))
            }
        }
    }

    /// Blocks until all `expected` producers have delivered their segment
    /// for `(job, edge, partition)`, then removes and returns the payloads
    /// ordered by producer index.
    pub fn collect(
        &self,
        job: u64,
        edge: u32,
        partition: u32,
        expected: u32,
    ) -> io::Result<Vec<Bytes>> {
        let mut st = self.state.lock();
        loop {
            let ready = (0..expected).all(|p| {
                st.segments.contains_key(&SegmentKey {
                    job,
                    edge,
                    producer: p,
                    partition,
                })
            });
            if ready {
                break;
            }
            self.arrived.wait(&mut st);
        }
        let mut out = Vec::with_capacity(expected as usize);
        for p in 0..expected {
            let key = SegmentKey {
                job,
                edge,
                producer: p,
                partition,
            };
            let payload = st.segments.remove(&key).expect("checked ready above");
            st.lru.remove(&key);
            match payload {
                Payload::Memory(b) => {
                    st.in_memory -= b.len() as u64;
                    out.push(b);
                }
                Payload::Spilled { path, .. } => {
                    // Read outside the lock would be nicer but correctness
                    // first: spill reads are the rare path.
                    let mut buf = Vec::new();
                    fs::File::open(&path)?.read_to_end(&mut buf)?;
                    let _ = fs::remove_file(&path);
                    out.push(Bytes::from(buf));
                }
            }
        }
        Ok(out)
    }

    /// Like [`CacheWorkerStore::collect`], but *non-consuming*: segments
    /// stay in the store (and keep their spill state), so failure recovery
    /// can re-serve the same data to a re-launched consumer (§IV-B input
    /// failure). Pair with [`CacheWorkerStore::delete_job`] for cleanup.
    pub fn collect_keep(
        &self,
        job: u64,
        edge: u32,
        partition: u32,
        expected: u32,
    ) -> io::Result<Vec<Bytes>> {
        let mut st = self.state.lock();
        loop {
            let ready = (0..expected).all(|p| {
                st.segments.contains_key(&SegmentKey {
                    job,
                    edge,
                    producer: p,
                    partition,
                })
            });
            if ready {
                break;
            }
            self.arrived.wait(&mut st);
        }
        drop(st);
        let mut out = Vec::with_capacity(expected as usize);
        for p in 0..expected {
            let key = SegmentKey {
                job,
                edge,
                producer: p,
                partition,
            };
            out.push(
                self.peek(key)?
                    .expect("segment present: checked under lock and only consumers remove"),
            );
        }
        Ok(out)
    }

    /// Drops all segments of `job` and deletes their spill files.
    pub fn delete_job(&self, job: u64) -> io::Result<()> {
        let mut st = self.state.lock();
        let keys: Vec<SegmentKey> = st
            .segments
            .keys()
            .filter(|k| k.job == job)
            .copied()
            .collect();
        for key in keys {
            Self::remove_locked(&mut st, &key)?;
        }
        Ok(())
    }

    fn remove_locked(st: &mut StoreState, key: &SegmentKey) -> io::Result<()> {
        if let Some(p) = st.segments.remove(key) {
            st.lru.remove(key);
            match p {
                Payload::Memory(b) => st.in_memory -= b.len() as u64,
                Payload::Spilled { path, .. } => {
                    let _ = fs::remove_file(path);
                }
            }
        }
        Ok(())
    }

    fn spill_path(&self, key: &SegmentKey) -> PathBuf {
        self.spill_dir.join(format!(
            "{}-{}-{}-{}.seg",
            key.job, key.edge, key.producer, key.partition
        ))
    }

    fn enforce_capacity(&self, st: &mut StoreState) -> io::Result<()> {
        if st.in_memory <= self.capacity {
            return Ok(());
        }
        let mut victims: Vec<(u64, SegmentKey)> = st
            .segments
            .iter()
            .filter(|(_, p)| matches!(p, Payload::Memory(_)))
            .map(|(k, _)| (st.lru[k], *k))
            .collect();
        victims.sort();
        for (_, key) in victims {
            if st.in_memory <= self.capacity {
                break;
            }
            if let Some(Payload::Memory(b)) = st.segments.remove(&key) {
                let path = self.spill_path(&key);
                let mut f = fs::File::create(&path)?;
                f.write_all(&b)?;
                f.sync_data()?;
                st.in_memory -= b.len() as u64;
                st.spilled_bytes_total += b.len() as u64;
                st.segments.insert(key, Payload::Spilled { path });
            }
        }
        Ok(())
    }
}

impl Drop for CacheWorkerStore {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.spill_dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn key(job: u64, producer: u32, partition: u32) -> SegmentKey {
        SegmentKey {
            job,
            edge: 0,
            producer,
            partition,
        }
    }

    #[test]
    fn put_then_collect_orders_by_producer() {
        let store = CacheWorkerStore::new(1 << 20).unwrap();
        store.put(key(1, 1, 0), Bytes::from_static(b"bb")).unwrap();
        store.put(key(1, 0, 0), Bytes::from_static(b"aa")).unwrap();
        let got = store.collect(1, 0, 0, 2).unwrap();
        assert_eq!(
            got,
            vec![Bytes::from_static(b"aa"), Bytes::from_static(b"bb")]
        );
        assert_eq!(store.segment_count(), 0);
        assert_eq!(store.in_memory_bytes(), 0);
    }

    #[test]
    fn collect_blocks_until_all_producers_deliver() {
        let store = Arc::new(CacheWorkerStore::new(1 << 20).unwrap());
        let s2 = Arc::clone(&store);
        let reader = thread::spawn(move || s2.collect(7, 0, 3, 2).unwrap());
        store.put(key(7, 0, 3), Bytes::from_static(b"x")).unwrap();
        thread::sleep(std::time::Duration::from_millis(20));
        assert!(!reader.is_finished(), "must wait for producer 1");
        store.put(key(7, 1, 3), Bytes::from_static(b"y")).unwrap();
        let got = reader.join().unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn spills_and_reads_back() {
        let store = CacheWorkerStore::new(10).unwrap();
        let big = Bytes::from(vec![7u8; 64]);
        store.put(key(1, 0, 0), big.clone()).unwrap();
        assert_eq!(store.in_memory_bytes(), 0, "segment larger than cap spills");
        assert!(store.spilled_bytes_total() >= 64);
        let got = store.peek(key(1, 0, 0)).unwrap().unwrap();
        assert_eq!(got, big);
        let collected = store.collect(1, 0, 0, 1).unwrap();
        assert_eq!(collected[0], big);
    }

    #[test]
    fn lru_spills_oldest() {
        let store = CacheWorkerStore::new(100).unwrap();
        store.put(key(1, 0, 0), Bytes::from(vec![0u8; 60])).unwrap();
        store.put(key(1, 1, 0), Bytes::from(vec![1u8; 60])).unwrap();
        // 120 > 100: producer 0's segment (older) spilled.
        assert_eq!(store.in_memory_bytes(), 60);
        assert_eq!(store.spilled_bytes_total(), 60);
        // Both still collectable.
        let got = store.collect(1, 0, 0, 2).unwrap();
        assert_eq!(got[0], Bytes::from(vec![0u8; 60]));
        assert_eq!(got[1], Bytes::from(vec![1u8; 60]));
    }

    #[test]
    fn peek_does_not_consume() {
        let store = CacheWorkerStore::new(1 << 20).unwrap();
        store
            .put(key(1, 0, 0), Bytes::from_static(b"data"))
            .unwrap();
        assert!(store.peek(key(1, 0, 0)).unwrap().is_some());
        assert!(store.peek(key(1, 0, 0)).unwrap().is_some());
        assert_eq!(store.segment_count(), 1);
        assert!(store.peek(key(9, 0, 0)).unwrap().is_none());
    }

    #[test]
    fn delete_job_is_selective() {
        let store = CacheWorkerStore::new(1 << 20).unwrap();
        store.put(key(1, 0, 0), Bytes::from_static(b"a")).unwrap();
        store.put(key(2, 0, 0), Bytes::from_static(b"b")).unwrap();
        store.delete_job(1).unwrap();
        assert!(store.peek(key(1, 0, 0)).unwrap().is_none());
        assert!(store.peek(key(2, 0, 0)).unwrap().is_some());
    }

    #[test]
    fn overwrite_replaces_payload() {
        let store = CacheWorkerStore::new(1 << 20).unwrap();
        store.put(key(1, 0, 0), Bytes::from_static(b"old")).unwrap();
        store.put(key(1, 0, 0), Bytes::from_static(b"new")).unwrap();
        assert_eq!(store.in_memory_bytes(), 3);
        assert_eq!(
            store.peek(key(1, 0, 0)).unwrap().unwrap(),
            Bytes::from_static(b"new")
        );
    }

    #[test]
    fn many_concurrent_producers_and_consumers() {
        let store = Arc::new(CacheWorkerStore::new(1 << 12).unwrap());
        let (m, n) = (8u32, 4u32);
        let mut handles = Vec::new();
        for p in 0..m {
            let s = Arc::clone(&store);
            handles.push(thread::spawn(move || {
                for part in 0..n {
                    let payload = Bytes::from(vec![p as u8; 256]);
                    s.put(
                        SegmentKey {
                            job: 5,
                            edge: 0,
                            producer: p,
                            partition: part,
                        },
                        payload,
                    )
                    .unwrap();
                }
            }));
        }
        let mut readers = Vec::new();
        for part in 0..n {
            let s = Arc::clone(&store);
            readers.push(thread::spawn(move || s.collect(5, 0, part, m).unwrap()));
        }
        for h in handles {
            h.join().unwrap();
        }
        for (part, r) in readers.into_iter().enumerate() {
            let got = r.join().unwrap();
            assert_eq!(got.len(), m as usize, "partition {part}");
            for (p, b) in got.iter().enumerate() {
                assert_eq!(b[0], p as u8);
                assert_eq!(b.len(), 256);
            }
        }
        assert_eq!(store.segment_count(), 0);
    }
}
