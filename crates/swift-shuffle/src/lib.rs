//! # swift-shuffle — adaptive memory-based in-network shuffling
//!
//! Implements §III-B of the Swift paper:
//!
//! * the three shuffle schemes — [`ShuffleScheme::Direct`],
//!   [`ShuffleScheme::Local`], [`ShuffleScheme::Remote`] — with their TCP
//!   connection-count formulas (`M×N`, `M+N+C(Y,2)`, `M+N×Y`) and extra
//!   memory-copy counts;
//! * adaptive scheme selection by shuffle edge size
//!   ([`AdaptiveThresholds`], production thresholds 10 000 / 90 000);
//! * Cache Worker memory management with LRU spill — both the accounting
//!   model used by the cluster simulator ([`CacheWorkerMemory`]) and the
//!   real byte-moving store with actual spill files used by the execution
//!   engine ([`CacheWorkerStore`]);
//! * the engine-facing [`Exchange`] transports ([`DirectExchange`] for
//!   Direct Shuffle, [`CacheWorkerStore`] for the staged schemes).

#![warn(missing_docs)]

pub mod bytes;
mod channel;
mod memory;
mod scheme;
mod store;
pub mod sync;
mod versions;

pub use bytes::{Bytes, BytesMut};
pub use channel::{DirectExchange, Exchange};
pub use memory::{CacheWorkerMemory, InsertOutcome, SegmentKey, SegmentLocation};
pub use scheme::{select_scheme, AdaptiveThresholds, ExtraCopies, ShuffleMedium, ShuffleScheme};
pub use store::CacheWorkerStore;
pub use versions::{LedgerKey, StaleDelivery, VersionLedger};

use swift_dag::JobDag;

/// Plans the shuffle scheme of every edge of `dag` by its shuffle edge size
/// (`M × N`), returning one scheme per edge in `dag.edges()` order.
pub fn plan_shuffles(dag: &JobDag, thresholds: AdaptiveThresholds) -> Vec<ShuffleScheme> {
    dag.edges()
        .iter()
        .map(|e| thresholds.select(dag.edge_shuffle_size(e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_dag::{DagBuilder, Operator};

    #[test]
    fn plan_shuffles_buckets_by_edge_size() {
        let mut b = DagBuilder::new(1, "mix");
        let small = b
            .stage("small", 10)
            .op(Operator::TableScan { table: "t".into() })
            .op(Operator::ShuffleWrite)
            .build();
        let mid = b
            .stage("mid", 200)
            .op(Operator::ShuffleRead)
            .op(Operator::ShuffleWrite)
            .build();
        let large = b
            .stage("large", 1000)
            .op(Operator::ShuffleRead)
            .op(Operator::ShuffleWrite)
            .build();
        let sink = b
            .stage("sink", 100)
            .op(Operator::ShuffleRead)
            .op(Operator::AdhocSink)
            .build();
        b.edge(small, mid); // 10 * 200 = 2 000 -> direct
        b.edge(mid, large); // 200 * 1000 = 200 000 -> local
        b.edge(large, sink); // 1000 * 100 = 100 000 -> local
        let dag = b.build().unwrap();
        let plan = plan_shuffles(&dag, AdaptiveThresholds::default());
        assert_eq!(
            plan,
            vec![
                ShuffleScheme::Direct,
                ShuffleScheme::Local,
                ShuffleScheme::Local
            ]
        );
    }
}
