//! Cache Worker memory management (§III-B "Memory Management of the Cache
//! Worker"): shuffle segments live in memory, are deleted once every
//! consumer has read them, and under memory shortage the least recently
//! used segments are swapped to disk in large chunks.
//!
//! This module is the *accounting* model used by the simulator; the real
//! byte-moving counterpart (with actual spill files) is
//! [`crate::CacheWorkerStore`].

use std::collections::BTreeMap;

/// Identifies one shuffle segment: the output of one producer task for one
/// consumer partition of one edge of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentKey {
    /// Job the segment belongs to.
    pub job: u64,
    /// Edge index within the job DAG.
    pub edge: u32,
    /// Producer task index.
    pub producer: u32,
    /// Consumer partition index.
    pub partition: u32,
}

/// Where a segment currently resides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentLocation {
    /// Resident in Cache Worker memory.
    Memory,
    /// Swapped out to local disk by the LRU policy.
    Disk,
}

/// Outcome of inserting a segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Segments the LRU policy swapped to disk to make room (possibly
    /// including the inserted segment itself if it alone exceeds capacity).
    pub spilled: Vec<(SegmentKey, u64)>,
}

#[derive(Clone, Debug)]
struct Segment {
    bytes: u64,
    location: SegmentLocation,
    /// Remaining consumers that have not read the segment yet.
    pending_consumers: u32,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
}

/// Memory accounting for one machine's Cache Worker.
///
/// Most jobs are short and small, so segments normally live briefly and
/// memory pressure is rare (< 1 % in the paper's production clusters); when
/// it does occur, LRU segments are spilled to disk "in large data chunk"
/// without failing the shuffle.
#[derive(Clone, Debug)]
pub struct CacheWorkerMemory {
    capacity: u64,
    in_memory: u64,
    on_disk: u64,
    segments: BTreeMap<SegmentKey, Segment>,
    clock: u64,
    /// Lifetime counters for reporting.
    total_spilled_bytes: u64,
    total_spill_events: u64,
}

impl CacheWorkerMemory {
    /// Creates a Cache Worker with `capacity` bytes of memory.
    pub fn new(capacity: u64) -> Self {
        CacheWorkerMemory {
            capacity,
            in_memory: 0,
            on_disk: 0,
            segments: BTreeMap::new(),
            clock: 0,
            total_spilled_bytes: 0,
            total_spill_events: 0,
        }
    }

    /// Bytes currently resident in memory.
    pub fn in_memory_bytes(&self) -> u64 {
        self.in_memory
    }

    /// Bytes currently spilled to disk.
    pub fn on_disk_bytes(&self) -> u64 {
        self.on_disk
    }

    /// Total bytes ever spilled (for the cache-pressure ablation).
    pub fn total_spilled_bytes(&self) -> u64 {
        self.total_spilled_bytes
    }

    /// Number of spill events so far.
    pub fn total_spill_events(&self) -> u64 {
        self.total_spill_events
    }

    /// Number of live segments (memory + disk).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Bytes currently held live (memory + disk).
    pub fn live_bytes(&self) -> u64 {
        self.in_memory + self.on_disk
    }

    /// Stores a segment of `bytes` bytes that `consumers` consumer tasks
    /// will read. Returns the segments the LRU policy spilled to make room.
    ///
    /// Inserting a key that already exists refreshes it (idempotent
    /// producer re-runs overwrite their previous output).
    pub fn insert(&mut self, key: SegmentKey, bytes: u64, consumers: u32) -> InsertOutcome {
        let _ = self.remove(key);
        self.clock += 1;
        self.segments.insert(
            key,
            Segment {
                bytes,
                location: SegmentLocation::Memory,
                pending_consumers: consumers,
                stamp: self.clock,
            },
        );
        self.in_memory += bytes;
        InsertOutcome {
            spilled: self.enforce_capacity(),
        }
    }

    /// Records that one consumer has read the segment; touches its LRU
    /// stamp. When the last consumer reads it, the segment is deleted and
    /// its memory released (§III-B). Returns the segment's location at read
    /// time (`None` if unknown — e.g. already fully consumed).
    pub fn consume(&mut self, key: SegmentKey) -> Option<SegmentLocation> {
        self.clock += 1;
        let clock = self.clock;
        let seg = self.segments.get_mut(&key)?;
        seg.stamp = clock;
        let loc = seg.location;
        seg.pending_consumers = seg.pending_consumers.saturating_sub(1);
        if seg.pending_consumers == 0 {
            let _ = self.remove(key);
        }
        Some(loc)
    }

    /// Current location of a segment, if live.
    pub fn location(&self, key: SegmentKey) -> Option<SegmentLocation> {
        self.segments.get(&key).map(|s| s.location)
    }

    /// Drops every segment of `job` (e.g. when the job completes or is
    /// cancelled), releasing memory and disk. Returns the bytes released.
    pub fn drop_job(&mut self, job: u64) -> u64 {
        let keys: Vec<SegmentKey> = self
            .segments
            .keys()
            .filter(|k| k.job == job)
            .copied()
            .collect();
        let mut released = 0;
        for k in keys {
            if let Some((_, bytes)) = self.remove(k) {
                released += bytes;
            }
        }
        released
    }

    /// Unconditionally deletes a live segment (e.g. a stale copy left behind
    /// when a producer re-run lands on a different machine), returning its
    /// location and size.
    pub fn evict(&mut self, key: SegmentKey) -> Option<(SegmentLocation, u64)> {
        self.remove(key)
    }

    fn remove(&mut self, key: SegmentKey) -> Option<(SegmentLocation, u64)> {
        let seg = self.segments.remove(&key)?;
        match seg.location {
            SegmentLocation::Memory => self.in_memory -= seg.bytes,
            SegmentLocation::Disk => self.on_disk -= seg.bytes,
        }
        Some((seg.location, seg.bytes))
    }

    /// Spills least-recently-used in-memory segments until usage fits the
    /// capacity. O(n log n) in live segments; acceptable because spill is a
    /// sub-1 % event.
    fn enforce_capacity(&mut self) -> Vec<(SegmentKey, u64)> {
        if self.in_memory <= self.capacity {
            return Vec::new();
        }
        let mut candidates: Vec<(u64, SegmentKey)> = self
            .segments
            .iter()
            .filter(|(_, s)| s.location == SegmentLocation::Memory)
            .map(|(k, s)| (s.stamp, *k))
            .collect();
        candidates.sort();
        let mut spilled = Vec::new();
        for (_, key) in candidates {
            if self.in_memory <= self.capacity {
                break;
            }
            let seg = self.segments.get_mut(&key).expect("candidate is live");
            seg.location = SegmentLocation::Disk;
            self.in_memory -= seg.bytes;
            self.on_disk += seg.bytes;
            self.total_spilled_bytes += seg.bytes;
            self.total_spill_events += 1;
            spilled.push((key, seg.bytes));
        }
        spilled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(producer: u32) -> SegmentKey {
        SegmentKey {
            job: 1,
            edge: 0,
            producer,
            partition: 0,
        }
    }

    #[test]
    fn insert_and_consume_lifecycle() {
        let mut cw = CacheWorkerMemory::new(1_000);
        let out = cw.insert(key(0), 400, 2);
        assert!(out.spilled.is_empty());
        assert_eq!(cw.in_memory_bytes(), 400);
        assert_eq!(cw.consume(key(0)), Some(SegmentLocation::Memory));
        assert_eq!(cw.segment_count(), 1, "one consumer still pending");
        assert_eq!(cw.consume(key(0)), Some(SegmentLocation::Memory));
        assert_eq!(cw.segment_count(), 0, "deleted after last consumer");
        assert_eq!(cw.in_memory_bytes(), 0);
        assert_eq!(cw.consume(key(0)), None);
    }

    #[test]
    fn lru_spills_oldest_first() {
        let mut cw = CacheWorkerMemory::new(1_000);
        cw.insert(key(0), 400, 1);
        cw.insert(key(1), 400, 1);
        // Touch segment 0 so segment 1 becomes the LRU victim.
        assert_eq!(cw.location(key(0)), Some(SegmentLocation::Memory));
        cw.insert(key(2), 400, 1);
        // 1200 > 1000: one spill needed; victim must be key(0)? No — key(0)
        // was only *located*, not consumed; stamps order is 0 < 1 < 2, so
        // key(0) spills.
        assert_eq!(cw.location(key(0)), Some(SegmentLocation::Disk));
        assert_eq!(cw.location(key(1)), Some(SegmentLocation::Memory));
        assert_eq!(cw.in_memory_bytes(), 800);
        assert_eq!(cw.on_disk_bytes(), 400);
        assert_eq!(cw.total_spill_events(), 1);
    }

    #[test]
    fn consume_touches_lru_order() {
        let mut cw = CacheWorkerMemory::new(1_000);
        cw.insert(key(0), 400, 2);
        cw.insert(key(1), 400, 1);
        // Reading key(0) makes key(1) the LRU victim.
        cw.consume(key(0));
        cw.insert(key(2), 400, 1);
        assert_eq!(cw.location(key(1)), Some(SegmentLocation::Disk));
        assert_eq!(cw.location(key(0)), Some(SegmentLocation::Memory));
    }

    #[test]
    fn consuming_spilled_segment_reports_disk() {
        let mut cw = CacheWorkerMemory::new(500);
        cw.insert(key(0), 400, 1);
        cw.insert(key(1), 400, 1); // spills key(0)
        assert_eq!(cw.consume(key(0)), Some(SegmentLocation::Disk));
        assert_eq!(cw.on_disk_bytes(), 0, "read-out releases disk space");
    }

    #[test]
    fn oversized_segment_spills_itself() {
        let mut cw = CacheWorkerMemory::new(100);
        let out = cw.insert(key(0), 400, 1);
        assert_eq!(out.spilled, vec![(key(0), 400)]);
        assert_eq!(cw.in_memory_bytes(), 0);
        assert_eq!(cw.on_disk_bytes(), 400);
    }

    #[test]
    fn reinsert_refreshes_segment() {
        let mut cw = CacheWorkerMemory::new(1_000);
        cw.insert(key(0), 400, 1);
        cw.insert(key(0), 200, 3);
        assert_eq!(cw.in_memory_bytes(), 200);
        assert_eq!(cw.segment_count(), 1);
    }

    #[test]
    fn drop_job_releases_everything() {
        let mut cw = CacheWorkerMemory::new(1_000);
        cw.insert(
            SegmentKey {
                job: 1,
                edge: 0,
                producer: 0,
                partition: 0,
            },
            300,
            1,
        );
        cw.insert(
            SegmentKey {
                job: 2,
                edge: 0,
                producer: 0,
                partition: 0,
            },
            300,
            1,
        );
        assert_eq!(cw.drop_job(1), 300);
        assert_eq!(cw.segment_count(), 1);
        assert_eq!(cw.in_memory_bytes(), 300);
        assert_eq!(cw.drop_job(7), 0, "unknown job releases nothing");
    }

    #[test]
    fn live_bytes_spans_memory_and_disk() {
        let mut cw = CacheWorkerMemory::new(500);
        cw.insert(key(0), 400, 1);
        cw.insert(key(1), 400, 1); // spills key(0) to disk
        assert_eq!(cw.in_memory_bytes(), 400);
        assert_eq!(cw.on_disk_bytes(), 400);
        assert_eq!(cw.live_bytes(), 800);
    }

    #[test]
    fn evict_releases_segment_and_reports_location() {
        let mut cw = CacheWorkerMemory::new(1_000);
        cw.insert(key(0), 400, 2);
        assert_eq!(cw.evict(key(0)), Some((SegmentLocation::Memory, 400)));
        assert_eq!(cw.live_bytes(), 0);
        assert_eq!(cw.evict(key(0)), None, "second evict is a no-op");
    }
}
