//! Minimal cheap-clone byte buffers for shuffle payloads.
//!
//! The workspace builds offline with no external crates, so this module
//! provides the small slice of the `bytes` crate API the data path needs:
//! [`Bytes`] (an immutable, reference-counted view with a read cursor) and
//! [`BytesMut`] (a growable write buffer that freezes into [`Bytes`]).
//! Clones of a `Bytes` share one allocation, which is what makes the
//! Cache Worker's peek-and-re-serve recovery path cheap.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Backing storage of a [`Bytes`]: either a reference-counted heap
/// allocation (clones bump the refcount) or a borrowed `'static` slice
/// (clones copy the pointer; nothing is ever allocated or freed).
#[derive(Clone)]
enum Repr {
    Shared(Arc<[u8]>),
    Static(&'static [u8]),
}

impl Repr {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Shared(a) => a,
            Repr::Static(s) => s,
        }
    }
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Static(&[])
    }
}

/// An immutable, cheaply clonable byte buffer with a consuming read cursor.
///
/// Reads (`get_u8`, `get_u32_le`, ...) advance the cursor; `Deref<[u8]>`
/// exposes the unread remainder. Equality and hashing consider only the
/// unread remainder, matching the upstream `bytes::Bytes` semantics.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice with no copy and no allocation: the
    /// buffer borrows the slice for `'static`, and clones/sub-slices
    /// share it the same way refcounted buffers do.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Repr::Static(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Unread bytes remaining behind the cursor.
    pub fn remaining(&self) -> usize {
        self.end - self.start
    }

    /// Length of the unread remainder (alias of [`Bytes::remaining`], for
    /// slice-like call sites).
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the unread remainder into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.remaining() >= n,
            "buffer underflow: wanted {n}, have {}",
            self.remaining()
        );
        let s = self.start;
        self.start += n;
        &self.data.as_slice()[s..s + n]
    }

    /// Reads one byte, advancing the cursor.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a little-endian `u32`, advancing the cursor.
    pub fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `i64`, advancing the cursor.
    pub fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `f64`, advancing the cursor.
    pub fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Returns a sub-view of the unread remainder over `range` (sharing
    /// the same allocation); does not advance the cursor.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.remaining(),
            "slice out of bounds"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off the next `len` bytes as their own `Bytes` (sharing the
    /// same allocation), advancing the cursor.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + len,
        };
        self.start += len;
        out
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Repr::Shared(v.into()),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable write buffer; freeze into [`Bytes`] when done.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64_le(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a byte slice.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i64_le(-42);
        w.put_u64_le(u64::MAX - 3);
        w.put_f64_le(1.25);
        w.put_slice(b"tail");
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 8 + 8 + 4);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_u64_le(), u64::MAX - 3);
        assert_eq!(b.get_f64_le(), 1.25);
        assert_eq!(&b[..], b"tail");
        let tail = b.copy_to_bytes(4);
        assert_eq!(tail, Bytes::from_static(b"tail"));
        assert!(b.is_empty());
    }

    #[test]
    fn clones_share_storage_and_cursor_is_per_clone() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let mut b = a.clone();
        assert_eq!(b.get_u8(), 1);
        assert_eq!(a.len(), 4, "clone's cursor does not affect the original");
        assert_eq!(b.len(), 3);
        assert_ne!(a, b, "equality is over the unread remainder");
    }

    #[test]
    fn equality_and_indexing() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a[0], b'a');
        assert_eq!(a.to_vec(), b"abc");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u32_le();
    }

    #[test]
    fn static_buffers_borrow_not_copy() {
        static DATA: [u8; 5] = *b"hello";
        let a = Bytes::from_static(&DATA);
        let b = a.slice(1..4);
        assert_eq!(&b[..], b"ell");
        assert!(
            std::ptr::eq(&a[0], &DATA[0]),
            "from_static must expose the static storage itself"
        );
        assert!(std::ptr::eq(&b[0], &DATA[1]), "slices share it too");
    }
}
