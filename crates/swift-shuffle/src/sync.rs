//! Poison-free `Mutex`/`Condvar` wrappers over `std::sync`.
//!
//! The data path used `parking_lot`'s ergonomic API (`lock()` returns the
//! guard directly, `Condvar::wait` takes `&mut guard`). The workspace
//! builds offline with no external crates, so this module reproduces that
//! API shape on top of the standard library. Poisoned locks are recovered
//! rather than propagated: a panicking producer thread must not wedge
//! every consumer blocked on the same Cache Worker store.

use std::sync;

/// A mutex whose `lock` returns the guard directly, recovering from
/// poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T> {
    // This module *is* the sync shim: interior mutability is its purpose.
    inner: sync::Mutex<T>, // swift-analyze: allow(SW008) — the sync shim itself
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds the inner std guard in an `Option` so [`Condvar::wait`] can take
/// it out, block, and put it back — reproducing the `&mut guard` wait API.
pub struct MutexGuard<'a, T> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.guard {
            Some(g) => std::fmt::Debug::fmt(&**g, f),
            None => f.write_str("MutexGuard(<taken for wait>)"),
        }
    }
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering the data if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable whose `wait` takes the guard by `&mut`.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar, // swift-analyze: allow(SW008) — the sync shim itself
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Atomically releases the guarded lock and blocks until notified,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present before wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock recovers after a panicking holder");
    }
}
