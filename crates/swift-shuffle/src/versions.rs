//! Instance-version accounting for shuffle channels.
//!
//! Fine-grained recovery (§IV-B) re-launches failed task instances while
//! the rest of the job keeps running. A consumer must never read shuffle
//! data written by a *superseded* instance of a producer: when the Admin
//! re-runs a producer, its old buffered output (and any Cache Worker
//! segment it wrote) is invalid the moment the new instance exists.
//!
//! [`VersionLedger`] tracks, per task, the latest launched instance epoch
//! and the epoch that wrote the currently visible output. The chaos
//! harness drives it from simulation observer events and turns any stale
//! delivery into an invariant violation; a real data path would perform
//! the same check on its channel metadata.

use std::collections::BTreeMap;
use swift_dag::TaskId;

/// Identifies one task instance stream: a workload job index plus the
/// task's id within its DAG.
pub type LedgerKey = (usize, TaskId);

/// A violation detected by the ledger: data from a superseded instance
/// reached (or would reach) a consumer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaleDelivery {
    /// The producing task.
    pub producer: LedgerKey,
    /// Epoch that wrote the delivered data.
    pub delivered_epoch: u32,
    /// Latest instance epoch of the producer at delivery time.
    pub latest_epoch: u32,
}

impl std::fmt::Display for StaleDelivery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale shuffle delivery from job {} task {}: data epoch {} superseded by epoch {}",
            self.producer.0, self.producer.1, self.delivered_epoch, self.latest_epoch
        )
    }
}

/// Tracks instance epochs per task and validates shuffle deliveries.
#[derive(Clone, Debug, Default)]
pub struct VersionLedger {
    /// Latest launched instance epoch per task.
    latest: BTreeMap<LedgerKey, u32>,
    /// Epoch whose output is currently staged/visible, set on completion.
    output: BTreeMap<LedgerKey, u32>,
}

impl VersionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that instance `epoch` of `task` has been launched. Epochs
    /// must be non-decreasing; a re-launch with a higher epoch supersedes
    /// all prior output of the task.
    pub fn begin_instance(&mut self, key: LedgerKey, epoch: u32) {
        let e = self.latest.entry(key).or_insert(epoch);
        *e = (*e).max(epoch);
    }

    /// Records that instance `epoch` of `task` finished and its output is
    /// now the visible one. Output from an epoch older than the latest
    /// launched instance is ignored (it is already superseded).
    pub fn record_output(&mut self, key: LedgerKey, epoch: u32) {
        self.begin_instance(key, epoch);
        if epoch >= self.latest_epoch(key) {
            self.output.insert(key, epoch);
        }
    }

    /// Latest launched instance epoch of `task` (0 if never seen).
    pub fn latest_epoch(&self, key: LedgerKey) -> u32 {
        *self.latest.get(&key).unwrap_or(&0)
    }

    /// Whether the ledger has ever seen an instance of `task`. Needed to
    /// tell "never launched" apart from "launched at epoch 0".
    pub fn seen(&self, key: LedgerKey) -> bool {
        self.latest.contains_key(&key)
    }

    /// Epoch whose output is currently visible, if the task ever finished.
    pub fn output_epoch(&self, key: LedgerKey) -> Option<u32> {
        self.output.get(&key).copied()
    }

    /// Validates a delivery of `producer`'s output written by
    /// `delivered_epoch`. Returns a violation if a newer instance of the
    /// producer has been launched since that output was written.
    pub fn check_delivery(
        &self,
        producer: LedgerKey,
        delivered_epoch: u32,
    ) -> Result<(), StaleDelivery> {
        let latest = self.latest_epoch(producer);
        if delivered_epoch < latest {
            Err(StaleDelivery {
                producer,
                delivered_epoch,
                latest_epoch: latest,
            })
        } else {
            Ok(())
        }
    }

    /// Forgets all state of one job (job completion/abort cleanup).
    pub fn forget_job(&mut self, job: usize) {
        self.latest.retain(|k, _| k.0 != job);
        self.output.retain(|k, _| k.0 != job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_dag::{StageId, TaskId};

    fn key(job: usize, stage: u32, idx: u32) -> LedgerKey {
        (job, TaskId::new(StageId(stage), idx))
    }

    #[test]
    fn fresh_output_is_deliverable() {
        let mut l = VersionLedger::new();
        l.begin_instance(key(0, 0, 0), 0);
        l.record_output(key(0, 0, 0), 0);
        assert!(l.check_delivery(key(0, 0, 0), 0).is_ok());
        assert_eq!(l.output_epoch(key(0, 0, 0)), Some(0));
    }

    #[test]
    fn relaunch_supersedes_old_output() {
        let mut l = VersionLedger::new();
        l.record_output(key(0, 1, 2), 0);
        l.begin_instance(key(0, 1, 2), 1);
        let err = l.check_delivery(key(0, 1, 2), 0).unwrap_err();
        assert_eq!(err.delivered_epoch, 0);
        assert_eq!(err.latest_epoch, 1);
        // The new instance's output is fine again.
        l.record_output(key(0, 1, 2), 1);
        assert!(l.check_delivery(key(0, 1, 2), 1).is_ok());
    }

    #[test]
    fn late_output_from_superseded_instance_is_ignored() {
        let mut l = VersionLedger::new();
        l.begin_instance(key(0, 0, 0), 3);
        l.record_output(key(0, 0, 0), 1);
        assert_eq!(l.output_epoch(key(0, 0, 0)), None, "epoch 1 < latest 3");
        assert_eq!(l.latest_epoch(key(0, 0, 0)), 3);
    }

    #[test]
    fn jobs_are_independent_and_forgettable() {
        let mut l = VersionLedger::new();
        l.record_output(key(0, 0, 0), 0);
        l.record_output(key(1, 0, 0), 5);
        l.begin_instance(key(1, 0, 0), 6);
        assert!(l.check_delivery(key(0, 0, 0), 0).is_ok());
        assert!(l.check_delivery(key(1, 0, 0), 5).is_err());
        l.forget_job(1);
        assert_eq!(l.latest_epoch(key(1, 0, 0)), 0);
        assert!(l.check_delivery(key(1, 0, 0), 0).is_ok());
    }

    #[test]
    fn rendered_state_is_independent_of_insertion_order() {
        // Regression for the HashMap-era ledger: anything derived from
        // iterating the ledger (Debug dumps, chaos reports) must be
        // byte-identical no matter the order events arrived in.
        let keys = [key(2, 1, 3), key(0, 4, 0), key(1, 0, 7), key(0, 0, 0)];
        let mut forward = VersionLedger::new();
        for (i, &k) in keys.iter().enumerate() {
            forward.begin_instance(k, i as u32);
            forward.record_output(k, i as u32);
        }
        let mut backward = VersionLedger::new();
        for (i, &k) in keys.iter().enumerate().rev() {
            backward.begin_instance(k, i as u32);
            backward.record_output(k, i as u32);
        }
        assert_eq!(format!("{forward:?}"), format!("{backward:?}"));
    }
}
