//! Real data-path transports for the execution engine.
//!
//! The engine moves shuffle payloads through an [`Exchange`]. Two
//! implementations exist:
//!
//! * [`DirectExchange`] — Direct Shuffle: producer tasks hand payloads
//!   straight to consumer partitions through in-memory queues. Nothing is
//!   staged: once a partition is collected the data is gone, exactly like
//!   the paper's Direct Shuffle, which cannot re-serve data after a
//!   consumer failure.
//! * [`CacheWorkerStore`](crate::CacheWorkerStore) — Local/Remote Shuffle:
//!   payloads are staged in a Cache Worker (bounded memory, real LRU spill
//!   files) and survive until consumed, enabling the pull-based barrier
//!   edges and the §IV-B recovery paths.

use crate::bytes::Bytes;
use crate::memory::SegmentKey;
use crate::store::CacheWorkerStore;
use crate::sync::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::io;

/// A transport moving shuffle segments from producer to consumer tasks.
pub trait Exchange: Send + Sync {
    /// Delivers one producer's payload for one consumer partition.
    fn put(&self, key: SegmentKey, data: Bytes) -> io::Result<()>;

    /// Blocks until all `expected` producers have delivered their segment
    /// for `(job, edge, partition)` and returns the payloads ordered by
    /// producer index, consuming them.
    fn collect(&self, job: u64, edge: u32, partition: u32, expected: u32)
        -> io::Result<Vec<Bytes>>;

    /// Returns `true` if the transport stages data such that it can be
    /// re-served after a consumer failure without re-running producers.
    fn supports_replay(&self) -> bool;
}

/// In-memory Direct Shuffle transport.
#[derive(Default)]
pub struct DirectExchange {
    // The exchange is the real transport layer driven by OS threads in
    // integration tests; the deterministic simulator never touches it
    // (shuffles are modeled as queue events). BTreeMap keeps segment
    // order stable should anyone ever iterate the buffer.
    state: Mutex<BTreeMap<SegmentKey, Bytes>>, // swift-analyze: allow(SW008) — threaded transport, not sim state
    arrived: Condvar, // swift-analyze: allow(SW008) — threaded transport, not sim state
}

// Manual impl: must not take the lock (Debug can be called while held).
impl std::fmt::Debug for DirectExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectExchange").finish_non_exhaustive()
    }
}

impl DirectExchange {
    /// Creates an empty exchange.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of undelivered segments currently buffered.
    pub fn pending_segments(&self) -> usize {
        self.state.lock().len()
    }
}

impl Exchange for DirectExchange {
    fn put(&self, key: SegmentKey, data: Bytes) -> io::Result<()> {
        self.state.lock().insert(key, data);
        self.arrived.notify_all();
        Ok(())
    }

    fn collect(
        &self,
        job: u64,
        edge: u32,
        partition: u32,
        expected: u32,
    ) -> io::Result<Vec<Bytes>> {
        let mut st = self.state.lock();
        loop {
            let ready = (0..expected).all(|p| {
                st.contains_key(&SegmentKey {
                    job,
                    edge,
                    producer: p,
                    partition,
                })
            });
            if ready {
                break;
            }
            self.arrived.wait(&mut st);
        }
        let mut out = Vec::with_capacity(expected as usize);
        for p in 0..expected {
            out.push(
                st.remove(&SegmentKey {
                    job,
                    edge,
                    producer: p,
                    partition,
                })
                .expect("checked ready"),
            );
        }
        Ok(out)
    }

    fn supports_replay(&self) -> bool {
        false
    }
}

impl Exchange for CacheWorkerStore {
    fn put(&self, key: SegmentKey, data: Bytes) -> io::Result<()> {
        CacheWorkerStore::put(self, key, data)
    }

    fn collect(
        &self,
        job: u64,
        edge: u32,
        partition: u32,
        expected: u32,
    ) -> io::Result<Vec<Bytes>> {
        CacheWorkerStore::collect(self, job, edge, partition, expected)
    }

    fn supports_replay(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn key(producer: u32, partition: u32) -> SegmentKey {
        SegmentKey {
            job: 1,
            edge: 0,
            producer,
            partition,
        }
    }

    #[test]
    fn direct_exchange_roundtrip() {
        let ex = DirectExchange::new();
        ex.put(key(0, 0), Bytes::from_static(b"a")).unwrap();
        ex.put(key(1, 0), Bytes::from_static(b"b")).unwrap();
        let got = ex.collect(1, 0, 0, 2).unwrap();
        assert_eq!(
            got,
            vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")]
        );
        assert_eq!(ex.pending_segments(), 0);
        assert!(!ex.supports_replay());
    }

    #[test]
    fn direct_exchange_blocks_for_missing_producer() {
        let ex = Arc::new(DirectExchange::new());
        let e2 = Arc::clone(&ex);
        let reader = thread::spawn(move || e2.collect(1, 0, 0, 2).unwrap());
        ex.put(key(0, 0), Bytes::from_static(b"a")).unwrap();
        thread::sleep(std::time::Duration::from_millis(20));
        assert!(!reader.is_finished());
        ex.put(key(1, 0), Bytes::from_static(b"b")).unwrap();
        assert_eq!(reader.join().unwrap().len(), 2);
    }

    #[test]
    fn cache_worker_store_is_an_exchange_with_replay() {
        let store = CacheWorkerStore::new(1 << 20).unwrap();
        let ex: &dyn Exchange = &store;
        assert!(ex.supports_replay());
        ex.put(key(0, 0), Bytes::from_static(b"x")).unwrap();
        let got = ex.collect(1, 0, 0, 1).unwrap();
        assert_eq!(got[0], Bytes::from_static(b"x"));
    }

    #[test]
    fn partitions_are_independent() {
        let ex = DirectExchange::new();
        for part in 0..4u32 {
            ex.put(key(0, part), Bytes::from(vec![part as u8])).unwrap();
        }
        for part in (0..4u32).rev() {
            let got = ex.collect(1, 0, part, 1).unwrap();
            assert_eq!(got[0][0], part as u8);
        }
    }
}
