//! The three in-network shuffle schemes and adaptive selection (§III-B).

use std::fmt;

/// How shuffle data physically moves between producer and consumer tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShuffleScheme {
    /// Producers send directly to consumers: fewest memory copies, but
    /// `M × N` TCP connections — incast and retransmission trouble at scale.
    Direct,
    /// Producers write to the machine-local Cache Worker; Cache Workers
    /// exchange data machine-to-machine and consumers read from their local
    /// Cache Worker: fewest connections (`M + N + C(Y,2)`), two extra
    /// memory copies.
    Local,
    /// Producers write to the machine-local Cache Worker; consumers pull
    /// directly from the producer-side Cache Workers: `M + N × Y`
    /// connections, one extra memory copy.
    Remote,
}

/// Where intermediate shuffle data is staged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShuffleMedium {
    /// Swift's memory-based in-network shuffling.
    Memory,
    /// Disk-staged shuffling (the Spark / Bubble Execution baselines, and
    /// Swift's LRU spill path under memory pressure).
    Disk,
}

/// Extra memory copies a scheme introduces relative to Direct Shuffle
/// (§III-B: Local adds two, Remote adds one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtraCopies {
    /// Copies charged on the producer side (into the local Cache Worker).
    pub writer_side: u8,
    /// Copies charged on the consumer side (out of a Cache Worker).
    pub reader_side: u8,
}

impl ShuffleScheme {
    /// Total TCP connections needed for `m` producers, `n` consumers spread
    /// over `y` machines (§III-B):
    ///
    /// * Direct: `M × N`
    /// * Local: `M + N + C(Y, 2)` at most (executors↔local Cache Worker
    ///   plus pairwise Cache Worker links)
    /// * Remote: `M + N × Y` at most
    pub fn connection_count(self, m: u32, n: u32, y: u32) -> u64 {
        let (m, n, y) = (m as u64, n as u64, y as u64);
        match self {
            ShuffleScheme::Direct => m * n,
            ShuffleScheme::Local => m + n + y * y.saturating_sub(1) / 2,
            ShuffleScheme::Remote => m + n * y,
        }
    }

    /// Extra memory copies relative to Direct Shuffle: Local stages at both
    /// the writer- and reader-side Cache Workers (+2); Remote stages only at
    /// the writer side (+1).
    pub fn extra_memory_copies(self) -> ExtraCopies {
        match self {
            ShuffleScheme::Direct => ExtraCopies {
                writer_side: 0,
                reader_side: 0,
            },
            ShuffleScheme::Local => ExtraCopies {
                writer_side: 1,
                reader_side: 1,
            },
            ShuffleScheme::Remote => ExtraCopies {
                writer_side: 1,
                reader_side: 0,
            },
        }
    }

    /// Whether the scheme stages data in Cache Workers (Local and Remote).
    /// Only staged schemes can serve barrier edges, where the consumer may
    /// not even be scheduled when the producer finishes (§III-B), and only
    /// they survive producer-task completion for fault-recovery reuse.
    pub fn uses_cache_worker(self) -> bool {
        !matches!(self, ShuffleScheme::Direct)
    }
}

impl fmt::Display for ShuffleScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShuffleScheme::Direct => "direct",
            ShuffleScheme::Local => "local",
            ShuffleScheme::Remote => "remote",
        })
    }
}

/// Shuffle-size thresholds for adaptive scheme selection. The paper's
/// production setting is 10 000 / 90 000 shuffle edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveThresholds {
    /// Edges strictly below this use Direct Shuffle.
    pub small: u64,
    /// Edges strictly above this use Local Shuffle; in between, Remote.
    pub large: u64,
}

impl Default for AdaptiveThresholds {
    fn default() -> Self {
        AdaptiveThresholds {
            small: 10_000,
            large: 90_000,
        }
    }
}

impl AdaptiveThresholds {
    /// Selects the scheme for a shuffle of `edge_size` = `M × N` task pairs
    /// (§III-B: "Direct Shuffle is used for small-sized shuffle, Local
    /// Shuffle for huge-sized shuffle, and Remote Shuffle for middle-sized
    /// shuffle").
    pub fn select(self, edge_size: u64) -> ShuffleScheme {
        if edge_size < self.small {
            ShuffleScheme::Direct
        } else if edge_size <= self.large {
            ShuffleScheme::Remote
        } else {
            ShuffleScheme::Local
        }
    }
}

/// Selects a scheme with the default production thresholds.
pub fn select_scheme(edge_size: u64) -> ShuffleScheme {
    AdaptiveThresholds::default().select(edge_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_formulas_match_paper() {
        // M=100, N=200, Y=10
        assert_eq!(ShuffleScheme::Direct.connection_count(100, 200, 10), 20_000);
        assert_eq!(
            ShuffleScheme::Local.connection_count(100, 200, 10),
            100 + 200 + 45
        );
        assert_eq!(
            ShuffleScheme::Remote.connection_count(100, 200, 10),
            100 + 200 * 10
        );
    }

    #[test]
    fn connection_ordering_at_scale() {
        // Local < Remote < Direct for realistically large shuffles.
        let (m, n, y) = (1_000, 1_000, 100);
        let d = ShuffleScheme::Direct.connection_count(m, n, y);
        let l = ShuffleScheme::Local.connection_count(m, n, y);
        let r = ShuffleScheme::Remote.connection_count(m, n, y);
        assert!(l < r, "local {l} < remote {r}");
        assert!(r < d, "remote {r} < direct {d}");
    }

    #[test]
    fn copy_counts_match_paper() {
        assert_eq!(
            ShuffleScheme::Direct.extra_memory_copies(),
            ExtraCopies {
                writer_side: 0,
                reader_side: 0
            }
        );
        assert_eq!(
            ShuffleScheme::Local.extra_memory_copies(),
            ExtraCopies {
                writer_side: 1,
                reader_side: 1
            }
        );
        assert_eq!(
            ShuffleScheme::Remote.extra_memory_copies(),
            ExtraCopies {
                writer_side: 1,
                reader_side: 0
            }
        );
    }

    #[test]
    fn adaptive_selection_uses_production_thresholds() {
        assert_eq!(select_scheme(0), ShuffleScheme::Direct);
        assert_eq!(select_scheme(9_999), ShuffleScheme::Direct);
        assert_eq!(select_scheme(10_000), ShuffleScheme::Remote);
        assert_eq!(select_scheme(90_000), ShuffleScheme::Remote);
        assert_eq!(select_scheme(90_001), ShuffleScheme::Local);
        assert_eq!(select_scheme(u64::MAX), ShuffleScheme::Local);
    }

    #[test]
    fn custom_thresholds() {
        let t = AdaptiveThresholds {
            small: 10,
            large: 100,
        };
        assert_eq!(t.select(9), ShuffleScheme::Direct);
        assert_eq!(t.select(10), ShuffleScheme::Remote);
        assert_eq!(t.select(101), ShuffleScheme::Local);
    }

    #[test]
    fn only_staged_schemes_use_cache_workers() {
        assert!(!ShuffleScheme::Direct.uses_cache_worker());
        assert!(ShuffleScheme::Local.uses_cache_worker());
        assert!(ShuffleScheme::Remote.uses_cache_worker());
    }
}
