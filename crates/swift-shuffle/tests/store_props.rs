//! Randomized tests for the Cache Worker store and memory accounting,
//! driven by the in-tree seeded RNG (the workspace builds offline, so no
//! proptest): every payload survives arbitrary put/collect interleavings
//! at any capacity (spill is transparent), and the in-memory accounting
//! never exceeds the configured capacity.

use swift_shuffle::{Bytes, CacheWorkerMemory, CacheWorkerStore, SegmentKey};
use swift_sim::SimRng;

const CASES: u64 = 64;

fn key(job: u64, edge: u32, producer: u32, partition: u32) -> SegmentKey {
    SegmentKey {
        job,
        edge,
        producer,
        partition,
    }
}

/// Any (m producers × p partitions) put set collects back exactly, at any
/// memory capacity — spill must be invisible to consumers.
#[test]
fn store_roundtrips_under_any_capacity() {
    let mut rng = SimRng::new(0x5704_0001);
    for case in 0..CASES {
        let m = rng.range(1, 8) as u32;
        let parts = rng.range(1, 6) as u32;
        let capacity = rng.range(0, 4096);
        let payload_len = rng.range(0, 512) as usize;
        let store = CacheWorkerStore::new(capacity).unwrap();
        for producer in 0..m {
            for part in 0..parts {
                let byte = (producer * 31 + part) as u8;
                store
                    .put(
                        key(1, 0, producer, part),
                        Bytes::from(vec![byte; payload_len]),
                    )
                    .unwrap();
            }
        }
        assert!(store.in_memory_bytes() <= capacity, "case {case}");
        for part in 0..parts {
            let got = store.collect(1, 0, part, m).unwrap();
            assert_eq!(got.len(), m as usize, "case {case}");
            for (producer, b) in got.iter().enumerate() {
                assert_eq!(b.len(), payload_len, "case {case}");
                if payload_len > 0 {
                    assert_eq!(b[0], (producer as u32 * 31 + part) as u8, "case {case}");
                }
            }
        }
        assert_eq!(store.segment_count(), 0, "case {case}");
        assert_eq!(store.in_memory_bytes(), 0, "case {case}");
    }
}

/// collect_keep leaves segments intact for replay; a second read gets
/// identical data.
#[test]
fn collect_keep_is_repeatable() {
    let mut rng = SimRng::new(0x5704_0002);
    for case in 0..CASES {
        let m = rng.range(1, 6) as u32;
        let capacity = rng.range(0, 512);
        let store = CacheWorkerStore::new(capacity).unwrap();
        for producer in 0..m {
            store
                .put(
                    key(2, 1, producer, 0),
                    Bytes::from(vec![producer as u8; 64]),
                )
                .unwrap();
        }
        let a = store.collect_keep(2, 1, 0, m).unwrap();
        let b = store.collect_keep(2, 1, 0, m).unwrap();
        assert_eq!(&a, &b, "case {case}");
        assert_eq!(
            store.segment_count(),
            m as usize,
            "case {case}: segments retained"
        );
        store.delete_job(2).unwrap();
        assert_eq!(store.segment_count(), 0, "case {case}");
    }
}

/// The accounting model keeps in-memory bytes under capacity after every
/// insert, and never loses track of bytes across consume cycles.
#[test]
fn memory_accounting_invariants() {
    let mut rng = SimRng::new(0x5704_0003);
    for case in 0..CASES {
        let n_ops = rng.range(1, 60) as usize;
        let capacity = rng.range(100, 2000);
        let mut cw = CacheWorkerMemory::new(capacity);
        let mut live: std::collections::BTreeMap<u32, u32> = Default::default();
        for i in 0..n_ops {
            let producer = rng.range(0, 12) as u32;
            let bytes = rng.range(1, 600);
            let consumers = rng.range(1, 3) as u32;
            if i % 3 == 2 && !live.is_empty() {
                // Consume one pending segment fully.
                let (&p, &remaining) = live.iter().next().unwrap();
                for _ in 0..remaining {
                    cw.consume(key(1, 0, p, 0));
                }
                live.remove(&p);
            } else {
                cw.insert(key(1, 0, producer, 0), bytes, consumers);
                live.insert(producer, consumers);
            }
            assert!(
                cw.in_memory_bytes() <= capacity,
                "case {case}: in-memory {} > capacity {capacity}",
                cw.in_memory_bytes()
            );
            assert_eq!(cw.segment_count(), live.len(), "case {case}");
        }
        // Drain everything.
        cw.drop_job(1);
        assert_eq!(cw.in_memory_bytes(), 0, "case {case}");
        assert_eq!(cw.on_disk_bytes(), 0, "case {case}");
        assert_eq!(cw.segment_count(), 0, "case {case}");
    }
}
