//! Property tests for the Cache Worker store and memory accounting: every
//! payload survives arbitrary put/collect interleavings at any capacity
//! (spill is transparent), and the in-memory accounting never exceeds the
//! configured capacity.

use bytes::Bytes;
use proptest::prelude::*;
use swift_shuffle::{CacheWorkerMemory, CacheWorkerStore, SegmentKey};

fn key(job: u64, edge: u32, producer: u32, partition: u32) -> SegmentKey {
    SegmentKey { job, edge, producer, partition }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any (m producers × p partitions) put set collects back exactly, at
    /// any memory capacity — spill must be invisible to consumers.
    #[test]
    fn store_roundtrips_under_any_capacity(
        m in 1u32..8,
        parts in 1u32..6,
        capacity in 0u64..4096,
        payload_len in 0usize..512,
    ) {
        let store = CacheWorkerStore::new(capacity).unwrap();
        for producer in 0..m {
            for part in 0..parts {
                let byte = (producer * 31 + part) as u8;
                store
                    .put(key(1, 0, producer, part), Bytes::from(vec![byte; payload_len]))
                    .unwrap();
            }
        }
        prop_assert!(store.in_memory_bytes() <= capacity.max(0));
        for part in 0..parts {
            let got = store.collect(1, 0, part, m).unwrap();
            prop_assert_eq!(got.len(), m as usize);
            for (producer, b) in got.iter().enumerate() {
                prop_assert_eq!(b.len(), payload_len);
                if payload_len > 0 {
                    prop_assert_eq!(b[0], (producer as u32 * 31 + part) as u8);
                }
            }
        }
        prop_assert_eq!(store.segment_count(), 0);
        prop_assert_eq!(store.in_memory_bytes(), 0);
    }

    /// collect_keep leaves segments intact for replay; a second read gets
    /// identical data.
    #[test]
    fn collect_keep_is_repeatable(m in 1u32..6, capacity in 0u64..512) {
        let store = CacheWorkerStore::new(capacity).unwrap();
        for producer in 0..m {
            store
                .put(key(2, 1, producer, 0), Bytes::from(vec![producer as u8; 64]))
                .unwrap();
        }
        let a = store.collect_keep(2, 1, 0, m).unwrap();
        let b = store.collect_keep(2, 1, 0, m).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(store.segment_count(), m as usize, "segments retained");
        store.delete_job(2).unwrap();
        prop_assert_eq!(store.segment_count(), 0);
    }

    /// The accounting model keeps in-memory bytes under capacity after
    /// every insert, and never loses track of bytes across consume cycles.
    #[test]
    fn memory_accounting_invariants(
        ops in proptest::collection::vec((0u32..12, 1u64..600, 1u32..3), 1..60),
        capacity in 100u64..2000,
    ) {
        let mut cw = CacheWorkerMemory::new(capacity);
        let mut live: std::collections::HashMap<u32, u32> = Default::default();
        for (i, (producer, bytes, consumers)) in ops.iter().enumerate() {
            if i % 3 == 2 && !live.is_empty() {
                // Consume one pending segment fully.
                let (&p, &remaining) = live.iter().next().unwrap();
                for _ in 0..remaining {
                    cw.consume(swift_shuffle::SegmentKey { job: 1, edge: 0, producer: p, partition: 0 });
                }
                live.remove(&p);
            } else {
                cw.insert(
                    swift_shuffle::SegmentKey { job: 1, edge: 0, producer: *producer, partition: 0 },
                    *bytes,
                    *consumers,
                );
                live.insert(*producer, *consumers);
            }
            prop_assert!(cw.in_memory_bytes() <= capacity,
                "in-memory {} > capacity {capacity}", cw.in_memory_bytes());
            prop_assert_eq!(cw.segment_count(), live.len());
        }
        // Drain everything.
        cw.drop_job(1);
        prop_assert_eq!(cw.in_memory_bytes(), 0);
        prop_assert_eq!(cw.on_disk_bytes(), 0);
        prop_assert_eq!(cw.segment_count(), 0);
    }
}
