//! `swift-metrics`: a deterministic, dependency-free telemetry registry.
//!
//! The registry holds **series** — counters and gauges with stable numeric
//! IDs — and seals them into [`Frame`]s at `SimTime`-window boundaries.
//! Because series IDs, the per-frame series order and every value are pure
//! functions of the simulated run, the frame stream for a given
//! `(scenario, seed)` is **byte-identical across runs** — the same
//! determinism contract the trace stream already has, which is what lets
//! counter tracks live inside golden trace files.
//!
//! Conventions:
//!
//! * a **gauge** series reports its level at the sample instant
//!   (queue depth, live executors, staged bytes);
//! * a **counter** series reports the *delta accumulated since the
//!   previous frame* (events processed, bytes spilled), so window totals
//!   telescope: the sum over all frames equals the end-of-run cumulative
//!   value, integer-exact — the property the `RunReport` cross-check
//!   suite pins;
//! * a [`Histogram`] is a fixed-bucket latency distribution; it is not
//!   windowed (histograms summarize a whole run).
//!
//! The series vocabulary is the static [`SERIES`] table: adding a series
//! means appending a [`SeriesDef`] with a fresh ID. IDs are stable —
//! never renumber — because exported counter tracks (`s<id>=<value>` in
//! trace text, `"ph":"C"` rows in the Chrome export) and golden files
//! refer to them.

use swift_sim::SimDuration;

/// Stable numeric identifier of one series (index into [`SERIES`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesId(pub u16);

/// How a series' per-frame value is produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    /// Level at the sample instant.
    Gauge,
    /// Delta accumulated since the previous frame (drained on sample).
    Counter,
}

/// One entry of the static series vocabulary.
#[derive(Clone, Copy, Debug)]
pub struct SeriesDef {
    /// Stable numeric ID (the index of this entry in [`SERIES`]).
    pub id: SeriesId,
    /// Stable dotted name, `<subsystem>.<quantity>`.
    pub name: &'static str,
    /// Gauge or counter semantics.
    pub kind: SeriesKind,
    /// Unit label for display (`events`, `bytes`, `tasks`, ...).
    pub unit: &'static str,
    /// One-line description for docs and `--list`-style output.
    pub help: &'static str,
}

macro_rules! series {
    ($id:expr, $name:expr, $kind:ident, $unit:expr, $help:expr) => {
        SeriesDef {
            id: SeriesId($id),
            name: $name,
            kind: SeriesKind::$kind,
            unit: $unit,
            help: $help,
        }
    };
}

/// Event-queue depth of the simulator core (pending events).
pub const SIM_EVENT_QUEUE_DEPTH: SeriesId = SeriesId(0);
/// Simulator events processed per window.
pub const SIM_EVENTS: SeriesId = SeriesId(1);
/// Gang requests waiting in the scheduler's pending queue.
pub const SCHED_PENDING_REQUESTS: SeriesId = SeriesId(2);
/// Tasks queued across all pending gang requests.
pub const SCHED_PENDING_GANG_TASKS: SeriesId = SeriesId(3);
/// Jobs currently in wave mode.
pub const SCHED_WAVE_JOBS: SeriesId = SeriesId(4);
/// Task attempts started per window.
pub const SCHED_TASKS_STARTED: SeriesId = SeriesId(5);
/// Task attempts finished per window.
pub const SCHED_TASKS_FINISHED: SeriesId = SeriesId(6);
/// Entries in the scheduling-template cache.
pub const SCHED_TEMPLATE_ENTRIES: SeriesId = SeriesId(7);
/// Template-cache hits per window.
pub const SCHED_TEMPLATE_HITS: SeriesId = SeriesId(8);
/// Template-cache misses per window.
pub const SCHED_TEMPLATE_MISSES: SeriesId = SeriesId(9);
/// Bytes staged in Cache Worker memory/disk across the cluster.
pub const SHUFFLE_STORE_BYTES: SeriesId = SeriesId(10);
/// Bytes spilled by Cache Workers per window.
pub const SHUFFLE_SPILL_BYTES: SeriesId = SeriesId(11);
/// Bytes released by Cache Workers per window.
pub const SHUFFLE_EVICT_BYTES: SeriesId = SeriesId(12);
/// Executors on schedulable machines.
pub const CLUSTER_LIVE_EXECUTORS: SeriesId = SeriesId(13);
/// Executors currently running a task.
pub const CLUSTER_BUSY_EXECUTORS: SeriesId = SeriesId(14);
/// Whole-unit gang waits currently open.
pub const CLUSTER_GANG_WAITS_OPEN: SeriesId = SeriesId(15);
/// Events merged out of the shard lanes per window.
pub const SIM_SHARD_EVENTS: SeriesId = SeriesId(16);
/// Cross-shard messages (events scheduled onto a foreign lane) per window.
pub const SIM_SHARD_CROSS_MSGS: SeriesId = SeriesId(17);
/// Window barriers taken by the sharded core per window.
pub const SIM_SHARD_WINDOW_BARRIERS: SeriesId = SeriesId(18);
/// Idle lane-windows (a lane with no events while a sibling had some).
pub const SIM_SHARD_BARRIER_STALLS: SeriesId = SeriesId(19);
/// Jobs waiting in the service admission queue.
pub const SERVICE_QUEUE_DEPTH: SeriesId = SeriesId(20);
/// Jobs admitted by the service front door per window.
pub const SERVICE_JOBS_ADMITTED: SeriesId = SeriesId(21);
/// Jobs rejected with retry-after per window.
pub const SERVICE_JOBS_REJECTED: SeriesId = SeriesId(22);
/// Jobs completed by the service per window.
pub const SERVICE_JOBS_COMPLETED: SeriesId = SeriesId(23);
/// Dispatches that reused a warm session per window.
pub const SERVICE_WARM_HITS: SeriesId = SeriesId(24);
/// Dispatches that paid a cold session registration per window.
pub const SERVICE_COLD_STARTS: SeriesId = SeriesId(25);
/// Executors held by tenant sessions (warm + running).
pub const SERVICE_EXECUTORS_HELD: SeriesId = SeriesId(26);
/// Tenants with at least one queued or running job.
pub const SERVICE_ACTIVE_TENANTS: SeriesId = SeriesId(27);

/// Number of series in the **core vocabulary** — the prefix of [`SERIES`]
/// every registry carries. Frames from [`Registry::new`] list exactly
/// these, which keeps existing golden counter tracks byte-stable; the
/// shard-telemetry series above the boundary appear only in registries
/// built with [`Registry::with_shard_telemetry`].
pub const CORE_SERIES: usize = 16;

/// End of the shard-telemetry block: [`Registry::with_shard_telemetry`]
/// covers `SERIES[..SHARD_SERIES_END]`, so shard-telemetry frames (and
/// their goldens) keep their shape as later blocks are appended.
pub const SHARD_SERIES_END: usize = 20;

/// The static series vocabulary. Indexed by [`SeriesId`]; order and IDs
/// are stable (exported counter tracks and goldens refer to them). The
/// first [`CORE_SERIES`] entries are the core vocabulary; then opt-in
/// shard telemetry up to [`SHARD_SERIES_END`]; then the service front
/// door's series, carried only by [`Registry::with_service_telemetry`].
#[rustfmt::skip]
pub const SERIES: [SeriesDef; 28] = [
    series!(0, "sim.event_queue_depth", Gauge, "events", "event-queue depth of the simulator core"),
    series!(1, "sim.events", Counter, "events", "simulator events processed per window"),
    series!(2, "sched.pending_requests", Gauge, "requests", "gang requests waiting in the pending queue"),
    series!(3, "sched.pending_gang_tasks", Gauge, "tasks", "tasks queued across pending gang requests"),
    series!(4, "sched.wave_jobs", Gauge, "jobs", "jobs currently in wave mode"),
    series!(5, "sched.tasks_started", Counter, "tasks", "task attempts started per window"),
    series!(6, "sched.tasks_finished", Counter, "tasks", "task attempts finished per window"),
    series!(7, "sched.template_entries", Gauge, "templates", "entries in the scheduling-template cache"),
    series!(8, "sched.template_hits", Counter, "lookups", "template-cache hits per window"),
    series!(9, "sched.template_misses", Counter, "lookups", "template-cache misses per window"),
    series!(10, "shuffle.store_bytes", Gauge, "bytes", "bytes staged in Cache Worker memory/disk"),
    series!(11, "shuffle.spill_bytes", Counter, "bytes", "bytes spilled by Cache Workers per window"),
    series!(12, "shuffle.evict_bytes", Counter, "bytes", "bytes released by Cache Workers per window"),
    series!(13, "cluster.live_executors", Gauge, "executors", "executors on schedulable machines"),
    series!(14, "cluster.busy_executors", Gauge, "executors", "executors currently running a task"),
    series!(15, "cluster.gang_waits_open", Gauge, "gangs", "whole-unit gang waits currently open"),
    series!(16, "sim.shard.events", Counter, "events", "events merged out of the shard lanes per window"),
    series!(17, "sim.shard.cross_msgs", Counter, "messages", "cross-shard messages per window"),
    series!(18, "sim.shard.window_barriers", Counter, "barriers", "window barriers taken by the sharded core per window"),
    series!(19, "sim.shard.barrier_stalls", Counter, "lane-windows", "idle lane-windows at barriers per window"),
    series!(20, "service.queue_depth", Gauge, "jobs", "jobs waiting in the service admission queue"),
    series!(21, "service.jobs_admitted", Counter, "jobs", "jobs admitted by the front door per window"),
    series!(22, "service.jobs_rejected", Counter, "jobs", "jobs rejected with retry-after per window"),
    series!(23, "service.jobs_completed", Counter, "jobs", "jobs completed by the service per window"),
    series!(24, "service.warm_hits", Counter, "dispatches", "dispatches that reused a warm session per window"),
    series!(25, "service.cold_starts", Counter, "dispatches", "dispatches that paid a cold session registration per window"),
    series!(26, "service.executors_held", Gauge, "executors", "executors held by tenant sessions"),
    series!(27, "service.tenants_active", Gauge, "tenants", "tenants with at least one queued or running job"),
];

/// Looks a series definition up by ID. `None` for IDs outside the table
/// (a newer trace read by an older build).
pub fn series_def(id: u16) -> Option<&'static SeriesDef> {
    SERIES.get(id as usize)
}

/// Looks a series definition up by its dotted name.
pub fn series_by_name(name: &str) -> Option<&'static SeriesDef> {
    SERIES.iter().find(|d| d.name == name)
}

/// One sealed window: every series' value at (gauges) or over (counters)
/// the window ending at the sample instant. `values` lists **all** series
/// in ascending-ID order, so frames of one run are positionally
/// comparable and render byte-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Window index: `sample_time / window_duration`. Indices may skip
    /// (no sample lands in an empty window) and the final sealing frame
    /// of a run may repeat the last index.
    pub window: u64,
    /// `(series id, value)` for every registered series, ID-ascending.
    pub values: Vec<(u16, u64)>,
}

/// The live registry: current value per series, sealed into [`Frame`]s
/// by [`Registry::sample`]. A registry covers a **prefix** of [`SERIES`]
/// — the core vocabulary by default, the full table (shard telemetry
/// included) via [`Registry::with_shard_telemetry`]. Writes to series
/// outside the registry's vocabulary are ignored, so feeding code can run
/// unconditionally and the vocabulary choice alone decides frame shape.
#[derive(Debug)]
pub struct Registry {
    /// Current level (gauges) or accumulated-since-last-frame (counters).
    values: Vec<u64>,
    /// Last cumulative total seen per series, for
    /// [`Registry::set_cumulative`]-fed counters.
    prev_cumulative: Vec<u64>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry over the core vocabulary (the first [`CORE_SERIES`]
    /// entries of [`SERIES`]), all values zero. Frames from this registry
    /// are byte-identical to pre-shard-telemetry builds.
    pub fn new() -> Self {
        Registry {
            values: vec![0; CORE_SERIES],
            prev_cumulative: vec![0; CORE_SERIES],
        }
    }

    /// A registry extending the core vocabulary with the shard-telemetry
    /// block (`SERIES[..SHARD_SERIES_END]`). Opt-in: its frames carry
    /// more columns than the core vocabulary, so goldens recorded against
    /// [`Registry::new`] do not compare against it. The service block is
    /// *not* included — shard-telemetry frame shape is pinned by goldens.
    pub fn with_shard_telemetry() -> Self {
        Registry {
            values: vec![0; SHARD_SERIES_END],
            prev_cumulative: vec![0; SHARD_SERIES_END],
        }
    }

    /// A registry over the full [`SERIES`] vocabulary, the service front
    /// door's series included. Used by the `swift-service` sampler, whose
    /// frames carry every block.
    pub fn with_service_telemetry() -> Self {
        Registry {
            values: vec![0; SERIES.len()],
            prev_cumulative: vec![0; SERIES.len()],
        }
    }

    /// Number of series this registry covers (a prefix of [`SERIES`]).
    pub fn vocabulary_len(&self) -> usize {
        self.values.len()
    }

    /// Sets a gauge's level. No-op outside the registry's vocabulary.
    #[inline]
    pub fn set(&mut self, id: SeriesId, value: u64) {
        if let Some(v) = self.values.get_mut(id.0 as usize) {
            *v = value;
        }
    }

    /// Adds to a counter's in-window delta. No-op outside the registry's
    /// vocabulary.
    #[inline]
    pub fn add(&mut self, id: SeriesId, delta: u64) {
        if let Some(v) = self.values.get_mut(id.0 as usize) {
            *v += delta;
        }
    }

    /// Feeds a counter from a cumulative source: the in-window delta is
    /// `total - last total`. Saturates at zero if the source ever moved
    /// backwards (it must not, for a deterministic run). No-op outside
    /// the registry's vocabulary.
    #[inline]
    pub fn set_cumulative(&mut self, id: SeriesId, total: u64) {
        let i = id.0 as usize;
        if i >= self.values.len() {
            return;
        }
        self.values[i] += total.saturating_sub(self.prev_cumulative[i]);
        self.prev_cumulative[i] = total;
    }

    /// Current value of a series (gauge level or in-window counter
    /// delta); zero outside the registry's vocabulary.
    pub fn get(&self, id: SeriesId) -> u64 {
        self.values.get(id.0 as usize).copied().unwrap_or(0)
    }

    /// Seals the window ending now: snapshots every covered series into a
    /// [`Frame`] and drains the counters (gauges persist).
    pub fn sample(&mut self, window: u64) -> Frame {
        let values = SERIES[..self.values.len()]
            .iter()
            .map(|d| {
                let i = d.id.0 as usize;
                let v = self.values[i];
                if d.kind == SeriesKind::Counter {
                    self.values[i] = 0;
                }
                (d.id.0, v)
            })
            .collect();
        Frame { window, values }
    }
}

/// Fixed microsecond bucket bounds shared by every latency histogram:
/// ≤1ms, ≤10ms, ≤100ms, ≤1s, ≤10s, ≤100s, and overflow.
pub const LATENCY_BUCKETS_US: [u64; 6] =
    [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// A fixed-bucket histogram over [`LATENCY_BUCKETS_US`] (the last slot
/// counts samples above every bound).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[i]` = samples ≤ `LATENCY_BUCKETS_US[i]` (and > the previous
    /// bound); `counts[6]` = overflow.
    pub counts: [u64; 7],
    /// Total samples recorded.
    pub samples: u64,
    /// Sum of all samples, in microseconds.
    pub sum_micros: u64,
    /// Largest sample, in microseconds.
    pub max_micros: u64,
}

impl Histogram {
    /// Records one duration sample.
    pub fn observe(&mut self, d: SimDuration) {
        let us = d.as_micros();
        let slot = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.counts[slot] += 1;
        self.samples += 1;
        self.sum_micros += us;
        self.max_micros = self.max_micros.max(us);
    }

    /// Records one duration sample (alias of [`Histogram::observe`],
    /// kept for call sites that predate the registry crate).
    pub fn record(&mut self, d: SimDuration) {
        self.observe(d);
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros.checked_div(self.samples).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_table_ids_match_positions() {
        for (i, d) in SERIES.iter().enumerate() {
            assert_eq!(d.id.0 as usize, i, "series {} id out of order", d.name);
        }
        // Names are unique.
        for (i, a) in SERIES.iter().enumerate() {
            for b in &SERIES[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn core_vocabulary_boundary_is_stable() {
        // The core prefix ends exactly where shard telemetry begins, and
        // the shard block ends exactly where the service block begins —
        // moving either boundary would silently reshape recorded frames.
        assert_eq!(CORE_SERIES, 16);
        assert_eq!(SHARD_SERIES_END, 20);
        assert_eq!(SIM_SHARD_EVENTS.0 as usize, CORE_SERIES);
        assert_eq!(SERVICE_QUEUE_DEPTH.0 as usize, SHARD_SERIES_END);
        assert!(SERIES[..CORE_SERIES]
            .iter()
            .all(|d| !d.name.starts_with("sim.shard.") && !d.name.starts_with("service.")));
        assert!(SERIES[CORE_SERIES..SHARD_SERIES_END]
            .iter()
            .all(|d| d.name.starts_with("sim.shard.")));
        assert!(SERIES[SHARD_SERIES_END..]
            .iter()
            .all(|d| d.name.starts_with("service.")));
    }

    #[test]
    fn default_registry_frames_exclude_shard_series() {
        let mut core = Registry::new();
        // Shard-series writes are ignored, not a panic and not recorded.
        core.add(SIM_SHARD_CROSS_MSGS, 7);
        core.set_cumulative(SIM_SHARD_EVENTS, 9);
        assert_eq!(core.get(SIM_SHARD_CROSS_MSGS), 0);
        let f = core.sample(0);
        assert_eq!(f.values.len(), CORE_SERIES);
        assert!(f.values.iter().all(|&(id, _)| (id as usize) < CORE_SERIES));
    }

    #[test]
    fn shard_telemetry_registry_covers_shard_block() {
        let mut full = Registry::with_shard_telemetry();
        assert_eq!(full.vocabulary_len(), SHARD_SERIES_END);
        // The service block stays outside: shard-telemetry frame shape is
        // pinned by goldens recorded before the service series existed.
        full.set(SERVICE_QUEUE_DEPTH, 5);
        assert_eq!(full.get(SERVICE_QUEUE_DEPTH), 0);
        full.set_cumulative(SIM_SHARD_EVENTS, 4);
        let f0 = full.sample(0);
        full.set_cumulative(SIM_SHARD_EVENTS, 10);
        full.add(SIM_SHARD_BARRIER_STALLS, 2);
        let f1 = full.sample(1);
        assert_eq!(f0.values.len(), SHARD_SERIES_END);
        // Cumulative deltas telescope across the boundary series too.
        let events: u64 = [&f0, &f1]
            .iter()
            .map(|f| f.values[SIM_SHARD_EVENTS.0 as usize].1)
            .sum();
        assert_eq!(events, 10);
        assert_eq!(f1.values[SIM_SHARD_BARRIER_STALLS.0 as usize], (19, 2));
    }

    #[test]
    fn service_telemetry_registry_covers_full_table() {
        let mut svc = Registry::with_service_telemetry();
        assert_eq!(svc.vocabulary_len(), SERIES.len());
        svc.set(SERVICE_QUEUE_DEPTH, 11);
        svc.add(SERVICE_JOBS_ADMITTED, 3);
        svc.add(SERVICE_WARM_HITS, 2);
        let f = svc.sample(0);
        assert_eq!(f.values.len(), SERIES.len());
        assert_eq!(f.values[SERVICE_QUEUE_DEPTH.0 as usize], (20, 11));
        assert_eq!(f.values[SERVICE_JOBS_ADMITTED.0 as usize], (21, 3));
        assert_eq!(f.values[SERVICE_WARM_HITS.0 as usize], (24, 2));
        // Counters drain, the gauge persists.
        let f1 = svc.sample(1);
        assert_eq!(f1.values[SERVICE_JOBS_ADMITTED.0 as usize].1, 0);
        assert_eq!(f1.values[SERVICE_QUEUE_DEPTH.0 as usize].1, 11);
    }

    #[test]
    fn counters_drain_and_gauges_persist() {
        let mut r = Registry::new();
        r.set(SIM_EVENT_QUEUE_DEPTH, 42);
        r.add(SIM_EVENTS, 10);
        r.add(SIM_EVENTS, 5);
        let f0 = r.sample(0);
        assert_eq!(f0.values[SIM_EVENT_QUEUE_DEPTH.0 as usize], (0, 42));
        assert_eq!(f0.values[SIM_EVENTS.0 as usize], (1, 15));
        let f1 = r.sample(1);
        assert_eq!(f1.values[SIM_EVENT_QUEUE_DEPTH.0 as usize].1, 42);
        assert_eq!(f1.values[SIM_EVENTS.0 as usize].1, 0);
    }

    #[test]
    fn cumulative_feed_telescopes() {
        let mut r = Registry::new();
        r.set_cumulative(SCHED_TEMPLATE_HITS, 3);
        let f0 = r.sample(0);
        r.set_cumulative(SCHED_TEMPLATE_HITS, 3);
        let f1 = r.sample(1);
        r.set_cumulative(SCHED_TEMPLATE_HITS, 9);
        let f2 = r.sample(2);
        let total: u64 = [&f0, &f1, &f2]
            .iter()
            .map(|f| f.values[SCHED_TEMPLATE_HITS.0 as usize].1)
            .sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn frames_are_deterministic() {
        let run = || {
            let mut r = Registry::new();
            for i in 0..100u64 {
                r.add(SIM_EVENTS, i);
                r.set(CLUSTER_BUSY_EXECUTORS, i % 7);
            }
            r.sample(5)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::default();
        h.observe(SimDuration::from_micros(500));
        h.observe(SimDuration::from_micros(5_000));
        h.observe(SimDuration::from_micros(200_000_000));
        assert_eq!(h.samples, 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[6], 1);
        assert_eq!(h.max_micros, 200_000_000);
    }
}
