//! The calibrated cost model shared by every simulated experiment.
//!
//! All timing constants of the reproduction live here, in one documented
//! struct, so the TPC-H, Terasort, trace-replay and fault-injection
//! experiments run against the same calibration (DESIGN.md §5). Absolute
//! values are calibrated to the paper's published observations (e.g. "over
//! 71 s" of Spark task launching on Q9, "hundreds of milliseconds" per TCP
//! connection under congestion, 3 % vs 0.02 % retransmission rates); the
//! *shape* of each figure is what the model must reproduce.

use swift_shuffle::{ShuffleMedium, ShuffleScheme};
use swift_sim::SimDuration;

/// Timing and capacity constants of the simulated cluster.
#[derive(Clone, Debug)]
pub struct CostModel {
    // ---- control plane ----
    /// Time for Swift Admin to deliver a cached execution plan to a
    /// pre-launched executor (§II-C step 10 / Fig. 9b "L" phase for Swift).
    pub plan_delivery: SimDuration,
    /// Per-graphlet scheduling overhead inside Swift Admin (event handling,
    /// resource assignment).
    pub swift_schedule_overhead: SimDuration,
    /// Per-stage task-launch overhead of the Spark baseline: package
    /// download plus executor launch. Calibrated so that launching the
    /// critical tasks of TPC-H Q9 costs ~71 s in total (Fig. 9b).
    pub spark_stage_launch: SimDuration,
    /// Extra job-DAG partitioning overhead of the Bubble Execution baseline
    /// (the paper attributes part of Bubble's gap to "high partitioning
    /// overhead").
    pub bubble_partition_overhead: SimDuration,

    // ---- network ----
    /// NIC bandwidth per machine, bytes/second (10 GbE ≈ 1.25e9).
    pub net_bandwidth: f64,
    /// Expected number of tasks concurrently sharing one machine's NIC;
    /// a task's transfer bandwidth is `net_bandwidth / net_share_tasks`.
    pub net_share_tasks: f64,
    /// Opt-in NIC fair-sharing refinement (the bandwidth-splitting model
    /// used by network simulators such as dslab): when on, a shuffle
    /// transfer's bandwidth is the NIC fairly divided among the *actual*
    /// concurrent flows on the destination machine (consumer tasks
    /// co-located there), instead of the fixed expected-sharing divisor
    /// `net_share_tasks`. **Off by default**: the fixed divisor is part
    /// of the calibrated Fig. 12 cost shape, so every pinned digest and
    /// golden trace assumes it. Turning this on changes shuffle-read
    /// costs and therefore digests — it is a modeling refinement for
    /// experiments, not a drop-in.
    pub net_fair_share: bool,
    /// Uncongested TCP connection establishment time.
    pub tcp_connect_base: SimDuration,
    /// Total concurrent connection count at which per-connection setup time
    /// has doubled (linear growth beyond).
    pub tcp_congestion_conns: f64,
    /// Cap on per-connection setup time ("hundreds of milliseconds in a
    /// congested network", §V-E).
    pub tcp_connect_max: SimDuration,
    /// Baseline retransmission probability at `incast_fanin` concurrent
    /// inbound connections per consumer.
    pub retx_base_rate: f64,
    /// Fan-in at which `retx_base_rate` applies; the rate grows
    /// cubically with fan-in beyond it (TCP incast collapses fast once the
    /// switch buffers saturate, [54]).
    pub incast_fanin: f64,
    /// Retransmission rate cap (paper: Direct Shuffle reaches 3 %).
    pub retx_rate_cap: f64,
    /// Transfer-time multiplier per unit of retransmission rate: effective
    /// time = ideal × (1 + retx_penalty × rate). Timeout-driven recovery
    /// makes each retransmitted segment far more expensive than its size.
    pub retx_penalty: f64,
    /// Multiplier (< 1) applied to the Local Shuffle retransmission rate:
    /// Cache Workers aggregate many task-level streams into few large
    /// machine-level transfers, sidestepping incast (paper: < 0.02 %).
    pub local_chunk_mitigation: f64,
    /// Multiplier (< 1) applied to the retransmission rate of disk-staged
    /// shuffles: fetches of on-disk segments are paced by disk reads, so
    /// the incast burst is milder than memory-to-memory direct streaming.
    pub disk_fetch_mitigation: f64,
    /// Store-and-forward slowdown of Local Shuffle transfers: data is
    /// staged at the writer-side Cache Worker before the CW→CW hop, so the
    /// effective transfer takes `(1 + local_store_forward)` times longer.
    pub local_store_forward: f64,
    /// Accept-queue contention coefficient for Remote Shuffle reads: each
    /// source Cache Worker serves `N` puller connections, and queueing
    /// delay grows quadratically near saturation — the read path is
    /// charged `cw_accept_time × N²`.
    pub cw_accept_time: SimDuration,

    // ---- memory & disk ----
    /// Memory-copy bandwidth, bytes/second (one extra copy costs
    /// `bytes / mem_copy_bandwidth`; Local Shuffle adds two copies, Remote
    /// one, §III-B).
    pub mem_copy_bandwidth: f64,
    /// Sequential disk bandwidth, bytes/second (7.2k SATA ≈ 1.2e8).
    pub disk_bandwidth: f64,
    /// Per-file seek/open penalty for disk-based shuffle.
    pub disk_seek: SimDuration,
    /// Cache Worker memory capacity per machine, bytes.
    pub cache_worker_capacity: u64,

    // ---- failure detection (§IV-A) ----
    /// Heartbeat interval for small clusters (< `small_cluster_machines`).
    pub heartbeat_small: SimDuration,
    /// Heartbeat interval for medium clusters.
    pub heartbeat_medium: SimDuration,
    /// Heartbeat interval for large clusters (≥ `large_cluster_machines`).
    pub heartbeat_large: SimDuration,
    /// Upper bound (exclusive) on machine count for the "small" tier.
    pub small_cluster_machines: u32,
    /// Lower bound (inclusive) on machine count for the "large" tier.
    pub large_cluster_machines: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            plan_delivery: SimDuration::from_millis(50),
            swift_schedule_overhead: SimDuration::from_millis(20),
            spark_stage_launch: SimDuration::from_secs(6),
            bubble_partition_overhead: SimDuration::from_millis(500),
            net_bandwidth: 1.25e9,
            net_share_tasks: 8.0,
            net_fair_share: false,
            tcp_connect_base: SimDuration::from_micros(374),
            tcp_congestion_conns: 94_800.0,
            tcp_connect_max: SimDuration::from_millis(488),
            retx_base_rate: 0.000146,
            incast_fanin: 50.0,
            retx_rate_cap: 0.03,
            retx_penalty: 48.85,
            local_chunk_mitigation: 0.0112,
            disk_fetch_mitigation: 0.25,
            local_store_forward: 0.30,
            cw_accept_time: SimDuration::from_micros(3),
            mem_copy_bandwidth: 5.0e9,
            disk_bandwidth: 1.2e8,
            disk_seek: SimDuration::from_millis(8),
            cache_worker_capacity: 32 << 30,
            heartbeat_small: SimDuration::from_secs(5),
            heartbeat_medium: SimDuration::from_secs(10),
            heartbeat_large: SimDuration::from_secs(15),
            small_cluster_machines: 500,
            large_cluster_machines: 5_000,
        }
    }
}

/// Breakdown of one shuffle edge's cost, per producer/consumer task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShuffleCost {
    /// Shuffle-write time charged to each producer task.
    pub write_per_task: SimDuration,
    /// Shuffle-read time charged to each consumer task, including
    /// connection setup and retransmission penalties.
    pub read_per_task: SimDuration,
    /// Total TCP connections the scheme establishes for this edge.
    pub connections: u64,
    /// Modeled retransmission rate experienced by the transfer.
    pub retx_rate: f64,
}

impl CostModel {
    /// Per-task network bandwidth in bytes/second.
    pub fn per_task_net_bandwidth(&self) -> f64 {
        self.net_bandwidth / self.net_share_tasks
    }

    /// Time for one task to move `bytes` over the network (no penalties).
    pub fn net_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.per_task_net_bandwidth())
    }

    /// Time for one task to move `bytes` when `flows` concurrent flows
    /// share its machine's NIC. With [`CostModel::net_fair_share`] off
    /// (the default) this is exactly [`CostModel::net_transfer`] — the
    /// calibrated fixed-divisor model. With it on, the NIC is divided
    /// fairly among the actual flows (never less contended than a single
    /// full-rate flow), dslab-style.
    pub fn net_transfer_fair(&self, bytes: u64, flows: u64) -> SimDuration {
        if !self.net_fair_share {
            return self.net_transfer(bytes);
        }
        let bw = self.net_bandwidth / flows.max(1) as f64;
        SimDuration::from_secs_f64(bytes as f64 / bw)
    }

    /// Time for one extra in-memory copy of `bytes`.
    pub fn mem_copy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.mem_copy_bandwidth)
    }

    /// Sequential disk write/read of `bytes` plus one seek.
    pub fn disk_io(&self, bytes: u64) -> SimDuration {
        self.disk_seek + SimDuration::from_secs_f64(bytes as f64 / self.disk_bandwidth)
    }

    /// Per-connection TCP setup time when `total_conns` connections are
    /// being established across the shuffle: grows linearly with
    /// congestion, capped at [`CostModel::tcp_connect_max`].
    pub fn tcp_connect_time(&self, total_conns: u64) -> SimDuration {
        let factor = 1.0 + total_conns as f64 / self.tcp_congestion_conns;
        let t = self.tcp_connect_base.as_secs_f64() * factor;
        SimDuration::from_secs_f64(t.min(self.tcp_connect_max.as_secs_f64()))
    }

    /// Modeled retransmission rate for a consumer with `fan_in` concurrent
    /// inbound connections (cubic incast growth, capped).
    pub fn retx_rate(&self, fan_in: u64) -> f64 {
        let x = fan_in as f64 / self.incast_fanin;
        (self.retx_base_rate * x * x * x).min(self.retx_rate_cap)
    }

    /// Heartbeat interval by cluster size (§IV-A: 5 s / 10 s / 15 s for
    /// small / medium / large clusters).
    pub fn heartbeat_interval(&self, machines: u32) -> SimDuration {
        if machines < self.small_cluster_machines {
            self.heartbeat_small
        } else if machines < self.large_cluster_machines {
            self.heartbeat_medium
        } else {
            self.heartbeat_large
        }
    }

    /// Full cost of one shuffle edge.
    ///
    /// * `scheme` — Direct / Local / Remote (§III-B);
    /// * `medium` — memory (Swift) or disk (Spark / Bubble Execution
    ///   baselines);
    /// * `m`, `n` — producer and consumer task counts;
    /// * `y_src`, `y_dst` — distinct machines hosting producers/consumers;
    /// * `bytes_total` — total bytes crossing the edge.
    #[allow(clippy::too_many_arguments)]
    pub fn shuffle_edge_cost(
        &self,
        scheme: ShuffleScheme,
        medium: ShuffleMedium,
        m: u32,
        n: u32,
        y_src: u32,
        y_dst: u32,
        bytes_total: u64,
    ) -> ShuffleCost {
        let m64 = m.max(1) as u64;
        let n64 = n.max(1) as u64;
        let bytes_per_src = bytes_total / m64;
        let bytes_per_dst = bytes_total / n64;
        let connections = scheme.connection_count(m, n, y_src.max(y_dst));

        // Base write: serialize out of the producer. Disk-based shuffle
        // (Spark model) additionally spills every partition file.
        let mut write = self.mem_copy(bytes_per_src);
        if medium == ShuffleMedium::Disk {
            // One file per consumer partition is the classic sort-shuffle
            // pathology; we charge one aggregated file plus a per-partition
            // seek fraction to stay closer to modern consolidated shuffles.
            write += self.disk_io(bytes_per_src);
        }

        // Scheme-specific extra memory copies (§III-B: Local +2, Remote +1).
        let extra_copies = scheme.extra_memory_copies();
        write += self.mem_copy(bytes_per_src) * (extra_copies.writer_side as u64);

        // Read: connection setup + transfer (+ retx penalty) + copies (+ disk).
        let per_conn = self.tcp_connect_time(connections);
        let conns_per_reader: u64 = match scheme {
            ShuffleScheme::Direct => m64,
            ShuffleScheme::Remote => y_src.max(1) as u64,
            // Local Shuffle: the reader only talks to its machine-local
            // Cache Worker; CW↔CW connections amortize across all readers.
            ShuffleScheme::Local => 2,
        };
        let fan_in = match scheme {
            ShuffleScheme::Direct => m64,
            ShuffleScheme::Remote | ShuffleScheme::Local => y_src.max(1) as u64,
        };
        let mut retx = self.retx_rate(fan_in);
        if scheme == ShuffleScheme::Local {
            retx *= self.local_chunk_mitigation;
        }
        if medium == ShuffleMedium::Disk {
            retx *= self.disk_fetch_mitigation;
        }
        // Concurrent inbound flows at a destination machine: the consumer
        // tasks co-located there (only used when `net_fair_share` is on).
        let dst_flows = n64.div_ceil(y_dst.max(1) as u64);
        let mut transfer =
            self.net_transfer_fair(bytes_per_dst, dst_flows) * (1.0 + retx * self.retx_penalty);
        if scheme == ShuffleScheme::Local {
            // Data is staged at the writer-side Cache Worker before the
            // CW→CW hop: store-and-forward stretches the transfer.
            transfer = transfer * (1.0 + self.local_store_forward);
        }
        let mut read = per_conn * conns_per_reader + transfer;
        read += self.mem_copy(bytes_per_dst) * (extra_copies.reader_side as u64);
        if scheme == ShuffleScheme::Remote {
            // Accept-queue delay at the serving Cache Workers, which each
            // handle connections from all N pullers; queueing grows
            // quadratically as the accept queues saturate.
            read += self.cw_accept_time * (n64 * n64);
        }
        if medium == ShuffleMedium::Disk {
            read += self.disk_io(bytes_per_dst);
        }

        ShuffleCost {
            write_per_task: write,
            read_per_task: read,
            connections,
            retx_rate: retx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(cm: &CostModel, scheme: ShuffleScheme, m: u32, n: u32, y: u32, bytes: u64) -> f64 {
        let c = cm.shuffle_edge_cost(scheme, ShuffleMedium::Memory, m, n, y, y, bytes);
        c.write_per_task.as_secs_f64() + c.read_per_task.as_secs_f64()
    }

    /// The Fig. 12 orderings must fall out of the raw cost model.
    #[test]
    fn direct_wins_small_shuffles() {
        let cm = CostModel::default();
        // 45 x 45 ≈ 2 000 edges: small (< 10 000); ~0.5 MB per task pair.
        let bytes = 45 * 45 * 500_000;
        let d = cost(&cm, ShuffleScheme::Direct, 45, 45, 45, bytes);
        let l = cost(&cm, ShuffleScheme::Local, 45, 45, 45, bytes);
        let r = cost(&cm, ShuffleScheme::Remote, 45, 45, 45, bytes);
        assert!(d < l, "direct {d} vs local {l}");
        assert!(d < r, "direct {d} vs remote {r}");
    }

    #[test]
    fn remote_wins_medium_shuffles() {
        let cm = CostModel::default();
        // 200 x 200 = 40 000 edges: medium (10 000 ..= 90 000).
        let bytes = 200 * 200 * 500_000;
        let d = cost(&cm, ShuffleScheme::Direct, 200, 200, 100, bytes);
        let l = cost(&cm, ShuffleScheme::Local, 200, 200, 100, bytes);
        let r = cost(&cm, ShuffleScheme::Remote, 200, 200, 100, bytes);
        assert!(r < d, "remote {r} vs direct {d}");
        assert!(r <= l * 1.001, "remote {r} vs local {l}");
    }

    #[test]
    fn remote_competitive_across_medium_range() {
        // Across the medium bucket Remote beats Direct comfortably and
        // stays within a whisker of Local (the paper's medium gap between
        // the two staged schemes is only 3.8%).
        let cm = CostModel::default();
        let bytes = 230 * 230 * 500_000;
        let d = cost(&cm, ShuffleScheme::Direct, 230, 230, 100, bytes);
        let l = cost(&cm, ShuffleScheme::Local, 230, 230, 100, bytes);
        let r = cost(&cm, ShuffleScheme::Remote, 230, 230, 100, bytes);
        assert!(r < d, "remote {r} vs direct {d}");
        assert!(r < l * 1.01, "remote {r} vs local {l}");
    }

    #[test]
    fn local_wins_large_shuffles() {
        let cm = CostModel::default();
        // 500 x 500 = 250 000 edges: large (> 90 000).
        let bytes = 500 * 500 * 500_000;
        let d = cost(&cm, ShuffleScheme::Direct, 500, 500, 100, bytes);
        let l = cost(&cm, ShuffleScheme::Local, 500, 500, 100, bytes);
        let r = cost(&cm, ShuffleScheme::Remote, 500, 500, 100, bytes);
        assert!(l < d, "local {l} vs direct {d}");
        assert!(l < r, "local {l} vs remote {r}");
    }

    /// With the flag off (the default), the fair-share helper and the
    /// shuffle costs are bit-identical to the fixed-divisor model — the
    /// refinement must be invisible unless opted into.
    #[test]
    fn fair_share_off_is_byte_identical() {
        let cm = CostModel::default();
        assert!(!cm.net_fair_share);
        for bytes in [0u64, 1, 1 << 20, 4 << 30] {
            for flows in [0u64, 1, 7, 64] {
                assert_eq!(cm.net_transfer_fair(bytes, flows), cm.net_transfer(bytes));
            }
        }
        let a = cm.shuffle_edge_cost(
            ShuffleScheme::Direct,
            ShuffleMedium::Memory,
            200,
            200,
            100,
            100,
            4 << 30,
        );
        let mut on = cm.clone();
        on.net_fair_share = false;
        let b = on.shuffle_edge_cost(
            ShuffleScheme::Direct,
            ShuffleMedium::Memory,
            200,
            200,
            100,
            100,
            4 << 30,
        );
        assert_eq!(a, b);
    }

    /// Opting in actually changes the model: with many consumers packed
    /// onto few machines the NIC is split more ways than the fixed
    /// `net_share_tasks` divisor assumes, so reads slow down; spreading
    /// the same consumers across many machines recovers (monotone in
    /// co-location).
    #[test]
    fn fair_share_on_penalizes_colocation() {
        let cm = CostModel {
            net_fair_share: true,
            ..Default::default()
        };
        let read = |y_dst: u32| {
            cm.shuffle_edge_cost(
                ShuffleScheme::Direct,
                ShuffleMedium::Memory,
                64,
                64,
                64,
                y_dst,
                8 << 30,
            )
            .read_per_task
        };
        // 64 consumers on 2 machines → 32 flows/NIC, vs 8.0 expected.
        let packed = read(2);
        let spread = read(64);
        assert!(packed > spread, "packed {packed:?} vs spread {spread:?}");
        // And the packed case is slower than the fixed-divisor baseline.
        let base = CostModel::default()
            .shuffle_edge_cost(
                ShuffleScheme::Direct,
                ShuffleMedium::Memory,
                64,
                64,
                64,
                2,
                8 << 30,
            )
            .read_per_task;
        assert!(packed > base, "fair packed {packed:?} vs fixed {base:?}");
    }

    #[test]
    fn disk_medium_is_slower_than_memory() {
        let cm = CostModel::default();
        let mem = cm.shuffle_edge_cost(
            ShuffleScheme::Direct,
            ShuffleMedium::Memory,
            50,
            50,
            20,
            20,
            4 << 30,
        );
        let disk = cm.shuffle_edge_cost(
            ShuffleScheme::Direct,
            ShuffleMedium::Disk,
            50,
            50,
            20,
            20,
            4 << 30,
        );
        assert!(disk.write_per_task > mem.write_per_task);
        assert!(disk.read_per_task > mem.read_per_task);
    }

    #[test]
    fn connect_time_grows_then_caps() {
        let cm = CostModel::default();
        let a = cm.tcp_connect_time(100);
        let b = cm.tcp_connect_time(100_000);
        let c = cm.tcp_connect_time(1_000_000_000);
        assert!(a < b);
        assert!(b <= cm.tcp_connect_max);
        assert_eq!(c, cm.tcp_connect_max);
    }

    #[test]
    fn retx_rate_caps_at_3_percent() {
        let cm = CostModel::default();
        assert!(cm.retx_rate(10) < 0.001);
        assert_eq!(cm.retx_rate(100_000), 0.03);
        // direct shuffle with hundreds of producers reaches the cap
        assert_eq!(cm.retx_rate(600), 0.03);
        // staged schemes with ~100 source machines stay well below it
        assert!(cm.retx_rate(100) < 0.005);
        assert!(cm.retx_rate(100) * cm.local_chunk_mitigation < 0.0005);
    }

    #[test]
    fn heartbeat_tiers_match_paper() {
        let cm = CostModel::default();
        assert_eq!(cm.heartbeat_interval(100), SimDuration::from_secs(5));
        assert_eq!(cm.heartbeat_interval(2_000), SimDuration::from_secs(10));
        assert_eq!(cm.heartbeat_interval(10_000), SimDuration::from_secs(15));
    }
}
