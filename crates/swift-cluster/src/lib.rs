//! # swift-cluster — the simulated cluster substrate
//!
//! The paper evaluates Swift on 100- and 2 000-node production clusters;
//! this crate is the calibrated stand-in (DESIGN.md §2): machines hosting
//! pre-launched executors and one Cache Worker each, a cost model for the
//! network (TCP connection setup under congestion, incast-driven
//! retransmissions), disks, memory copies and control-plane overheads, and
//! the allocation/health primitives the schedulers drive.
//!
//! * [`Cluster`] — machines, executors, locality- and load-aware
//!   allocation, failure/read-only/revive transitions (§IV-A);
//! * [`CostModel`] — every timing constant of the reproduction, in one
//!   documented struct ([`CostModel::shuffle_edge_cost`] implements the
//!   §III-B shuffle cost composition for all scheme × medium combinations);
//! * [`Machine`] / [`Executor`] — passive state consumed by the
//!   `swift-scheduler` simulation loop.

#![warn(missing_docs)]

mod cluster;
mod cost;
mod ids;
mod machine;
mod shard;

pub use cluster::Cluster;
pub use cost::{CostModel, ShuffleCost};
pub use ids::{ExecutorId, MachineId};
pub use machine::{Executor, ExecutorState, Machine, MachineHealth};
pub use shard::ShardMap;
