//! Machines and pre-launched executors.

use crate::ids::{ExecutorId, MachineId};
use swift_shuffle::CacheWorkerMemory;

/// Lifecycle state of a Swift Executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutorState {
    /// Pre-launched and waiting in the resource pool (§II-B).
    Idle,
    /// Assigned to a task.
    Busy,
    /// Revoked: its machine failed or was drained; unusable until revived.
    Revoked,
}

/// One pre-launched executor.
#[derive(Clone, Debug)]
pub struct Executor {
    /// Executor id (dense index).
    pub id: ExecutorId,
    /// Hosting machine.
    pub machine: MachineId,
    /// Current state.
    pub state: ExecutorState,
}

/// Health state of a machine (§IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineHealth {
    /// Schedulable.
    Healthy,
    /// Marked read-only by the health monitor: running tasks drain, no new
    /// tasks are scheduled.
    ReadOnly,
    /// Crashed / revoked: all executors gone.
    Failed,
}

/// One worker machine: a set of executors plus its Cache Worker.
#[derive(Debug)]
pub struct Machine {
    /// Machine id (dense index).
    pub id: MachineId,
    /// First executor id hosted here (executors are contiguous per machine).
    pub first_executor: u32,
    /// Number of executors hosted here.
    pub executor_count: u32,
    /// Health state.
    pub health: MachineHealth,
    /// Stack of free executor ids (relative to `first_executor`).
    pub(crate) free: Vec<u32>,
    /// The machine's Cache Worker memory accounting.
    pub cache: CacheWorkerMemory,
    /// Count of task failures recently observed on this machine, consumed
    /// by the health monitor.
    pub recent_task_failures: u32,
}

impl Machine {
    /// Number of currently free executors.
    pub fn free_executors(&self) -> u32 {
        self.free.len() as u32
    }

    /// Number of currently busy executors.
    pub fn busy_executors(&self) -> u32 {
        self.executor_count - self.free_executors()
    }

    /// Whether new tasks may be scheduled here.
    pub fn schedulable(&self) -> bool {
        self.health == MachineHealth::Healthy
    }
}
