//! The cluster container: allocation, release, health transitions.

use crate::cost::CostModel;
use crate::ids::{ExecutorId, MachineId};
use crate::machine::{Executor, ExecutorState, Machine, MachineHealth};
use swift_shuffle::CacheWorkerMemory;

/// Bucketed-bitset index of schedulable machines keyed by free-executor
/// count: `buckets[c]` holds a bit per machine with exactly `c` free
/// executors. Allocation's "most free machine, ties to highest id" query
/// is then one word-scan of the highest nonempty bucket, and the per-task
/// maintenance (a machine moving between adjacent buckets) is two bit
/// flips — replacing the `BTreeSet<(free, MachineId)>` whose node
/// rebalancing dominated `allocate`/`release` profiles.
///
/// This is a pure cache over machine state: [`Cluster::allocate`]
/// cross-checks its answer against a naive scan in debug builds.
#[derive(Debug)]
struct FreeIndex {
    /// `buckets[c]` = bitset over machine ids with exactly `c` free
    /// executors (index 0 unused: fully-busy machines are absent).
    buckets: Vec<Vec<u64>>,
    /// Machines per bucket, to maintain `max_bucket`.
    counts: Vec<u32>,
    /// Highest `c` with a nonempty bucket; 0 when nothing is free.
    max_bucket: usize,
}

impl FreeIndex {
    fn new(machines: u32, max_free: u32) -> Self {
        let words = (machines as usize).div_ceil(64);
        FreeIndex {
            buckets: vec![vec![0u64; words]; max_free as usize + 1],
            counts: vec![0; max_free as usize + 1],
            max_bucket: 0,
        }
    }

    fn insert(&mut self, free: u32, mid: MachineId) {
        let c = free as usize;
        let word = &mut self.buckets[c][mid.index() / 64];
        let bit = 1u64 << (mid.index() % 64);
        debug_assert_eq!(*word & bit, 0, "machine {mid} already in bucket {c}");
        *word |= bit;
        self.counts[c] += 1;
        self.max_bucket = self.max_bucket.max(c);
    }

    fn remove(&mut self, free: u32, mid: MachineId) {
        let c = free as usize;
        let word = &mut self.buckets[c][mid.index() / 64];
        let bit = 1u64 << (mid.index() % 64);
        debug_assert_ne!(*word & bit, 0, "machine {mid} not in bucket {c}");
        *word &= !bit;
        self.counts[c] -= 1;
        while self.max_bucket > 0 && self.counts[self.max_bucket] == 0 {
            self.max_bucket -= 1;
        }
    }

    /// The machine with the most free executors, ties broken toward the
    /// highest machine id — the exact order the old `(free, id)` set's
    /// `next_back` produced.
    fn most_free(&self) -> Option<MachineId> {
        if self.max_bucket == 0 {
            return None;
        }
        for (w, &word) in self.buckets[self.max_bucket].iter().enumerate().rev() {
            if word != 0 {
                let b = 63 - word.leading_zeros() as usize;
                return Some(MachineId((w * 64 + b) as u32));
            }
        }
        unreachable!("counts say bucket {} is nonempty", self.max_bucket)
    }
}

/// A simulated cluster of machines, each hosting a fixed number of
/// pre-launched Swift Executors and one Cache Worker.
///
/// Allocation follows the paper's placement rule (§III-A2): prefer the
/// requested locality machines, otherwise pick the most free machine, so
/// load spreads and "scheduling flock" is avoided.
#[derive(Debug)]
pub struct Cluster {
    machines: Vec<Machine>,
    executors: Vec<Executor>,
    cost: CostModel,
    /// Schedulable machines with free executors, bucketed by free count.
    free_index: FreeIndex,
    total_free: u32,
    /// Executors on `Healthy` machines (maintained counter; the naive
    /// derivation is the debug cross-check in `live_executor_count`).
    live: u32,
    /// Executors in state `Busy` (same discipline).
    busy: u32,
}

impl Cluster {
    /// Builds a cluster of `machines` machines with `executors_per_machine`
    /// executors each, using `cost` for every derived timing.
    pub fn new(machines: u32, executors_per_machine: u32, cost: CostModel) -> Self {
        assert!(
            machines > 0 && executors_per_machine > 0,
            "cluster must be non-empty"
        );
        let mut ms = Vec::with_capacity(machines as usize);
        let mut es = Vec::with_capacity((machines * executors_per_machine) as usize);
        let mut free_index = FreeIndex::new(machines, executors_per_machine);
        for m in 0..machines {
            let first = m * executors_per_machine;
            for e in 0..executors_per_machine {
                es.push(Executor {
                    id: ExecutorId(first + e),
                    machine: MachineId(m),
                    state: ExecutorState::Idle,
                });
            }
            ms.push(Machine {
                id: MachineId(m),
                first_executor: first,
                executor_count: executors_per_machine,
                health: MachineHealth::Healthy,
                // LIFO stack: lowest relative index allocated first.
                free: (0..executors_per_machine).rev().collect(),
                cache: CacheWorkerMemory::new(cost.cache_worker_capacity),
                recent_task_failures: 0,
            });
            free_index.insert(executors_per_machine, MachineId(m));
        }
        Cluster {
            machines: ms,
            executors: es,
            cost,
            free_index,
            total_free: machines * executors_per_machine,
            live: machines * executors_per_machine,
            busy: 0,
        }
    }

    /// The cluster's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Number of machines.
    pub fn machine_count(&self) -> u32 {
        self.machines.len() as u32
    }

    /// Number of executors (all states).
    pub fn executor_count(&self) -> u32 {
        self.executors.len() as u32
    }

    /// Executors currently free (idle on healthy machines).
    pub fn free_executor_count(&self) -> u32 {
        self.total_free
    }

    /// Executors on healthy (schedulable) machines — the capacity a gang
    /// can ever hope to hold at once. Shrinks as machines fail or drain
    /// read-only; the scheduler must size gangs against this, not against
    /// [`Cluster::executor_count`], or a gang sized for the original
    /// cluster deadlocks after a crash. O(1): a maintained counter,
    /// cross-checked against the machine scan in debug builds.
    pub fn live_executor_count(&self) -> u32 {
        debug_assert_eq!(
            self.live,
            self.machines
                .iter()
                .filter(|m| m.health == MachineHealth::Healthy)
                .map(|m| m.executor_count)
                .sum::<u32>(),
            "live-executor counter drifted from machine state"
        );
        self.live
    }

    /// Executors currently running tasks — the paper's resource-utilization
    /// indicator (Fig. 10 plots this over time). O(1): a maintained
    /// counter, cross-checked against the executor scan in debug builds.
    pub fn busy_executor_count(&self) -> u32 {
        debug_assert_eq!(
            self.busy,
            self.executors
                .iter()
                .filter(|e| e.state == ExecutorState::Busy)
                .count() as u32,
            "busy-executor counter drifted from executor state"
        );
        self.busy
    }

    /// Immutable access to a machine.
    pub fn machine(&self, id: MachineId) -> &Machine {
        &self.machines[id.index()]
    }

    /// Bytes staged across all Cache Workers (memory and disk) — the
    /// shuffle store occupancy the counter-sample telemetry reports.
    /// O(machines); only called at counter-window boundaries.
    pub fn cache_live_bytes(&self) -> u64 {
        self.machines.iter().map(|m| m.cache.live_bytes()).sum()
    }

    /// Mutable access to a machine's Cache Worker accounting.
    pub fn cache_mut(&mut self, id: MachineId) -> &mut swift_shuffle::CacheWorkerMemory {
        &mut self.machines[id.index()].cache
    }

    /// Immutable access to an executor.
    pub fn executor(&self, id: ExecutorId) -> &Executor {
        &self.executors[id.index()]
    }

    /// The machine hosting `executor`.
    pub fn machine_of(&self, executor: ExecutorId) -> MachineId {
        self.executors[executor.index()].machine
    }

    /// Allocates one executor, preferring the `locality` machines (§III-A2:
    /// data locality first, then machine load — the most free machine).
    /// Returns `None` when no healthy machine has a free executor.
    pub fn allocate(&mut self, locality: &[MachineId]) -> Option<ExecutorId> {
        // Locality pass: among the preferred machines, pick the one with
        // most free executors (load consideration within the preference).
        let mut best: Option<(u32, MachineId)> = None;
        for &mid in locality {
            let Some(m) = self.machines.get(mid.index()) else {
                continue;
            };
            if m.schedulable() && m.free_executors() > 0 {
                let key = (m.free_executors(), mid);
                if best.is_none_or(|b| key > b) {
                    best = Some(key);
                }
            }
        }
        let target = match best {
            Some((_, mid)) => mid,
            // Most free machine overall.
            None => {
                let mid = self.free_index.most_free();
                debug_assert_eq!(
                    mid,
                    self.machines
                        .iter()
                        .filter(|m| m.schedulable() && m.free_executors() > 0)
                        .map(|m| (m.free_executors(), m.id))
                        .max()
                        .map(|(_, id)| id),
                    "free-index most-free disagrees with naive machine scan"
                );
                mid?
            }
        };
        self.take_from(target)
    }

    /// Allocates up to `n` executors (partial results possible), locality
    /// preferences applied to each.
    pub fn allocate_many(&mut self, n: u32, locality: &[MachineId]) -> Vec<ExecutorId> {
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            match self.allocate(locality) {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out
    }

    fn take_from(&mut self, mid: MachineId) -> Option<ExecutorId> {
        let m = &mut self.machines[mid.index()];
        let old_free = m.free_executors();
        let rel = m.free.pop()?;
        let eid = ExecutorId(m.first_executor + rel);
        self.executors[eid.index()].state = ExecutorState::Busy;
        self.free_index.remove(old_free, mid);
        if old_free > 1 {
            self.free_index.insert(old_free - 1, mid);
        }
        self.total_free -= 1;
        self.busy += 1;
        Some(eid)
    }

    /// Returns a busy executor to the pool (task finished). On `ReadOnly`
    /// machines the executor is *revoked* instead of pooled — the paper's
    /// draining rule ("Executors on read-only machines will keep running
    /// until no more task is left unfinished in them. Then, the resources
    /// are revoked.").
    pub fn release(&mut self, eid: ExecutorId) {
        let ex = &mut self.executors[eid.index()];
        assert_eq!(
            ex.state,
            ExecutorState::Busy,
            "release of non-busy executor {eid}"
        );
        self.busy -= 1;
        let mid = ex.machine;
        let m = &mut self.machines[mid.index()];
        match m.health {
            MachineHealth::Healthy => {
                ex.state = ExecutorState::Idle;
                let old_free = m.free_executors();
                m.free.push(eid.0 - m.first_executor);
                if old_free > 0 {
                    self.free_index.remove(old_free, mid);
                }
                self.free_index.insert(old_free + 1, mid);
                self.total_free += 1;
            }
            MachineHealth::ReadOnly | MachineHealth::Failed => {
                ex.state = ExecutorState::Revoked;
            }
        }
    }

    /// Fails a machine: all its executors are revoked immediately. Returns
    /// the executors that were busy (their tasks need failure recovery).
    pub fn fail_machine(&mut self, mid: MachineId) -> Vec<ExecutorId> {
        let m = &mut self.machines[mid.index()];
        if m.health == MachineHealth::Failed {
            return Vec::new();
        }
        let old_free = m.free_executors();
        if m.health == MachineHealth::Healthy {
            if old_free > 0 {
                self.free_index.remove(old_free, mid);
                self.total_free -= old_free;
            }
            self.live -= m.executor_count;
        }
        m.health = MachineHealth::Failed;
        m.free.clear();
        let mut lost = Vec::new();
        for e in 0..m.executor_count {
            let eid = ExecutorId(m.first_executor + e);
            let ex = &mut self.executors[eid.index()];
            if ex.state == ExecutorState::Busy {
                lost.push(eid);
                self.busy -= 1;
            }
            ex.state = ExecutorState::Revoked;
        }
        lost
    }

    /// Marks a machine read-only (§IV-A: an unhealthy machine stops taking
    /// new tasks; running tasks drain). Its free executors are revoked at
    /// once; busy ones are revoked as they release.
    pub fn mark_read_only(&mut self, mid: MachineId) {
        let m = &mut self.machines[mid.index()];
        if m.health != MachineHealth::Healthy {
            return;
        }
        let old_free = m.free_executors();
        if old_free > 0 {
            self.free_index.remove(old_free, mid);
            self.total_free -= old_free;
        }
        self.live -= m.executor_count;
        for &rel in &m.free {
            self.executors[(m.first_executor + rel) as usize].state = ExecutorState::Revoked;
        }
        m.free.clear();
        m.health = MachineHealth::ReadOnly;
    }

    /// Brings a failed or read-only machine back as healthy with all
    /// executors idle (simulating repair + executor re-launch).
    pub fn revive_machine(&mut self, mid: MachineId) {
        let m = &mut self.machines[mid.index()];
        if m.health == MachineHealth::Healthy {
            return;
        }
        m.health = MachineHealth::Healthy;
        m.free = (0..m.executor_count).rev().collect();
        for e in 0..m.executor_count {
            let ex = &mut self.executors[(m.first_executor + e) as usize];
            if ex.state == ExecutorState::Busy {
                // A draining (read-only) machine may still have busy
                // executors; revival re-launches everything idle.
                self.busy -= 1;
            }
            ex.state = ExecutorState::Idle;
        }
        self.free_index.insert(m.executor_count, mid);
        self.total_free += m.executor_count;
        self.live += m.executor_count;
    }

    /// Iterates over all machines.
    pub fn machines(&self) -> impl Iterator<Item = &Machine> {
        self.machines.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cluster {
        Cluster::new(4, 3, CostModel::default())
    }

    #[test]
    fn initial_pool_is_fully_free() {
        let c = small();
        assert_eq!(c.machine_count(), 4);
        assert_eq!(c.executor_count(), 12);
        assert_eq!(c.free_executor_count(), 12);
        assert_eq!(c.busy_executor_count(), 0);
    }

    #[test]
    fn allocate_prefers_locality() {
        let mut c = small();
        let e = c.allocate(&[MachineId(2)]).unwrap();
        assert_eq!(c.machine_of(e), MachineId(2));
        assert_eq!(c.free_executor_count(), 11);
    }

    #[test]
    fn allocate_without_locality_picks_most_free() {
        let mut c = small();
        // Drain machine 0 down to 1 free; fresh machines have 3.
        let a = c.allocate(&[MachineId(0)]).unwrap();
        let b = c.allocate(&[MachineId(0)]).unwrap();
        assert_eq!(c.machine_of(a), MachineId(0));
        assert_eq!(c.machine_of(b), MachineId(0));
        // Most free is now machine 1/2/3 (3 free each); ties break by id —
        // the index's most_free is the largest (3, m3).
        let e = c.allocate(&[]).unwrap();
        assert_eq!(c.machine_of(e), MachineId(3));
    }

    #[test]
    fn locality_falls_back_when_preferred_full() {
        let mut c = small();
        for _ in 0..3 {
            c.allocate(&[MachineId(1)]).unwrap();
        }
        let e = c.allocate(&[MachineId(1)]).unwrap();
        assert_ne!(c.machine_of(e), MachineId(1));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut c = small();
        let got = c.allocate_many(100, &[]);
        assert_eq!(got.len(), 12);
        assert!(c.allocate(&[]).is_none());
        assert_eq!(c.free_executor_count(), 0);
        assert_eq!(c.busy_executor_count(), 12);
    }

    #[test]
    fn release_returns_to_pool() {
        let mut c = small();
        let e = c.allocate(&[]).unwrap();
        c.release(e);
        assert_eq!(c.free_executor_count(), 12);
        assert_eq!(c.executor(e).state, ExecutorState::Idle);
    }

    #[test]
    fn fail_machine_revokes_and_reports_busy() {
        let mut c = small();
        let e0 = c.allocate(&[MachineId(0)]).unwrap();
        let lost = c.fail_machine(MachineId(0));
        assert_eq!(lost, vec![e0]);
        assert_eq!(c.free_executor_count(), 9);
        assert_eq!(c.live_executor_count(), 9);
        assert_eq!(c.busy_executor_count(), 0);
        assert!(c.allocate(&[MachineId(0)]).map(|e| c.machine_of(e)) != Some(MachineId(0)));
        // Idempotent.
        assert!(c.fail_machine(MachineId(0)).is_empty());
        assert_eq!(c.live_executor_count(), 9);
    }

    #[test]
    fn read_only_drains() {
        let mut c = small();
        let e = c.allocate(&[MachineId(1)]).unwrap();
        c.mark_read_only(MachineId(1));
        assert_eq!(c.live_executor_count(), 9);
        assert_eq!(c.busy_executor_count(), 1);
        // No new allocations on m1.
        for _ in 0..8 {
            let got = c.allocate(&[MachineId(1)]).unwrap();
            assert_ne!(c.machine_of(got), MachineId(1));
        }
        // The busy executor keeps running; on release it is revoked, not pooled.
        c.release(e);
        assert_eq!(c.executor(e).state, ExecutorState::Revoked);
        assert_eq!(c.busy_executor_count(), 8);
    }

    #[test]
    fn revive_restores_full_capacity() {
        let mut c = small();
        c.allocate(&[MachineId(0)]).unwrap();
        c.fail_machine(MachineId(0));
        c.revive_machine(MachineId(0));
        assert_eq!(c.free_executor_count(), 12);
        assert_eq!(c.live_executor_count(), 12);
        let e = c.allocate(&[MachineId(0)]).unwrap();
        assert_eq!(c.machine_of(e), MachineId(0));
    }

    #[test]
    fn revive_of_draining_machine_resets_busy_count() {
        let mut c = small();
        let e = c.allocate(&[MachineId(1)]).unwrap();
        c.mark_read_only(MachineId(1));
        assert_eq!(c.busy_executor_count(), 1);
        // Revive while a task is still draining: everything re-launches
        // idle, so the busy counter must drop with the executor states.
        c.revive_machine(MachineId(1));
        assert_eq!(c.busy_executor_count(), 0);
        assert_eq!(c.executor(e).state, ExecutorState::Idle);
        assert_eq!(c.free_executor_count(), 12);
    }

    #[test]
    fn free_index_stays_consistent_under_churn() {
        let mut c = Cluster::new(8, 4, CostModel::default());
        let mut held = Vec::new();
        for round in 0..50 {
            if round % 3 == 0 && !held.is_empty() {
                c.release(held.pop().unwrap());
            } else if let Some(e) = c.allocate(&[]) {
                held.push(e);
            }
            let free_sum: u32 = c
                .machines()
                .filter(|m| m.schedulable())
                .map(|m| m.free_executors())
                .sum();
            assert_eq!(free_sum, c.free_executor_count());
        }
    }

    #[test]
    fn counters_stay_consistent_under_fault_churn() {
        // Mixed allocate/release/fail/revive churn; the debug_assert
        // cross-checks inside the count accessors do the real checking.
        let mut c = Cluster::new(9, 3, CostModel::default());
        let mut held: Vec<ExecutorId> = Vec::new();
        for round in 0u32..120 {
            match round % 7 {
                0 | 1 | 4 => {
                    if let Some(e) = c.allocate(&[]) {
                        held.push(e);
                    }
                }
                2 => {
                    if let Some(e) = held.pop() {
                        if c.executor(e).state == ExecutorState::Busy {
                            c.release(e);
                        }
                    }
                }
                3 => {
                    // Held executors on the failed machine become Revoked;
                    // the Busy guard in the release arm skips them.
                    c.fail_machine(MachineId(round % 9));
                }
                5 => c.mark_read_only(MachineId((round + 3) % 9)),
                _ => c.revive_machine(MachineId((round + 1) % 9)),
            }
            let live = c.live_executor_count();
            let busy = c.busy_executor_count();
            let free = c.free_executor_count();
            assert!(free + busy <= c.executor_count());
            assert!(live <= c.executor_count());
        }
    }
}
