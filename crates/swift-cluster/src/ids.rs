//! Identifiers for simulated cluster entities.

use std::fmt;

/// Identifier of a worker machine; dense index into the cluster's machine
/// list.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

/// Identifier of a Swift Executor; dense index into the cluster's executor
/// list. Executors are pre-launched when the cluster starts (§II-B) and
/// live for the whole run unless their machine fails.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExecutorId(pub u32);

impl MachineId {
    /// Index into the machine list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ExecutorId {
    /// Index into the executor list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for ExecutorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for ExecutorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(format!("{}", MachineId(4)), "m4");
        assert_eq!(format!("{}", ExecutorId(123)), "e123");
    }
}
