//! Group-aware machine/executor indexing for the sharded simulator core.
//!
//! The sharded event loop partitions the cluster into K *shard groups* of
//! contiguous machines (and, through the dense `machine × executors`
//! layout, contiguous executors). [`ShardMap`] is the one place that
//! mapping lives: the scheduler routes machine-anchored events
//! (plan deliveries, task completions, machine failures) to the owning
//! group, and control-plane events to group 0. The map is a pure function
//! of `(machines, executors_per_machine, shards)` — no state, so routing
//! is deterministic by construction.

use crate::ids::{ExecutorId, MachineId};
use std::ops::Range;

/// Maps machines and executors onto K contiguous shard groups.
///
/// Groups are balanced to within one machine: group `s` owns machines
/// `[ceil(s·M/K), ceil((s+1)·M/K))`, which is the inverse of the O(1)
/// lookup `shard(m) = m·K/M`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    machines: u32,
    executors_per_machine: u32,
    shards: u32,
}

impl ShardMap {
    /// Builds a map of `machines` machines (each hosting
    /// `executors_per_machine` executors) onto `shards` groups. Shard
    /// counts are clamped to `1..=machines` so every group owns at least
    /// one machine.
    pub fn new(machines: u32, executors_per_machine: u32, shards: u32) -> Self {
        debug_assert!(machines > 0 && executors_per_machine > 0);
        ShardMap {
            machines: machines.max(1),
            executors_per_machine: executors_per_machine.max(1),
            shards: shards.clamp(1, machines.max(1)),
        }
    }

    /// Number of shard groups (K), after clamping.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The group owning machine `m`.
    #[inline]
    pub fn machine(&self, m: MachineId) -> u32 {
        debug_assert!(m.0 < self.machines, "machine {m} out of range");
        ((u64::from(m.0) * u64::from(self.shards)) / u64::from(self.machines)) as u32
    }

    /// The group owning executor `e` (via its machine: executor ids are
    /// dense `machine × executors_per_machine + slot`).
    #[inline]
    pub fn executor(&self, e: ExecutorId) -> u32 {
        self.machine(MachineId(e.0 / self.executors_per_machine))
    }

    /// The contiguous machine-id range owned by group `s`.
    pub fn machine_range(&self, s: u32) -> Range<u32> {
        debug_assert!(s < self.shards);
        let lo = (u64::from(s) * u64::from(self.machines)).div_ceil(u64::from(self.shards));
        let hi = (u64::from(s + 1) * u64::from(self.machines)).div_ceil(u64::from(self.shards));
        lo as u32..hi as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_machines() {
        for (machines, shards) in [(1, 1), (5, 2), (100, 4), (2000, 8), (7, 7), (3, 8)] {
            let map = ShardMap::new(machines, 4, shards);
            let mut covered = 0;
            for s in 0..map.shards() {
                let r = map.machine_range(s);
                assert_eq!(r.start, covered, "ranges must be contiguous");
                assert!(!r.is_empty(), "every group owns at least one machine");
                for m in r.clone() {
                    assert_eq!(map.machine(MachineId(m)), s, "lookup inverts the range");
                }
                covered = r.end;
            }
            assert_eq!(covered, machines, "ranges must cover the cluster");
        }
    }

    #[test]
    fn groups_are_balanced_within_one_machine() {
        let map = ShardMap::new(1001, 4, 8);
        let sizes: Vec<u32> = (0..8).map(|s| map.machine_range(s).len() as u32).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "contiguous split must balance: {sizes:?}");
        assert_eq!(sizes.iter().sum::<u32>(), 1001);
    }

    #[test]
    fn executors_follow_their_machine() {
        let map = ShardMap::new(10, 3, 4);
        for m in 0..10u32 {
            for slot in 0..3 {
                let e = ExecutorId(m * 3 + slot);
                assert_eq!(map.executor(e), map.machine(MachineId(m)));
            }
        }
    }

    #[test]
    fn oversized_shard_counts_clamp_to_machines() {
        let map = ShardMap::new(3, 2, 16);
        assert_eq!(map.shards(), 3);
        let map = ShardMap::new(4, 2, 0);
        assert_eq!(map.shards(), 1);
        assert_eq!(map.machine(MachineId(3)), 0);
    }
}
