//! Pass 2 — static validation of domain objects before simulation.
//!
//! Checks the control-plane structures the scheduler consumes: claimed
//! graphlet partitions (SW101/SW102/SW103), gang feasibility against a
//! declared cluster size (SW104), shuffle-scheme selection against the
//! adaptive thresholds (SW105/SW107), recovery-plan well-formedness
//! (SW106/SW108) and scheduling-template instantiation fidelity (SW110).
//!
//! The partition validator deliberately takes a *claimed* partition as
//! `&[Vec<StageId>]` rather than a [`swift_dag::Partition`]: the latter is
//! correct by construction (private fields, SCC condensation), so a
//! validator over it could never fail. Taking the raw claim lets the
//! analyzer check hand-written partitions from fixture files and guard the
//! real `partition()` output in the chaos pre-flight with the same code.

use std::collections::BTreeMap;

use crate::diag::{Code, Diagnostic, Report, Span};
use swift_dag::{EdgeKind, JobDag, StageId, TaskId};
use swift_ft::{ChannelAction, RecoveryPlan};
use swift_scheduler::{compute_priors, plan_units, roundtrip_artifacts, PolicyConfig};
use swift_shuffle::{AdaptiveThresholds, ShuffleScheme};

/// Maps validator findings to source locations.
///
/// Fixture `.dag` files record the line each directive was declared on,
/// keyed by strings like `graphlet:2`, `edge:0`, `scheme:1`, `plan`,
/// `plan-update:3`, `cluster`. In-memory objects (chaos pre-flight) use an
/// empty map, and every finding gets the whole-object span.
#[derive(Clone, Debug, Default)]
pub struct SpanMap {
    /// Logical file name (`fixtures/bad.dag`) or object name (`dag:tpch-q9`).
    pub file: String,
    /// Directive key → 1-based declaration line.
    pub lines: BTreeMap<String, u32>,
}

impl SpanMap {
    /// A span map for an in-memory object: every key resolves to the
    /// whole-object span.
    pub fn object(name: impl Into<String>) -> SpanMap {
        SpanMap {
            file: name.into(),
            lines: BTreeMap::new(),
        }
    }

    /// Resolves `key` to a span, falling back to the whole object.
    pub fn span(&self, key: &str) -> Span {
        match self.lines.get(key) {
            Some(&line) => Span::at(self.file.clone(), line),
            None => Span::object(self.file.clone()),
        }
    }
}

/// Ledger view the version validator reads: `None` = the ledger has never
/// seen any instance of the task; `Some((latest, output))` = latest
/// launched epoch plus the epoch of the currently visible output (if any).
pub type VersionLookup<'a> = &'a dyn Fn(TaskId) -> Option<(u32, Option<u32>)>;

/// Validates a claimed graphlet partition of `dag`:
///
/// * **SW101** — every stage must be assigned to exactly one graphlet
///   (and only to existing stages);
/// * **SW102** — only barrier edges may cross graphlets;
/// * **SW103** — the graphlet quotient graph must be acyclic, or a
///   dependency-driven scheduler deadlocks.
pub fn validate_partition(dag: &JobDag, claimed: &[Vec<StageId>], spans: &SpanMap) -> Report {
    let mut report = Report {
        objects_checked: 1,
        ..Report::default()
    };
    let n = dag.stage_count();
    let mut owners: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (g, stages) in claimed.iter().enumerate() {
        for &s in stages {
            if s.index() >= n {
                report.diagnostics.push(Diagnostic::new(
                    Code::SW101,
                    spans.span(&format!("graphlet:{g}")),
                    format!("graphlet {g} references unknown stage {s} (job has {n} stages)"),
                ));
            } else {
                owners[s.index()].push(g);
            }
        }
    }
    for (i, gs) in owners.iter().enumerate() {
        let stage = &dag.stage(StageId(i as u32)).name;
        match gs.len() {
            1 => {}
            0 => report.diagnostics.push(Diagnostic::new(
                Code::SW101,
                spans.span("job"),
                format!("stage {stage} is not assigned to any graphlet"),
            )),
            k => report.diagnostics.push(Diagnostic::new(
                Code::SW101,
                spans.span(&format!("graphlet:{}", gs[1])),
                format!(
                    "stage {stage} is assigned to {k} graphlets (first two: {} and {})",
                    gs[0], gs[1]
                ),
            )),
        }
    }

    // Owner of each stage for the cross-graphlet checks: first assignment
    // wins so SW102/SW103 still run on partially broken claims; unassigned
    // stages are skipped.
    let owner: Vec<Option<usize>> = owners.iter().map(|gs| gs.first().copied()).collect();

    let g = claimed.len();
    let mut quotient: Vec<Vec<usize>> = vec![Vec::new(); g];
    for (i, e) in dag.edges().iter().enumerate() {
        let (Some(from), Some(to)) = (owner[e.src.index()], owner[e.dst.index()]) else {
            continue;
        };
        if from == to {
            continue;
        }
        if e.kind == EdgeKind::Pipeline {
            report.diagnostics.push(Diagnostic::new(
                Code::SW102,
                spans.span(&format!("edge:{i}")),
                format!(
                    "pipeline edge {} -> {} crosses graphlets {from} and {to}; only barrier \
                     edges may cross (pipeline producers and consumers must be gang-scheduled \
                     together)",
                    dag.stage(e.src).name,
                    dag.stage(e.dst).name
                ),
            ));
        } else if !quotient[from].contains(&to) {
            quotient[from].push(to);
        }
    }

    // Kahn over the barrier quotient graph.
    let mut indeg = vec![0usize; g];
    for outs in &quotient {
        for &to in outs {
            indeg[to] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..g).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0usize;
    while let Some(i) = ready.pop() {
        done += 1;
        for &to in &quotient[i] {
            indeg[to] -= 1;
            if indeg[to] == 0 {
                ready.push(to);
            }
        }
    }
    if done < g {
        let stuck: Vec<String> = (0..g)
            .filter(|&i| indeg[i] > 0)
            .map(|i| i.to_string())
            .collect();
        report.diagnostics.push(Diagnostic::new(
            Code::SW103,
            spans.span("job"),
            format!(
                "graphlet dependency graph is cyclic (graphlets {} wait on each other); a \
                 readiness-driven scheduler would deadlock",
                stuck.join(", ")
            ),
        ));
    }
    report
}

/// Validates gang feasibility (**SW104**, warning): a graphlet whose total
/// task count exceeds the declared cluster capacity cannot be gang
/// scheduled in one wave and degrades to wave-mode execution.
pub fn validate_gang(
    dag: &JobDag,
    claimed: &[Vec<StageId>],
    executors: u64,
    spans: &SpanMap,
) -> Report {
    let mut report = Report {
        objects_checked: 1,
        ..Report::default()
    };
    for (g, stages) in claimed.iter().enumerate() {
        let gang: u64 = stages
            .iter()
            .filter(|s| s.index() < dag.stage_count())
            .map(|&s| dag.stage(s).task_count as u64)
            .sum();
        if gang > executors {
            report.diagnostics.push(Diagnostic::new(
                Code::SW104,
                spans.span(&format!("graphlet:{g}")),
                format!(
                    "graphlet {g} needs a gang of {gang} tasks but the cluster declares only \
                     {executors} executors; scheduling degrades to wave mode"
                ),
            ));
        }
    }
    report
}

/// Validates claimed shuffle-scheme choices against the adaptive
/// thresholds (**SW105**) and the staging requirement of barrier edges
/// (**SW107**). `claimed` pairs an index into [`JobDag::edges`] with the
/// scheme the plan intends to use on that edge.
pub fn validate_schemes(
    dag: &JobDag,
    claimed: &[(usize, ShuffleScheme)],
    thresholds: AdaptiveThresholds,
    spans: &SpanMap,
) -> Report {
    validate_schemes_sized(dag, claimed, &[], thresholds, spans)
}

/// Like [`validate_schemes`], but with declared per-edge shuffle sizes:
/// `sizes` pairs an edge index with the size the plan *declares* for it
/// (`.dag` files carry these as the optional fourth `edge` token),
/// overriding the `M × N` task-count product derived from the DAG. This is
/// how fixtures model realistic data volumes without inflating task
/// counts.
pub fn validate_schemes_sized(
    dag: &JobDag,
    claimed: &[(usize, ShuffleScheme)],
    sizes: &[(usize, u64)],
    thresholds: AdaptiveThresholds,
    spans: &SpanMap,
) -> Report {
    let mut report = Report {
        objects_checked: 1,
        ..Report::default()
    };
    for (i, &(edge_idx, scheme)) in claimed.iter().enumerate() {
        let span = spans.span(&format!("scheme:{i}"));
        let Some(edge) = dag.edges().get(edge_idx) else {
            report.diagnostics.push(Diagnostic::new(
                Code::SW100,
                span,
                format!(
                    "scheme claim references edge {edge_idx}, but the job has only {} edges",
                    dag.edges().len()
                ),
            ));
            continue;
        };
        let size = sizes
            .iter()
            .find(|&&(e, _)| e == edge_idx)
            .map(|&(_, s)| s)
            .unwrap_or_else(|| dag.edge_shuffle_size(edge));
        let barrier = edge.kind == EdgeKind::Barrier;
        if barrier && !scheme.uses_cache_worker() {
            report.diagnostics.push(Diagnostic::new(
                Code::SW107,
                span.clone(),
                format!(
                    "Direct Shuffle on barrier edge {} -> {}: the consumer may not be \
                     scheduled when the producer finishes, so the data must be staged in a \
                     Cache Worker (use remote or local)",
                    dag.stage(edge.src).name,
                    dag.stage(edge.dst).name
                ),
            ));
            continue;
        }
        // Expected scheme by edge size; barrier edges can never use Direct,
        // so the small-shuffle choice is promoted to the cheapest staged
        // scheme.
        let mut expected = thresholds.select(size);
        if barrier && !expected.uses_cache_worker() {
            expected = ShuffleScheme::Remote;
        }
        if scheme != expected {
            report.diagnostics.push(Diagnostic::new(
                Code::SW105,
                span,
                format!(
                    "edge {} -> {} has shuffle edge size {size}, which selects {expected} \
                     under thresholds {}/{}, but the plan claims {scheme}",
                    dag.stage(edge.src).name,
                    dag.stage(edge.dst).name,
                    thresholds.small,
                    thresholds.large
                ),
            ));
        }
    }
    report
}

/// Validates scheduling-template instantiation fidelity (**SW110**).
///
/// Registers a template from a stage-permuted clone of `dag`, looks `dag`
/// itself up, and compares the instantiated artifacts against from-scratch
/// planning under the same `policy` — the cache must be a pure cost
/// optimization, never a behavioral one. Findings:
///
/// * the canonical signature fails to unify the two equal-shape DAGs
///   (no hit at all, for a canonical-capable partitioning);
/// * the instantiated graphlet partition, unit plan or scheme priors
///   differ structurally from their from-scratch counterparts;
/// * a `template-scheme` claim names a scheme the instantiated priors
///   disagree with (how fixture files pin expected instantiations).
pub fn validate_template_roundtrip(
    dag: &JobDag,
    policy: &PolicyConfig,
    claims: &[(usize, ShuffleScheme)],
    spans: &SpanMap,
) -> Report {
    let mut report = Report {
        objects_checked: 1,
        ..Report::default()
    };
    let Some(artifacts) = roundtrip_artifacts(dag, policy) else {
        report.diagnostics.push(Diagnostic::new(
            Code::SW110,
            spans.span("template"),
            "template cache missed on a stage-permuted clone of the same shape: the \
             canonical signature failed to unify two equal-shape DAGs"
                .to_string(),
        ));
        return report;
    };
    let part = swift_dag::partition(dag);
    let plan = plan_units(dag, &policy.partitioning);
    let priors = compute_priors(dag, &plan, policy);
    if *artifacts.part != part {
        report.diagnostics.push(Diagnostic::new(
            Code::SW110,
            spans.span("template"),
            "instantiated graphlet partition differs from from-scratch partitioning".to_string(),
        ));
    }
    if *artifacts.plan != plan {
        report.diagnostics.push(Diagnostic::new(
            Code::SW110,
            spans.span("template"),
            "instantiated unit plan differs from from-scratch unit planning".to_string(),
        ));
    }
    if *artifacts.priors != priors {
        report.diagnostics.push(Diagnostic::new(
            Code::SW110,
            spans.span("template"),
            "instantiated scheme priors differ from from-scratch selection".to_string(),
        ));
    }
    for (i, &(edge_idx, scheme)) in claims.iter().enumerate() {
        let span = spans.span(&format!("template-scheme:{i}"));
        let Some(prior) = artifacts
            .priors
            .iter()
            .find(|p| p.edge as usize == edge_idx)
        else {
            report.diagnostics.push(Diagnostic::new(
                Code::SW100,
                span,
                format!(
                    "template-scheme claim references edge {edge_idx}, but the job has \
                     only {} edges",
                    dag.edges().len()
                ),
            ));
            continue;
        };
        if prior.scheme != scheme {
            let edge = &dag.edges()[edge_idx];
            report.diagnostics.push(Diagnostic::new(
                Code::SW110,
                span,
                format!(
                    "template instantiates {} on edge {} -> {}, but the plan claims {scheme}",
                    prior.scheme,
                    dag.stage(edge.src).name,
                    dag.stage(edge.dst).name
                ),
            ));
        }
    }
    report
}

/// Validates the structural shape of a recovery plan (**SW108**): an
/// aborting plan must carry no work, the rerun set must be sorted and
/// duplicate-free, and every task reference must exist in the DAG.
pub fn validate_recovery_plan_shape(dag: &JobDag, plan: &RecoveryPlan, spans: &SpanMap) -> Report {
    let mut report = Report {
        objects_checked: 1,
        ..Report::default()
    };
    let mut emit = |key: &str, msg: String| {
        report
            .diagnostics
            .push(Diagnostic::new(Code::SW108, spans.span(key), msg));
    };
    let in_bounds =
        |t: TaskId| t.stage.index() < dag.stage_count() && t.index < dag.stage(t.stage).task_count;

    if plan.abort_job && (!plan.rerun.is_empty() || !plan.updates.is_empty()) {
        emit(
            "plan",
            format!(
                "plan aborts the job (§IV-C useless failure) but still carries {} rerun(s) \
                 and {} channel update(s); an aborting plan must be empty",
                plan.rerun.len(),
                plan.updates.len()
            ),
        );
    }
    if !in_bounds(plan.failed) {
        emit(
            "plan",
            format!(
                "failed task {} does not exist in job {}",
                plan.failed, dag.name
            ),
        );
    }
    for w in plan.rerun.windows(2) {
        if w[0] >= w[1] {
            let what = if w[0] == w[1] {
                "duplicated"
            } else {
                "unsorted"
            };
            emit(
                "plan-rerun",
                format!(
                    "rerun set is {what} at {} (plans must list reruns sorted and unique so \
                     replays and reports are deterministic)",
                    w[1]
                ),
            );
            break;
        }
    }
    for t in &plan.rerun {
        if !in_bounds(*t) {
            emit(
                "plan-rerun",
                format!(
                    "rerun references task {t}, which does not exist in job {}",
                    dag.name
                ),
            );
        }
    }
    for (i, u) in plan.updates.iter().enumerate() {
        for (role, t) in [("producer", u.producer), ("consumer", u.consumer)] {
            if !in_bounds(t) {
                emit(
                    &format!("plan-update:{i}"),
                    format!(
                        "channel update {role} {t} does not exist in job {}",
                        dag.name
                    ),
                );
            }
        }
    }
    report
}

/// Validates a recovery plan against ledger versions (**SW106**).
///
/// `CacheFetch` and `Resend` updates promise the consumer data from a
/// producer that is *not* re-running — so the producer's currently visible
/// output must be trustworthy:
///
/// * in **strict** mode (fixtures, post-hoc audits) a producer the ledger
///   never saw, or whose visible output is superseded by a newer launched
///   instance (with the producer absent from the rerun set), is flagged;
/// * in **relaxed** mode (live pre-flight inside chaos campaigns) only
///   never-seen producers are flagged, because a producer that failed
///   earlier and is itself mid-re-run legitimately shows a superseded
///   output epoch while its fresh instance is still running.
pub fn validate_plan_versions(
    plan: &RecoveryPlan,
    lookup: VersionLookup<'_>,
    strict: bool,
    spans: &SpanMap,
) -> Report {
    let mut report = Report {
        objects_checked: 1,
        ..Report::default()
    };
    if plan.abort_job {
        return report;
    }
    for (i, u) in plan.updates.iter().enumerate() {
        if u.action == ChannelAction::Reconnect {
            // Reconnect's producer is in the rerun set by construction; its
            // data is regenerated, so versions are irrelevant here.
            continue;
        }
        let span = spans.span(&format!("plan-update:{i}"));
        match lookup(u.producer) {
            None => report.diagnostics.push(Diagnostic::new(
                Code::SW106,
                span,
                format!(
                    "update {} -> {} ({:?}) relies on producer {} whose instances the \
                     version ledger has never seen; there is no output to serve",
                    u.producer, u.consumer, u.action, u.producer
                ),
            )),
            Some((latest, output)) if strict => {
                let superseded = match output {
                    Some(epoch) => epoch < latest,
                    None => true,
                };
                if superseded && !plan.rerun.contains(&u.producer) {
                    report.diagnostics.push(Diagnostic::new(
                        Code::SW106,
                        span,
                        format!(
                            "update {} -> {} ({:?}) serves output of producer {} at epoch \
                             {:?}, superseded by launched epoch {latest}, and the plan does \
                             not re-run the producer",
                            u.producer, u.consumer, u.action, u.producer, output
                        ),
                    ));
                }
            }
            Some(_) => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use swift_dag::{partition, DagBuilder, Operator};
    use swift_ft::{ChannelUpdate, RecoveryCase};

    /// Two graphlets: {A, B} pipeline-connected, barrier into {C}.
    fn two_graphlet_dag() -> JobDag {
        let mut b = DagBuilder::new(1, "two");
        let a = b
            .stage("A", 4)
            .op(Operator::TableScan { table: "t".into() })
            .op(Operator::ShuffleWrite)
            .build();
        let bb = b
            .stage("B", 4)
            .op(Operator::ShuffleRead)
            .op(Operator::MergeSort)
            .op(Operator::ShuffleWrite)
            .build();
        let c = b
            .stage("C", 2)
            .op(Operator::ShuffleRead)
            .op(Operator::AdhocSink)
            .build();
        b.edge(a, bb); // pipeline
        b.edge(bb, c); // barrier (B sorts)
        b.build().unwrap()
    }

    fn claimed_of(dag: &JobDag) -> Vec<Vec<StageId>> {
        partition(dag)
            .graphlets()
            .iter()
            .map(|g| g.stages.clone())
            .collect()
    }

    fn codes(r: &Report) -> Vec<Code> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    fn spans() -> SpanMap {
        SpanMap::object("dag:test")
    }

    #[test]
    fn real_partition_validates_clean() {
        let dag = two_graphlet_dag();
        let r = validate_partition(&dag, &claimed_of(&dag), &spans());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.objects_checked, 1);
    }

    #[test]
    fn unassigned_and_double_assigned_stages_flagged() {
        let dag = two_graphlet_dag();
        // C missing; A in two graphlets.
        let claimed = vec![vec![StageId(0), StageId(1)], vec![StageId(0)]];
        let r = validate_partition(&dag, &claimed, &spans());
        let cs = codes(&r);
        assert_eq!(
            cs.iter().filter(|&&c| c == Code::SW101).count(),
            2,
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn unknown_stage_in_claim_flagged() {
        let dag = two_graphlet_dag();
        let claimed = vec![vec![StageId(0), StageId(1), StageId(9)], vec![StageId(2)]];
        let r = validate_partition(&dag, &claimed, &spans());
        assert!(codes(&r).contains(&Code::SW101));
    }

    #[test]
    fn pipeline_edge_crossing_graphlets_flagged() {
        let dag = two_graphlet_dag();
        // Split the pipeline pair A-B into separate graphlets.
        let claimed = vec![vec![StageId(0)], vec![StageId(1)], vec![StageId(2)]];
        let r = validate_partition(&dag, &claimed, &spans());
        assert_eq!(codes(&r), vec![Code::SW102]);
    }

    #[test]
    fn cyclic_quotient_flagged() {
        // S0 --pipeline--> {S1, S4}, S1 -> S2 barrier, S2 -> S3 pipeline,
        // S3 -> S4 barrier. Claiming {0,1,4} and {2,3} yields a 2-cycle.
        let mut b = DagBuilder::new(1, "cyc");
        let streaming = |b: &mut DagBuilder, n: &str| {
            b.stage(n, 1)
                .op(Operator::ShuffleRead)
                .op(Operator::ShuffleWrite)
                .build()
        };
        let sorting = |b: &mut DagBuilder, n: &str| {
            b.stage(n, 1)
                .op(Operator::ShuffleRead)
                .op(Operator::MergeSort)
                .op(Operator::ShuffleWrite)
                .build()
        };
        let s0 = streaming(&mut b, "S0");
        let s1 = sorting(&mut b, "S1");
        let s2 = streaming(&mut b, "S2");
        let s3 = sorting(&mut b, "S3");
        let s4 = streaming(&mut b, "S4");
        b.edge(s0, s1)
            .edge(s0, s4)
            .edge(s1, s2)
            .edge(s2, s3)
            .edge(s3, s4);
        let dag = b.build().unwrap();
        let claimed = vec![
            vec![StageId(0), StageId(1), StageId(4)],
            vec![StageId(2), StageId(3)],
        ];
        let r = validate_partition(&dag, &claimed, &spans());
        assert_eq!(codes(&r), vec![Code::SW103]);
        // The library's own partitioner condenses the cycle away:
        let r2 = validate_partition(&dag, &claimed_of(&dag), &spans());
        assert!(r2.diagnostics.is_empty());
    }

    #[test]
    fn gang_overflow_is_a_warning() {
        let dag = two_graphlet_dag();
        let claimed = claimed_of(&dag);
        let ok = validate_gang(&dag, &claimed, 100, &spans());
        assert!(ok.diagnostics.is_empty());
        let tight = validate_gang(&dag, &claimed, 4, &spans());
        // graphlet 0 = A(4)+B(4) = 8 > 4; graphlet 1 = C(2) fits.
        assert_eq!(codes(&tight), vec![Code::SW104]);
        assert_eq!(
            tight.diagnostics[0].severity,
            crate::diag::Severity::Warning
        );
        assert!(!tight.failed(false));
        assert!(tight.failed(true));
    }

    #[test]
    fn scheme_matching_thresholds_validates_clean() {
        let dag = two_graphlet_dag();
        // Edge 0 (A->B): 4x4=16 < small -> Direct. Edge 1 (B->C): 4x2=8,
        // Direct by size but barrier -> promoted to Remote.
        let claimed = vec![(0, ShuffleScheme::Direct), (1, ShuffleScheme::Remote)];
        let r = validate_schemes(&dag, &claimed, AdaptiveThresholds::default(), &spans());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn wrong_scheme_for_size_flagged() {
        let dag = two_graphlet_dag();
        let claimed = vec![(0, ShuffleScheme::Local)];
        let r = validate_schemes(&dag, &claimed, AdaptiveThresholds::default(), &spans());
        assert_eq!(codes(&r), vec![Code::SW105]);
        assert!(r.diagnostics[0].message.contains("claims local"));
    }

    #[test]
    fn direct_on_barrier_edge_flagged() {
        let dag = two_graphlet_dag();
        let claimed = vec![(1, ShuffleScheme::Direct)];
        let r = validate_schemes(&dag, &claimed, AdaptiveThresholds::default(), &spans());
        assert_eq!(codes(&r), vec![Code::SW107]);
    }

    #[test]
    fn scheme_claim_on_unknown_edge_flagged() {
        let dag = two_graphlet_dag();
        let claimed = vec![(7, ShuffleScheme::Direct)];
        let r = validate_schemes(&dag, &claimed, AdaptiveThresholds::default(), &spans());
        assert_eq!(codes(&r), vec![Code::SW100]);
    }

    fn tid(stage: u32, idx: u32) -> TaskId {
        TaskId::new(StageId(stage), idx)
    }

    fn base_plan() -> RecoveryPlan {
        RecoveryPlan {
            failed: tid(1, 0),
            case: RecoveryCase::IntraIdempotent,
            abort_job: false,
            rerun: vec![tid(1, 0)],
            updates: vec![ChannelUpdate {
                producer: tid(0, 0),
                consumer: tid(1, 0),
                action: ChannelAction::Resend,
            }],
        }
    }

    #[test]
    fn well_formed_plan_validates_clean() {
        let dag = two_graphlet_dag();
        let r = validate_recovery_plan_shape(&dag, &base_plan(), &spans());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn abort_with_work_flagged() {
        let dag = two_graphlet_dag();
        let mut plan = base_plan();
        plan.abort_job = true;
        let r = validate_recovery_plan_shape(&dag, &plan, &spans());
        assert_eq!(codes(&r), vec![Code::SW108]);
    }

    #[test]
    fn unsorted_and_duplicate_rerun_flagged() {
        let dag = two_graphlet_dag();
        let mut plan = base_plan();
        plan.rerun = vec![tid(1, 1), tid(1, 0)];
        let r = validate_recovery_plan_shape(&dag, &plan, &spans());
        assert_eq!(codes(&r), vec![Code::SW108]);
        assert!(r.diagnostics[0].message.contains("unsorted"));

        plan.rerun = vec![tid(1, 0), tid(1, 0)];
        let r = validate_recovery_plan_shape(&dag, &plan, &spans());
        assert_eq!(codes(&r), vec![Code::SW108]);
        assert!(r.diagnostics[0].message.contains("duplicated"));
    }

    #[test]
    fn out_of_bounds_references_flagged() {
        let dag = two_graphlet_dag();
        let mut plan = base_plan();
        plan.rerun = vec![tid(1, 99)]; // stage B has 4 tasks
        plan.updates[0].producer = tid(9, 0); // no stage 9
        let r = validate_recovery_plan_shape(&dag, &plan, &spans());
        assert_eq!(codes(&r), vec![Code::SW108, Code::SW108]);
    }

    #[test]
    fn version_check_flags_never_seen_producer() {
        let plan = base_plan();
        let lookup = |_t: TaskId| None;
        let r = validate_plan_versions(&plan, &lookup, false, &spans());
        assert_eq!(codes(&r), vec![Code::SW106]);
    }

    #[test]
    fn version_check_accepts_fresh_output() {
        let plan = base_plan();
        let lookup = |_t: TaskId| Some((2, Some(2)));
        let r = validate_plan_versions(&plan, &lookup, true, &spans());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn strict_mode_flags_superseded_output() {
        let plan = base_plan();
        let lookup = |_t: TaskId| Some((3, Some(1)));
        let strict = validate_plan_versions(&plan, &lookup, true, &spans());
        assert_eq!(codes(&strict), vec![Code::SW106]);
        // Relaxed (live) mode tolerates it: the producer may be mid-re-run.
        let relaxed = validate_plan_versions(&plan, &lookup, false, &spans());
        assert!(relaxed.diagnostics.is_empty());
    }

    #[test]
    fn strict_mode_accepts_superseded_output_if_producer_reruns() {
        let mut plan = base_plan();
        plan.rerun = vec![tid(0, 0), tid(1, 0)]; // producer re-runs too
        let lookup = |_t: TaskId| Some((3, Some(1)));
        let r = validate_plan_versions(&plan, &lookup, true, &spans());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn reconnect_updates_are_version_exempt() {
        let mut plan = base_plan();
        plan.updates[0].action = ChannelAction::Reconnect;
        let lookup = |_t: TaskId| None;
        let r = validate_plan_versions(&plan, &lookup, true, &spans());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn aborting_plan_skips_version_checks() {
        let mut plan = base_plan();
        plan.abort_job = true;
        let lookup = |_t: TaskId| None;
        let r = validate_plan_versions(&plan, &lookup, true, &spans());
        assert!(r.diagnostics.is_empty());
    }
}
