//! Cross-function summaries for the determinism taint analysis.
//!
//! A first pass over every workspace function records two bits per fn:
//! whether it *returns an unordered container* (the return type peels to
//! `HashMap`/`HashSet`) and whether it *returns an order-tainted value*
//! (the intra-procedural walk of its body shows taint flowing into a
//! `return` or the trailing expression — e.g. a `Vec` collected from
//! unordered iteration). Call sites then propagate taint through helper
//! returns without inlining anything.
//!
//! Summaries are keyed by bare function name, split into free functions
//! and methods, and merged by OR on collision — deliberately
//! conservative: if *any* `fn hot_keys` in scope returns tainted data,
//! every `.hot_keys()` call site is treated as tainted. The fixed point
//! ([`build_summaries`]) iterates until no summary changes, so taint
//! flows through helper-of-helper chains.

use std::collections::BTreeMap;

use crate::lex::{lex, test_mask};
use crate::parse::{classify_type, parse_items, tokenize, ParsedFile, TypeClass};
use crate::taint;

/// What a call site needs to know about a callee.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FnSummary {
    /// The return type peels to `HashMap`/`HashSet`: the caller holds an
    /// unordered container.
    pub(crate) returns_unordered: bool,
    /// The body lets order-taint reach the returned value.
    pub(crate) returns_tainted: bool,
}

impl FnSummary {
    fn merge(&mut self, other: FnSummary) {
        self.returns_unordered |= other.returns_unordered;
        self.returns_tainted |= other.returns_tainted;
    }
}

/// Name → summary maps for free functions and methods, consulted by the
/// taint walker at call sites.
#[derive(Debug, Clone, Default)]
pub(crate) struct Summaries {
    free: BTreeMap<String, FnSummary>,
    methods: BTreeMap<String, FnSummary>,
}

impl Summaries {
    pub(crate) fn lookup(&self, name: &str, method: bool) -> Option<FnSummary> {
        if method {
            self.methods.get(name).copied()
        } else {
            self.free.get(name).copied()
        }
    }

    fn insert(&mut self, name: &str, method: bool, summary: FnSummary) -> bool {
        let map = if method {
            &mut self.methods
        } else {
            &mut self.free
        };
        let entry = map.entry(name.to_string()).or_default();
        let before = *entry;
        entry.merge(summary);
        *entry != before
    }

    /// Number of summarized names (for reporting/tests).
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.free.len() + self.methods.len()
    }
}

/// One pre-lexed, pre-parsed file ready for repeated summary rounds and
/// the final lint pass.
#[derive(Debug)]
pub(crate) struct PreparedFile {
    pub(crate) parsed: ParsedFile,
    pub(crate) lines: Vec<crate::lex::LineInfo>,
    pub(crate) mask: Vec<bool>,
}

/// Lexes and parses one file.
pub(crate) fn prepare(content: &str) -> PreparedFile {
    let lines = lex(content);
    let mask = test_mask(&lines);
    let parsed = parse_items(&tokenize(&lines));
    PreparedFile {
        parsed,
        lines,
        mask,
    }
}

/// Builds the fixed point of function summaries over a set of prepared
/// files. Rounds are bounded (taint bits only ever turn on, so the
/// lattice height is 2 × fn count; in practice 2–3 rounds suffice).
pub(crate) fn build_summaries(files: &[&PreparedFile]) -> Summaries {
    let mut summaries = Summaries::default();
    for _ in 0..4 {
        let mut changed = false;
        for file in files {
            for f in &file.parsed.fns {
                if file.mask.get(f.line as usize).copied().unwrap_or(false) {
                    continue;
                }
                let returns_unordered = f
                    .ret
                    .as_deref()
                    .is_some_and(|t| classify_type(t) == TypeClass::Unordered);
                let returns_tainted = match f.body {
                    Some(body) => taint::fn_returns_tainted(&file.parsed, f, body, &summaries),
                    None => false,
                };
                changed |= summaries.insert(
                    &f.name,
                    f.is_method,
                    FnSummary {
                        returns_unordered,
                        returns_tainted,
                    },
                );
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn return_type_summary_sees_through_wrappers() {
        let file = prepare(
            "fn live() -> HashMap<u32, u32> { todo!() }\n\
             fn guarded(&self) -> Option<&HashMap<u32, u32>> { None }\n\
             fn ordered() -> BTreeMap<u32, u32> { todo!() }\n",
        );
        let s = build_summaries(&[&file]);
        assert!(s.lookup("live", false).unwrap().returns_unordered);
        assert!(s.lookup("ordered", false).is_some());
        assert!(!s.lookup("ordered", false).unwrap().returns_unordered);
    }

    #[test]
    fn body_taint_reaches_the_summary_transitively() {
        let file = prepare(
            "struct S { m: HashMap<u64, u64> }\n\
             impl S {\n\
             fn raw_keys(&self) -> Vec<u64> { self.m.keys().copied().collect() }\n\
             fn relabeled(&self) -> Vec<u64> { self.raw_keys() }\n\
             fn count(&self) -> usize { self.m.len() }\n\
             }\n",
        );
        let s = build_summaries(&[&file]);
        assert!(s.lookup("raw_keys", true).unwrap().returns_tainted);
        assert!(
            s.lookup("relabeled", true).unwrap().returns_tainted,
            "taint must flow through a helper-of-helper in the fixed point"
        );
        assert!(!s.lookup("count", true).unwrap().returns_tainted);
    }

    #[test]
    fn test_gated_fns_are_not_summarized() {
        let file = prepare(
            "#[cfg(test)]\nmod tests {\n\
             fn helper() -> HashMap<u32, u32> { HashMap::new() }\n\
             }\n",
        );
        let s = build_summaries(&[&file]);
        assert!(s.lookup("helper", false).is_none());
    }
}
