//! A small text format describing a job DAG plus the claims the pass-2
//! validator checks — so malformed partitions, scheme choices and recovery
//! plans can live as fixture files with real `file:line` spans.
//!
//! ```text
//! # comment — append `swift-analyze: allow(SW105)` to suppress on the
//! # next (or same) line
//! job demo
//! stage M1 4
//! stage R2 2
//! edge M1 R2 barrier 20000
//! thresholds 10000 90000
//! graphlet M1
//! graphlet R2
//! cluster 64
//! scheme M1 R2 remote
//! template
//! template-scheme M1 R2 remote
//! plan-failed R2.0
//! plan-rerun R2.0
//! plan-update M1.0 R2.0 fetch
//! ledger M1.0 1 1
//! ```
//!
//! * `edge` kinds are explicit (`pipeline`/`barrier`); the optional
//!   fourth token declares the edge's shuffle size explicitly (default:
//!   the `M × N` task-count product), so fixtures can model realistic
//!   data volumes without inflating task counts;
//! * `thresholds SMALL LARGE` overrides the adaptive selection
//!   thresholds the scheme checks run under (default: production
//!   10 000 / 90 000);
//! * each `graphlet` line claims one graphlet (member stage names); if no
//!   `graphlet` lines appear the file's DAG is partitioned with the
//!   library's own algorithm (useful for scheme-only fixtures);
//! * `cluster N` enables the gang check against `N` executors;
//! * `scheme SRC DST direct|remote|local` claims a scheme for that edge;
//! * `template` enables the SW110 template-roundtrip check (a plan
//!   instantiated from the scheduling-template cache must equal
//!   from-scratch planning); `template-scheme SRC DST scheme` claims the
//!   scheme the instantiated template assigns to an edge (and implies
//!   `template`);
//! * `plan-failed`/`plan-abort`/`plan-rerun`/`plan-update` assemble one
//!   recovery plan (actions `resend|fetch|reconnect`);
//! * `ledger TASK LATEST [OUTPUT]` seeds the version ledger; the SW106
//!   check runs only when at least one `ledger` line is present.

use std::collections::BTreeMap;

use crate::diag::{Code, Diagnostic, Report, Span};
use crate::plan::{
    validate_gang, validate_partition, validate_plan_versions, validate_recovery_plan_shape,
    validate_schemes_sized, validate_template_roundtrip, SpanMap,
};
use swift_dag::{DagBuilder, EdgeKind, JobDag, StageId, TaskId};
use swift_ft::{ChannelAction, ChannelUpdate, RecoveryCase, RecoveryPlan};
use swift_scheduler::{PolicyConfig, ShuffleSelection};
use swift_shuffle::{AdaptiveThresholds, ShuffleScheme};

#[derive(Debug, Default)]
struct ParsedFile {
    job: String,
    stages: Vec<(String, u32)>,
    edges: Vec<(String, String, EdgeKind, Option<u64>)>,
    graphlets: Vec<Vec<String>>,
    cluster: Option<u64>,
    thresholds: Option<AdaptiveThresholds>,
    schemes: Vec<(String, String, ShuffleScheme)>,
    template: bool,
    template_schemes: Vec<(String, String, ShuffleScheme)>,
    plan_failed: Option<String>,
    plan_abort: bool,
    plan_rerun: Vec<String>,
    plan_updates: Vec<(String, String, ChannelAction)>,
    ledger: Vec<(String, u32, Option<u32>)>,
    /// 1-based line → codes allowed there (suppresses same + next line).
    allows: BTreeMap<u32, Vec<Code>>,
    spans: SpanMap,
}

/// Splits a line into the directive part and an optional `#` comment.
fn split_comment(line: &str) -> (&str, Option<&str>) {
    match line.find('#') {
        Some(i) => (&line[..i], Some(&line[i + 1..])),
        None => (line, None),
    }
}

fn parse_allow(comment: &str) -> Vec<Code> {
    let mut out = Vec::new();
    if let Some(pos) = comment.find("swift-analyze:") {
        let rest = &comment[pos + "swift-analyze:".len()..];
        if let Some(open) = rest.find("allow(") {
            if let Some(close) = rest[open..].find(')') {
                for part in rest[open + "allow(".len()..open + close].split(',') {
                    if let Some(code) = Code::parse(part) {
                        out.push(code);
                    }
                }
            }
        }
    }
    out
}

fn parse_task_ref(s: &str) -> Option<(&str, u32)> {
    let (stage, idx) = s.rsplit_once('.')?;
    Some((stage, idx.parse().ok()?))
}

/// Parses and validates one `.dag` fixture file, returning the combined
/// pass-2 report. Parse failures and DAG-construction failures surface as
/// **SW100** diagnostics with the offending line's span.
pub fn validate_dag_file(file_label: &str, content: &str) -> Report {
    let mut report = Report::default();
    let mut p = ParsedFile {
        spans: SpanMap {
            file: file_label.to_string(),
            lines: BTreeMap::new(),
        },
        ..ParsedFile::default()
    };

    for (i, raw) in content.lines().enumerate() {
        let lineno = i as u32 + 1;
        let (code_part, comment) = split_comment(raw);
        if let Some(c) = comment {
            let allows = parse_allow(c);
            if !allows.is_empty() {
                p.allows.entry(lineno).or_default().extend(allows);
            }
        }
        let mut words = code_part.split_whitespace();
        let Some(directive) = words.next() else {
            continue;
        };
        let rest: Vec<&str> = words.collect();
        let mut bad = |msg: String| {
            report.diagnostics.push(Diagnostic::new(
                Code::SW100,
                Span::at(file_label, lineno),
                msg,
            ));
        };
        match directive {
            "job" => match rest.as_slice() {
                [name] => {
                    p.job = name.to_string();
                    p.spans.lines.insert("job".into(), lineno);
                }
                _ => bad("`job` takes exactly one name".into()),
            },
            "stage" => match rest.as_slice() {
                [name, tasks] => match tasks.parse::<u32>() {
                    Ok(t) => p.stages.push((name.to_string(), t)),
                    Err(_) => bad(format!(
                        "stage {name}: task count {tasks:?} is not a number"
                    )),
                },
                _ => bad("`stage` takes NAME TASK_COUNT".into()),
            },
            "edge" => match rest.as_slice() {
                [src, dst, kind] | [src, dst, kind, _] => {
                    let kind = match *kind {
                        "pipeline" => EdgeKind::Pipeline,
                        "barrier" => EdgeKind::Barrier,
                        other => {
                            bad(format!("edge kind {other:?} must be pipeline or barrier"));
                            continue;
                        }
                    };
                    let size = match rest.get(3) {
                        None => None,
                        Some(raw) => match raw.parse::<u64>() {
                            Ok(s) => Some(s),
                            Err(_) => {
                                bad(format!("edge size {raw:?} is not a number"));
                                continue;
                            }
                        },
                    };
                    p.spans
                        .lines
                        .insert(format!("edge:{}", p.edges.len()), lineno);
                    p.edges.push((src.to_string(), dst.to_string(), kind, size));
                }
                _ => bad("`edge` takes SRC DST pipeline|barrier [SIZE]".into()),
            },
            "thresholds" => match rest.as_slice() {
                [small, large] => match (small.parse::<u64>(), large.parse::<u64>()) {
                    (Ok(s), Ok(l)) if s <= l => {
                        p.thresholds = Some(AdaptiveThresholds { small: s, large: l });
                        p.spans.lines.insert("thresholds".into(), lineno);
                    }
                    (Ok(_), Ok(_)) => bad("`thresholds` SMALL must not exceed LARGE".into()),
                    _ => bad("`thresholds` takes two numbers SMALL LARGE".into()),
                },
                _ => bad("`thresholds` takes SMALL LARGE".into()),
            },
            "graphlet" => {
                if rest.is_empty() {
                    bad("`graphlet` needs at least one member stage".into());
                } else {
                    p.spans
                        .lines
                        .insert(format!("graphlet:{}", p.graphlets.len()), lineno);
                    p.graphlets
                        .push(rest.iter().map(|s| s.to_string()).collect());
                }
            }
            "cluster" => match rest.as_slice() {
                [n] => match n.parse::<u64>() {
                    Ok(execs) => {
                        p.cluster = Some(execs);
                        p.spans.lines.insert("cluster".into(), lineno);
                    }
                    Err(_) => bad(format!("cluster size {n:?} is not a number")),
                },
                _ => bad("`cluster` takes EXECUTOR_COUNT".into()),
            },
            "scheme" => match rest.as_slice() {
                [src, dst, scheme] => {
                    let scheme = match *scheme {
                        "direct" => ShuffleScheme::Direct,
                        "remote" => ShuffleScheme::Remote,
                        "local" => ShuffleScheme::Local,
                        other => {
                            bad(format!("scheme {other:?} must be direct, remote or local"));
                            continue;
                        }
                    };
                    p.spans
                        .lines
                        .insert(format!("scheme:{}", p.schemes.len()), lineno);
                    p.schemes.push((src.to_string(), dst.to_string(), scheme));
                }
                _ => bad("`scheme` takes SRC DST direct|remote|local".into()),
            },
            "template" => match rest.as_slice() {
                [] => {
                    p.template = true;
                    p.spans.lines.insert("template".into(), lineno);
                }
                _ => bad("`template` takes no arguments".into()),
            },
            "template-scheme" => match rest.as_slice() {
                [src, dst, scheme] => {
                    let scheme = match *scheme {
                        "direct" => ShuffleScheme::Direct,
                        "remote" => ShuffleScheme::Remote,
                        "local" => ShuffleScheme::Local,
                        other => {
                            bad(format!("scheme {other:?} must be direct, remote or local"));
                            continue;
                        }
                    };
                    p.template = true;
                    p.spans.lines.entry("template".into()).or_insert(lineno);
                    p.spans.lines.insert(
                        format!("template-scheme:{}", p.template_schemes.len()),
                        lineno,
                    );
                    p.template_schemes
                        .push((src.to_string(), dst.to_string(), scheme));
                }
                _ => bad("`template-scheme` takes SRC DST direct|remote|local".into()),
            },
            "plan-failed" => match rest.as_slice() {
                [task] => {
                    p.plan_failed = Some(task.to_string());
                    p.spans.lines.insert("plan".into(), lineno);
                }
                _ => bad("`plan-failed` takes one TASK (Stage.index)".into()),
            },
            "plan-abort" => p.plan_abort = true,
            "plan-rerun" => match rest.as_slice() {
                [task] => {
                    p.spans.lines.entry("plan-rerun".into()).or_insert(lineno);
                    p.plan_rerun.push(task.to_string());
                }
                _ => bad("`plan-rerun` takes one TASK (Stage.index)".into()),
            },
            "plan-update" => match rest.as_slice() {
                [producer, consumer, action] => {
                    let action = match *action {
                        "resend" => ChannelAction::Resend,
                        "fetch" => ChannelAction::CacheFetch,
                        "reconnect" => ChannelAction::Reconnect,
                        other => {
                            bad(format!(
                                "action {other:?} must be resend, fetch or reconnect"
                            ));
                            continue;
                        }
                    };
                    p.spans
                        .lines
                        .insert(format!("plan-update:{}", p.plan_updates.len()), lineno);
                    p.plan_updates
                        .push((producer.to_string(), consumer.to_string(), action));
                }
                _ => bad("`plan-update` takes PRODUCER CONSUMER resend|fetch|reconnect".into()),
            },
            "ledger" => match rest.as_slice() {
                [task, latest] => match latest.parse::<u32>() {
                    Ok(l) => p.ledger.push((task.to_string(), l, None)),
                    Err(_) => bad(format!("ledger epoch {latest:?} is not a number")),
                },
                [task, latest, output] => match (latest.parse::<u32>(), output.parse::<u32>()) {
                    (Ok(l), Ok(o)) => p.ledger.push((task.to_string(), l, Some(o))),
                    _ => bad("ledger epochs must be numbers".into()),
                },
                _ => bad("`ledger` takes TASK LATEST_EPOCH [OUTPUT_EPOCH]".into()),
            },
            other => bad(format!("unknown directive {other:?}")),
        }
    }

    // Build the DAG.
    let mut builder = DagBuilder::new(0, if p.job.is_empty() { file_label } else { &p.job });
    let mut stage_ids: BTreeMap<String, StageId> = BTreeMap::new();
    for (name, tasks) in &p.stages {
        let id = builder.stage(name.clone(), *tasks).build();
        stage_ids.insert(name.clone(), id);
    }
    let resolve =
        |report: &mut Report, name: &str, key: &str, spans: &SpanMap| -> Option<StageId> {
            match stage_ids.get(name) {
                Some(&id) => Some(id),
                None => {
                    report.diagnostics.push(Diagnostic::new(
                        Code::SW100,
                        spans.span(key),
                        format!("unknown stage {name:?}"),
                    ));
                    None
                }
            }
        };
    for (i, (src, dst, kind, _)) in p.edges.iter().enumerate() {
        let key = format!("edge:{i}");
        let (Some(s), Some(d)) = (
            resolve(&mut report, src, &key, &p.spans),
            resolve(&mut report, dst, &key, &p.spans),
        ) else {
            continue;
        };
        builder.edge_kind(s, d, *kind);
    }
    let dag: JobDag = match builder.build() {
        Ok(dag) => dag,
        Err(e) => {
            report.diagnostics.push(Diagnostic::new(
                Code::SW100,
                p.spans.span("job"),
                format!("DAG fails structural validation: {e}"),
            ));
            apply_allows(&mut report, &p.allows, &p.spans.file);
            return report;
        }
    };

    // Claimed partition: explicit graphlet lines, else the library's own.
    let claimed: Vec<Vec<StageId>> = if p.graphlets.is_empty() {
        swift_dag::partition(&dag)
            .graphlets()
            .iter()
            .map(|g| g.stages.clone())
            .collect()
    } else {
        p.graphlets
            .iter()
            .enumerate()
            .map(|(i, names)| {
                names
                    .iter()
                    .filter_map(|n| resolve(&mut report, n, &format!("graphlet:{i}"), &p.spans))
                    .collect()
            })
            .collect()
    };

    report.merge(validate_partition(&dag, &claimed, &p.spans));
    if let Some(executors) = p.cluster {
        report.merge(validate_gang(&dag, &claimed, executors, &p.spans));
    }

    // Explicitly declared edge sizes, keyed by the DAG's edge index.
    let mut edge_sizes: Vec<(usize, u64)> = Vec::new();
    for (i, (src, dst, _, size)) in p.edges.iter().enumerate() {
        let Some(size) = size else { continue };
        let key = format!("edge:{i}");
        if let (Some(s), Some(d)) = (stage_ids.get(src), stage_ids.get(dst)) {
            if let Some(idx) = dag.edges().iter().position(|e| e.src == *s && e.dst == *d) {
                edge_sizes.push((idx, *size));
            } else {
                report.diagnostics.push(Diagnostic::new(
                    Code::SW100,
                    p.spans.span(&key),
                    format!("size declared on nonexistent edge {src} -> {dst}"),
                ));
            }
        }
    }
    let thresholds = p.thresholds.unwrap_or_default();

    if !p.schemes.is_empty() {
        let mut claims: Vec<(usize, ShuffleScheme)> = Vec::new();
        for (i, (src, dst, scheme)) in p.schemes.iter().enumerate() {
            let key = format!("scheme:{i}");
            let (Some(s), Some(d)) = (
                resolve(&mut report, src, &key, &p.spans),
                resolve(&mut report, dst, &key, &p.spans),
            ) else {
                continue;
            };
            match dag.edges().iter().position(|e| e.src == s && e.dst == d) {
                Some(idx) => claims.push((idx, *scheme)),
                None => report.diagnostics.push(Diagnostic::new(
                    Code::SW100,
                    p.spans.span(&key),
                    format!("scheme claim on nonexistent edge {src} -> {dst}"),
                )),
            }
        }
        report.merge(validate_schemes_sized(
            &dag,
            &claims,
            &edge_sizes,
            thresholds,
            &p.spans,
        ));
    }

    if p.template {
        let mut claims: Vec<(usize, ShuffleScheme)> = Vec::new();
        for (i, (src, dst, scheme)) in p.template_schemes.iter().enumerate() {
            let key = format!("template-scheme:{i}");
            let (Some(s), Some(d)) = (
                resolve(&mut report, src, &key, &p.spans),
                resolve(&mut report, dst, &key, &p.spans),
            ) else {
                continue;
            };
            match dag.edges().iter().position(|e| e.src == s && e.dst == d) {
                Some(idx) => claims.push((idx, *scheme)),
                None => report.diagnostics.push(Diagnostic::new(
                    Code::SW100,
                    p.spans.span(&key),
                    format!("template-scheme claim on nonexistent edge {src} -> {dst}"),
                )),
            }
        }
        let policy = PolicyConfig {
            intra_unit_shuffle: ShuffleSelection::Adaptive(thresholds),
            cross_unit_shuffle: ShuffleSelection::Adaptive(thresholds),
            ..PolicyConfig::swift()
        };
        report.merge(validate_template_roundtrip(
            &dag, &policy, &claims, &p.spans,
        ));
    }

    if let Some(failed_ref) = &p.plan_failed {
        let task = |report: &mut Report, s: &str, key: &str| -> Option<TaskId> {
            let Some((stage, idx)) = parse_task_ref(s) else {
                report.diagnostics.push(Diagnostic::new(
                    Code::SW100,
                    p.spans.span(key),
                    format!("task reference {s:?} must be Stage.index"),
                ));
                return None;
            };
            // Unknown stage names intentionally map to an out-of-range id so
            // the shape validator reports them as SW108 (the plan is the
            // malformed object, not the file syntax).
            let sid = stage_ids
                .get(stage)
                .copied()
                .unwrap_or(StageId(dag.stage_count() as u32));
            Some(TaskId::new(sid, idx))
        };
        let Some(failed) = task(&mut report, failed_ref, "plan") else {
            apply_allows(&mut report, &p.allows, &p.spans.file);
            report.sort();
            return report;
        };
        let rerun: Vec<TaskId> = p
            .plan_rerun
            .iter()
            .filter_map(|s| task(&mut report, s, "plan-rerun"))
            .collect();
        let mut updates: Vec<ChannelUpdate> = Vec::new();
        for (i, (producer, consumer, action)) in p.plan_updates.iter().enumerate() {
            let key = format!("plan-update:{i}");
            if let (Some(pr), Some(co)) = (
                task(&mut report, producer, &key),
                task(&mut report, consumer, &key),
            ) {
                updates.push(ChannelUpdate {
                    producer: pr,
                    consumer: co,
                    action: *action,
                });
            }
        }
        let plan = RecoveryPlan {
            failed,
            case: RecoveryCase::Mixed,
            abort_job: p.plan_abort,
            rerun,
            updates,
        };
        report.merge(validate_recovery_plan_shape(&dag, &plan, &p.spans));
        if !p.ledger.is_empty() {
            let mut ledger: BTreeMap<TaskId, (u32, Option<u32>)> = BTreeMap::new();
            for (task_ref, latest, output) in &p.ledger {
                if let Some((stage, idx)) = parse_task_ref(task_ref) {
                    if let Some(&sid) = stage_ids.get(stage) {
                        ledger.insert(TaskId::new(sid, idx), (*latest, *output));
                    }
                }
            }
            let lookup = |t: TaskId| ledger.get(&t).copied();
            report.merge(validate_plan_versions(&plan, &lookup, true, &p.spans));
        }
    }

    apply_allows(&mut report, &p.allows, &p.spans.file);
    report.sort();
    report
}

/// Drops diagnostics whose span line carries (or follows) a matching
/// `allow` comment, counting them as suppressed. Allows that suppressed
/// nothing are reported as SW009 so stale suppressions cannot linger.
fn apply_allows(report: &mut Report, allows: &BTreeMap<u32, Vec<Code>>, file_label: &str) {
    if allows.is_empty() {
        return;
    }
    let mut consumed: std::collections::BTreeSet<(u32, Code)> = std::collections::BTreeSet::new();
    let mut kept = Vec::with_capacity(report.diagnostics.len());
    for d in report.diagnostics.drain(..) {
        let line = d.span.line;
        let mut allowed = false;
        if line > 0 {
            if allows.get(&line).is_some_and(|cs| cs.contains(&d.code)) {
                allowed = true;
                consumed.insert((line, d.code));
            }
            let prev = line.saturating_sub(1);
            if allows.get(&prev).is_some_and(|cs| cs.contains(&d.code)) {
                allowed = true;
                consumed.insert((prev, d.code));
            }
        }
        if allowed {
            report.suppressed += 1;
        } else {
            kept.push(d);
        }
    }
    report.diagnostics = kept;
    for (&line, codes) in allows {
        let mut seen: Vec<Code> = Vec::new();
        for &code in codes {
            if code == Code::SW009 || seen.contains(&code) {
                continue;
            }
            seen.push(code);
            if !consumed.contains(&(line, code)) {
                report.diagnostics.push(Diagnostic::new(
                    Code::SW009,
                    Span::at(file_label, line),
                    format!(
                        "unused suppression `allow({code})`: no {code} diagnostic on this line \
                         or the next — remove the stale allow"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(r: &Report) -> Vec<Code> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    const GOOD: &str = "\
job demo
stage M1 4
stage R2 2
edge M1 R2 barrier
graphlet M1
graphlet R2
cluster 64
scheme M1 R2 remote
";

    #[test]
    fn well_formed_file_is_clean() {
        let r = validate_dag_file("good.dag", GOOD);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(r.objects_checked >= 3);
    }

    #[test]
    fn cyclic_dag_reports_sw100_at_job_line() {
        let src = "job cyc\nstage A 1\nstage B 1\nedge A B pipeline\nedge B A pipeline\n";
        let r = validate_dag_file("cyc.dag", src);
        assert_eq!(codes(&r), vec![Code::SW100]);
        assert_eq!(r.diagnostics[0].span.line, 1);
    }

    #[test]
    fn unknown_directive_and_stage_report_sw100() {
        let src = "job x\nstage A 1\nfrobnicate A\nedge A Z pipeline\n";
        let r = validate_dag_file("x.dag", src);
        assert_eq!(codes(&r), vec![Code::SW100, Code::SW100]);
        assert_eq!(r.diagnostics[0].span.line, 3);
        assert_eq!(r.diagnostics[1].span.line, 4);
    }

    #[test]
    fn split_pipeline_pair_reports_sw102_with_edge_line() {
        let src = "\
job split
stage A 2
stage B 2
edge A B pipeline
graphlet A
graphlet B
";
        let r = validate_dag_file("split.dag", src);
        assert_eq!(codes(&r), vec![Code::SW102]);
        assert_eq!(r.diagnostics[0].span.line, 4, "points at the edge line");
    }

    #[test]
    fn allow_comment_suppresses_and_counts() {
        let src = "\
job split
stage A 2
stage B 2
edge A B pipeline # swift-analyze: allow(SW102)
graphlet A
graphlet B
";
        let r = validate_dag_file("split.dag", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn derived_partition_used_when_no_graphlet_lines() {
        let src = "job d\nstage A 2\nstage B 2\nedge A B pipeline\nscheme A B direct\n";
        let r = validate_dag_file("d.dag", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn declared_edge_size_overrides_task_product() {
        // 2 x 2 tasks would select Direct; the declared 20 000 size puts
        // the edge in the Remote band, so the direct claim is SW105.
        let src = "job s\nstage A 2\nstage B 2\nedge A B pipeline 20000\nscheme A B direct\n";
        let r = validate_dag_file("s.dag", src);
        assert_eq!(codes(&r), vec![Code::SW105], "{:?}", r.diagnostics);
        // Claiming what the declared size selects is clean.
        let fixed = src.replace("scheme A B direct", "scheme A B remote");
        let r = validate_dag_file("s.dag", &fixed);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn thresholds_directive_moves_the_selection_bands() {
        // Size 100 is Direct under the defaults, but `thresholds 10 50`
        // puts it above the large threshold: Local.
        let src = "\
job t
stage A 10
stage B 10
edge A B pipeline
thresholds 10 50
scheme A B local
";
        let r = validate_dag_file("t.dag", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        let r = validate_dag_file("t.dag", &src.replace("local", "direct"));
        assert_eq!(codes(&r), vec![Code::SW105]);
    }

    #[test]
    fn bad_edge_size_and_thresholds_report_sw100() {
        let src = "job b\nstage A 1\nstage B 1\nedge A B pipeline huge\nthresholds 9 3\n";
        let r = validate_dag_file("b.dag", src);
        assert_eq!(codes(&r), vec![Code::SW100, Code::SW100]);
        assert_eq!(r.diagnostics[0].span.line, 4);
        assert_eq!(r.diagnostics[1].span.line, 5);
    }

    #[test]
    fn template_directive_runs_the_roundtrip_clean() {
        let src = "job r\nstage A 4\nstage B 2\nedge A B barrier\ntemplate\n";
        let r = validate_dag_file("r.dag", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn wrong_template_scheme_claim_is_sw110_at_its_line() {
        let src = "\
job w
stage A 200
stage B 100
edge A B barrier
template-scheme A B direct
";
        let r = validate_dag_file("w.dag", src);
        assert_eq!(codes(&r), vec![Code::SW110], "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].span.line, 5);
    }

    #[test]
    fn plan_and_ledger_directives_flow_to_validators() {
        let src = "\
job p
stage A 1
stage B 1
edge A B barrier
plan-failed B.0
plan-rerun B.0
plan-update A.0 B.0 fetch
ledger A.0 2 1
";
        let r = validate_dag_file("p.dag", src);
        assert_eq!(codes(&r), vec![Code::SW106], "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].span.line, 7, "points at the update line");
    }
}
