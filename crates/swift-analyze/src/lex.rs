//! The shared source lexer for pass 1.
//!
//! Both the lexical lints ([`crate::source`]) and the determinism taint
//! engine ([`crate::taint`]) start from the same view of a file: one
//! [`LineInfo`] per source line with comments, string literals and char
//! literals blanked to spaces (so rules match only real code) plus the
//! `swift-analyze: allow(...)` directives harvested from the comments.

use crate::diag::Code;

/// One logical source line after lexing.
#[derive(Debug, Default, Clone)]
pub(crate) struct LineInfo {
    /// The line with comments/strings/char literals blanked to spaces.
    pub(crate) code: String,
    /// Codes allowed by `swift-analyze: allow(...)` comments on this line.
    pub(crate) allows: Vec<Code>,
}

/// Lexes `content` into per-line code text plus allow directives.
pub(crate) fn lex(content: &str) -> Vec<LineInfo> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut lines: Vec<LineInfo> = vec![LineInfo::default()];
    let mut comment_text = String::new();
    let mut st = St::Code;
    let chars: Vec<char> = content.chars().collect();
    let mut i = 0usize;

    // Appends to the current line's code view.
    macro_rules! push_code {
        ($c:expr) => {
            lines.last_mut().expect("non-empty").code.push($c)
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            flush_allows(&mut comment_text, lines.last_mut().expect("non-empty"));
            lines.push(LineInfo::default());
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    comment_text.clear();
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    comment_text.clear();
                    i += 2;
                    continue;
                }
                if c == 'r' && (next == Some('"') || next == Some('#')) && !prev_is_ident(&chars, i)
                {
                    // Raw string r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        push_code!(' ');
                        for _ in 0..(hashes as usize + 1) {
                            push_code!(' ');
                        }
                        st = St::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    push_code!(' ');
                    st = St::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Lifetime ('a) vs char literal ('x' / '\n').
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && chars.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        push_code!('\'');
                        i += 1;
                        continue;
                    }
                    push_code!(' ');
                    st = St::Char;
                    i += 1;
                    continue;
                }
                push_code!(c);
                i += 1;
            }
            St::LineComment => {
                comment_text.push(c);
                push_code!(' ');
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        flush_allows(&mut comment_text, lines.last_mut().expect("non-empty"));
                        st = St::Code;
                    } else {
                        st = St::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment_text.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2;
                } else {
                    if c == '"' {
                        push_code!(' ');
                        st = St::Code;
                    }
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
            St::Char => {
                if c == '\\' {
                    i += 2;
                } else {
                    if c == '\'' {
                        st = St::Code;
                    }
                    i += 1;
                }
            }
        }
    }
    flush_allows(&mut comment_text, lines.last_mut().expect("non-empty"));
    lines
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Parses `swift-analyze: allow(SW004, SW005)` out of a comment.
fn flush_allows(comment: &mut String, line: &mut LineInfo) {
    if let Some(pos) = comment.find("swift-analyze:") {
        let rest = &comment[pos + "swift-analyze:".len()..];
        if let Some(open) = rest.find("allow(") {
            if let Some(close) = rest[open..].find(')') {
                for part in rest[open + "allow(".len()..open + close].split(',') {
                    if let Some(code) = Code::parse(part) {
                        line.allows.push(code);
                    }
                }
            }
        }
    }
    comment.clear();
}

/// Marks lines inside `#[cfg(test)]`-gated items (test modules) so rules
/// skip them: test code may use wall clocks, threads and hash maps freely.
pub(crate) fn test_mask(lines: &[LineInfo]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Skip until the gated item's braces balance out.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = true;
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Returns byte offsets where `needle` occurs in `hay` as a path/ident
/// boundary match: the preceding char must not be an identifier char.
pub(crate) fn boundary_matches(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let abs = from + pos;
        let ok_before = abs == 0 || {
            let b = bytes[abs - 1] as char;
            !(b.is_alphanumeric() || b == '_')
        };
        if ok_before {
            out.push(abs);
        }
        from = abs + needle.len().max(1);
    }
    out
}

/// The trailing identifier of `s` (skipping whitespace), if any.
pub(crate) fn last_ident(s: &str) -> Option<String> {
    let trimmed = s.trim_end();
    let end = trimmed.len();
    let start = trimmed
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .map(|(i, _)| i)
        .last()?;
    let ident = &trimmed[start..end];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_numeric()) {
        None
    } else {
        Some(ident.to_string())
    }
}
