//! Pass 1 — determinism lints over workspace Rust source.
//!
//! A hand-rolled scanner (the workspace builds offline with no external
//! crates, so no syn/proc-macro machinery): a small lexer blanks out
//! comments, strings and char literals so rules match only real code, a
//! brace-matcher skips `#[cfg(test)]` modules, and a per-file symbol table
//! tracks which identifiers are `HashMap`/`HashSet`-typed so the
//! iteration lint fires on `name.iter()` / `for _ in &name` rather than on
//! every mention of the type.
//!
//! ## Crate scoping
//!
//! The rules encode the repo's determinism contract (see DESIGN.md):
//!
//! * **sim-facing** crates (`swift-sim`, `swift-scheduler`, `swift-chaos`)
//!   must be pure functions of the seed — no wall clocks (SW001), no
//!   threads (SW002), no environment reads (SW003);
//! * **determinism-sensitive** crates (the above plus `swift-shuffle` and
//!   `swift-ft`, whose ledgers and monitors feed chaos reports) must not
//!   iterate unordered collections (SW004), must draw randomness only from
//!   `SimRng` (SW005), must never order or key by address (SW006) and must
//!   not fold floats over unordered iteration (SW109 — float addition is
//!   not associative, so aggregation order changes report values bitwise).
//!
//! Suppress a finding with a trailing or preceding-line comment:
//! `// swift-analyze: allow(SW004)` (multiple codes comma-separated).
//! Suppressions are counted in the report so they stay visible.

use crate::diag::{Code, Diagnostic, Report, Span};

/// Crates whose event flow must be a pure function of the seed.
pub const SIM_FACING_CRATES: [&str; 4] =
    ["swift-sim", "swift-scheduler", "swift-chaos", "swift-trace"];

/// Crates where unordered iteration / foreign randomness / address
/// ordering can leak nondeterminism into reports and ledgers.
pub const DETERMINISM_SENSITIVE_CRATES: [&str; 6] = [
    "swift-sim",
    "swift-scheduler",
    "swift-chaos",
    "swift-shuffle",
    "swift-ft",
    "swift-trace",
];

/// One logical source line after lexing.
#[derive(Debug, Default, Clone)]
struct LineInfo {
    /// The line with comments/strings/char literals blanked to spaces.
    code: String,
    /// Codes allowed by `swift-analyze: allow(...)` comments on this line.
    allows: Vec<Code>,
}

/// Lexes `content` into per-line code text plus allow directives.
fn lex(content: &str) -> Vec<LineInfo> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut lines: Vec<LineInfo> = vec![LineInfo::default()];
    let mut comment_text = String::new();
    let mut st = St::Code;
    let chars: Vec<char> = content.chars().collect();
    let mut i = 0usize;

    // Appends to the current line's code view.
    macro_rules! push_code {
        ($c:expr) => {
            lines.last_mut().expect("non-empty").code.push($c)
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            flush_allows(&mut comment_text, lines.last_mut().expect("non-empty"));
            lines.push(LineInfo::default());
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    comment_text.clear();
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    comment_text.clear();
                    i += 2;
                    continue;
                }
                if c == 'r' && (next == Some('"') || next == Some('#')) && !prev_is_ident(&chars, i)
                {
                    // Raw string r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        push_code!(' ');
                        for _ in 0..(hashes as usize + 1) {
                            push_code!(' ');
                        }
                        st = St::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    push_code!(' ');
                    st = St::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Lifetime ('a) vs char literal ('x' / '\n').
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && chars.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        push_code!('\'');
                        i += 1;
                        continue;
                    }
                    push_code!(' ');
                    st = St::Char;
                    i += 1;
                    continue;
                }
                push_code!(c);
                i += 1;
            }
            St::LineComment => {
                comment_text.push(c);
                push_code!(' ');
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        flush_allows(&mut comment_text, lines.last_mut().expect("non-empty"));
                        st = St::Code;
                    } else {
                        st = St::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment_text.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2;
                } else {
                    if c == '"' {
                        push_code!(' ');
                        st = St::Code;
                    }
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
            St::Char => {
                if c == '\\' {
                    i += 2;
                } else {
                    if c == '\'' {
                        st = St::Code;
                    }
                    i += 1;
                }
            }
        }
    }
    flush_allows(&mut comment_text, lines.last_mut().expect("non-empty"));
    lines
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Parses `swift-analyze: allow(SW004, SW005)` out of a comment.
fn flush_allows(comment: &mut String, line: &mut LineInfo) {
    if let Some(pos) = comment.find("swift-analyze:") {
        let rest = &comment[pos + "swift-analyze:".len()..];
        if let Some(open) = rest.find("allow(") {
            if let Some(close) = rest[open..].find(')') {
                for part in rest[open + "allow(".len()..open + close].split(',') {
                    if let Some(code) = Code::parse(part) {
                        line.allows.push(code);
                    }
                }
            }
        }
    }
    comment.clear();
}

/// Marks lines inside `#[cfg(test)]`-gated items (test modules) so rules
/// skip them: test code may use wall clocks, threads and hash maps freely.
fn test_mask(lines: &[LineInfo]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Skip until the gated item's braces balance out.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = true;
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Returns byte offsets where `needle` occurs in `hay` as a path/ident
/// boundary match: the preceding char must not be an identifier char.
fn boundary_matches(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let abs = from + pos;
        let ok_before = abs == 0 || {
            let b = bytes[abs - 1] as char;
            !(b.is_alphanumeric() || b == '_')
        };
        if ok_before {
            out.push(abs);
        }
        from = abs + needle.len().max(1);
    }
    out
}

/// Collects identifiers declared with `HashMap`/`HashSet` types in the
/// file: struct fields and let bindings with annotations (`name: ...
/// HashMap<...>`) and inferred bindings (`let name = HashMap::new()`).
fn hash_typed_names(lines: &[LineInfo]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for li in lines {
        let code = &li.code;
        for ty in ["HashMap", "HashSet"] {
            for pos in boundary_matches(code, ty) {
                // `let [mut] NAME = HashMap::new()` (inferred type).
                if code[pos..].starts_with(&format!("{ty}::")) {
                    if let Some(eq) = code[..pos].rfind('=') {
                        if let Some(name) = last_ident(&code[..eq]) {
                            push_unique(&mut names, name);
                            continue;
                        }
                    }
                }
                // `NAME: ... HashMap<` — field or annotated binding; the
                // nearest `:` to the left is the type annotation.
                if let Some(colon) = code[..pos].rfind(':') {
                    // Exclude paths (`std::collections::HashMap`): a path
                    // separator directly before the match site.
                    if code[..pos].ends_with("::") {
                        continue;
                    }
                    if let Some(name) = last_ident(&code[..colon]) {
                        push_unique(&mut names, name);
                    }
                }
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: String) {
    if !names.contains(&name) {
        names.push(name);
    }
}

/// The trailing identifier of `s` (skipping whitespace), if any.
fn last_ident(s: &str) -> Option<String> {
    let trimmed = s.trim_end();
    let end = trimmed.len();
    let start = trimmed
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .map(|(i, _)| i)
        .last()?;
    let ident = &trimmed[start..end];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_numeric()) {
        None
    } else {
        Some(ident.to_string())
    }
}

/// Iteration methods whose order leaks `HashMap`/`HashSet` randomness.
/// `retain`/`get`/`insert` are deliberately absent: they do not expose
/// order to the caller.
const ITER_METHODS: [&str; 7] = [
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
];

/// Chain endings that accumulate floats, where the result depends on
/// operand order: `a + b + c` in IEEE 754 is not `c + a + b` bitwise.
/// SW109 fires when one of these terminates a chain that iterates a
/// tracked `HashMap`/`HashSet` name — a report aggregate computed that
/// way differs run-to-run even though the visited *set* is identical
/// (which is why it gets its own code on top of SW004: sorting before a
/// lossless `collect` fixes SW004, but an aggregate must also pick a
/// fixed summation order).
const FLOAT_SUM_PATTERNS: [&str; 3] = [".sum::<f64>()", ".sum::<f32>()", ".fold(0.0"];

/// Reconstructs the builder chain ending at `lineno`: walks back over
/// continuation lines (those opening with `.`) to the receiver line and
/// joins the trimmed segments, so `m\n.values()\n.sum::<f64>()` reads
/// back as `m.values().sum::<f64>()` for pattern matching.
fn chain_text(lines: &[LineInfo], lineno: usize) -> String {
    let mut start = lineno;
    while start > 0 {
        let t = lines[start].code.trim_start();
        if t.starts_with('.') || t.is_empty() {
            start -= 1;
        } else {
            break;
        }
    }
    let mut out = String::new();
    for li in &lines[start..=lineno] {
        out.push_str(li.code.trim());
    }
    out
}

/// Scans one file. `crate_name` selects which rule groups apply;
/// `file_label` is used verbatim in spans.
pub fn scan_source(crate_name: &str, file_label: &str, content: &str) -> Report {
    let lines = lex(content);
    let mask = test_mask(&lines);
    let sim_facing = SIM_FACING_CRATES.contains(&crate_name);
    let sensitive = DETERMINISM_SENSITIVE_CRATES.contains(&crate_name);
    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };
    if !sim_facing && !sensitive {
        return report;
    }
    let hash_names = hash_typed_names(&lines);

    let emit = |report: &mut Report, lineno: usize, code: Code, msg: String| {
        let allowed = lines[lineno].allows.contains(&code)
            || (lineno > 0 && lines[lineno - 1].allows.contains(&code));
        if allowed {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(Diagnostic::new(
                code,
                Span::at(file_label, lineno as u32 + 1),
                msg,
            ));
        }
    };

    for (n, li) in lines.iter().enumerate() {
        if mask[n] {
            continue;
        }
        let code = &li.code;
        if sim_facing {
            for pat in ["Instant::now", "SystemTime", "std::time::Instant"] {
                if !boundary_matches(code, pat).is_empty() {
                    emit(
                        &mut report,
                        n,
                        Code::SW001,
                        format!(
                            "`{pat}` reads the wall clock; sim-facing code must use SimTime so \
                         runs are a pure function of the seed"
                        ),
                    );
                    break;
                }
            }
            for pat in ["std::thread", "thread::spawn", "thread::sleep"] {
                if !boundary_matches(code, pat).is_empty() {
                    emit(
                        &mut report,
                        n,
                        Code::SW002,
                        format!(
                            "`{pat}` introduces scheduling nondeterminism; the simulator is \
                         single-threaded by design"
                        ),
                    );
                    break;
                }
            }
            for pat in ["env::var", "env::vars"] {
                if !boundary_matches(code, pat).is_empty() {
                    emit(
                        &mut report,
                        n,
                        Code::SW003,
                        format!(
                            "`{pat}` makes behavior depend on the environment; thread \
                         configuration through SimConfig instead"
                        ),
                    );
                    break;
                }
            }
        }
        if sensitive {
            // Builder-style chains split the receiver and the iteration
            // method across lines (`st\n  .segments\n  .keys()`): a line
            // opening with an iteration method iterates whatever the
            // previous code line's trailing identifier names.
            let trimmed = code.trim_start();
            if ITER_METHODS.iter().any(|m| trimmed.starts_with(m)) {
                let prev_ident = lines[..n]
                    .iter()
                    .rev()
                    .find(|li| !li.code.trim().is_empty())
                    .and_then(|li| last_ident(&li.code));
                if let Some(name) = prev_ident {
                    if hash_names.contains(&name) {
                        emit(
                            &mut report,
                            n,
                            Code::SW004,
                            format!(
                                "iterating unordered `{name}` — iteration order is \
                             nondeterministic; sort first or use BTreeMap/BTreeSet"
                            ),
                        );
                    }
                }
            }
            'outer: for name in &hash_names {
                for m in ITER_METHODS {
                    if !boundary_matches(code, &format!("{name}{m}")).is_empty() {
                        emit(
                            &mut report,
                            n,
                            Code::SW004,
                            format!(
                                "iterating unordered `{name}` ({}) — iteration order is \
                             nondeterministic; sort first or use BTreeMap/BTreeSet",
                                m.trim_matches(|c| c == '.' || c == '(' || c == ')')
                            ),
                        );
                        break 'outer;
                    }
                }
                if code.contains("for ") {
                    for pat in [
                        format!("in {name}"),
                        format!("in &{name}"),
                        format!("in &mut {name}"),
                    ] {
                        let hit = boundary_matches(code, &pat).iter().any(|&p| {
                            // The match must end at a non-ident boundary so
                            // `in lruX` does not match tracked name `lru`.
                            let end = p + pat.len();
                            code[end..]
                                .chars()
                                .next()
                                .is_none_or(|c| !(c.is_alphanumeric() || c == '_'))
                        });
                        if hit {
                            emit(
                                &mut report,
                                n,
                                Code::SW004,
                                format!(
                                    "`for _ in {name}` iterates an unordered collection; sort \
                                 first or use BTreeMap/BTreeSet"
                                ),
                            );
                            break 'outer;
                        }
                    }
                }
            }
            if FLOAT_SUM_PATTERNS.iter().any(|p| code.contains(p)) {
                let chain = chain_text(&lines, n);
                let iterated = hash_names.iter().find(|name| {
                    ITER_METHODS
                        .iter()
                        .any(|m| !boundary_matches(&chain, &format!("{name}{m}")).is_empty())
                });
                if let Some(name) = iterated {
                    emit(
                        &mut report,
                        n,
                        Code::SW109,
                        format!(
                            "float summation over unordered `{name}` — addition order changes \
                         the aggregate bitwise; collect into an ordered collection (or sort) \
                         before summing"
                        ),
                    );
                }
            }
            for pat in ["rand::", "thread_rng", "RandomState", "DefaultHasher"] {
                if !boundary_matches(code, pat).is_empty() {
                    emit(
                        &mut report,
                        n,
                        Code::SW005,
                        format!(
                            "`{pat}` is randomness outside SimRng; all stochastic choices must \
                         flow through the seeded generator"
                        ),
                    );
                    break;
                }
            }
            let ptr_order = (code.contains("as *const") && code.contains("as usize"))
                || code.contains(".as_ptr() as usize")
                || !boundary_matches(code, "addr_of!").is_empty();
            if ptr_order {
                emit(
                    &mut report,
                    n,
                    Code::SW006,
                    "address-based ordering/keying: pointer values vary across runs; derive \
                     ordering from stable ids instead"
                        .to_string(),
                );
            }
        }
    }
    report
}

/// Infers the owning crate from a workspace-relative path like
/// `crates/swift-sim/src/time.rs`.
pub fn crate_of_path(path: &str) -> Option<&str> {
    let norm = path.replace('\\', "/");
    let idx = norm.find("crates/")?;
    let rest = &norm[idx + "crates/".len()..];
    let end = rest.find('/')?;
    // Safe: we return a slice of the original `path` with the same bounds.
    let start = idx + "crates/".len();
    Some(&path[start..start + end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn codes(r: &Report) -> Vec<Code> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_file_has_no_findings() {
        let r = scan_source("swift-sim", "x.rs", "fn f() -> u32 { 1 + 1 }\n");
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.files_scanned, 1);
    }

    #[test]
    fn out_of_scope_crates_are_skipped() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        let r = scan_source("swift-cli", "x.rs", src);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn wall_clock_flagged_with_line() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let r = scan_source("swift-scheduler", "s.rs", src);
        assert_eq!(codes(&r), vec![Code::SW001]);
        assert_eq!(r.diagnostics[0].span.line, 2);
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn mentions_in_comments_and_strings_are_ignored() {
        let src = "// Instant::now is banned\nfn f() { let s = \"SystemTime\"; let _ = s; }\n";
        let r = scan_source("swift-sim", "x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn threads_and_env_reads_flagged() {
        let src = "fn f() {\n    std::thread::sleep(d);\n    let _ = std::env::var(\"X\");\n}\n";
        let r = scan_source("swift-chaos", "c.rs", src);
        assert_eq!(codes(&r), vec![Code::SW002, Code::SW003]);
    }

    #[test]
    fn env_args_is_not_an_env_read() {
        let src = "fn f() { let _ = std::env::args(); }\n";
        let r = scan_source("swift-chaos", "c.rs", src);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged_only_when_iterated() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn get(&self) -> Option<&u32> { self.m.get(&1) }\n\
                   fn all(&self) -> Vec<u32> { self.m.keys().copied().collect() }\n\
                   }\n";
        let r = scan_source("swift-shuffle", "m.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004]);
        assert_eq!(r.diagnostics[0].span.line, 4);
    }

    #[test]
    fn for_loop_over_hashset_flagged() {
        let src = "fn f() {\n    let seen = HashSet::new();\n    for x in &seen { g(x); }\n}\n";
        let r = scan_source("swift-ft", "f.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004]);
        assert_eq!(r.diagnostics[0].span.line, 3);
    }

    #[test]
    fn nested_generic_hashmap_field_is_tracked() {
        let src = "struct S { state: Mutex<HashMap<u64, u64>> }\n\
                   fn f(s: &S) { for (k, v) in s.state.lock().unwrap().iter() { g(k, v); } }\n";
        // `state.iter()` is not literally present (lock() intervenes), so
        // this heuristic scanner accepts it — documenting the limitation.
        let r = scan_source("swift-shuffle", "m.rs", src);
        assert!(r.diagnostics.is_empty());
        // ...but direct iteration on the tracked name is caught:
        let src2 = "struct S { state: Mutex<HashMap<u64, u64>> }\n\
                    fn f(st: &StInner) { let _ = st.state.keys(); }\n";
        let r2 = scan_source("swift-shuffle", "m.rs", src2);
        assert_eq!(codes(&r2), vec![Code::SW004]);
    }

    #[test]
    fn multiline_builder_chain_iteration_flagged() {
        // The style the real codebase uses: receiver and method split
        // across lines.
        let src = "struct S { segments: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn keys(&self) -> Vec<u32> {\n\
                   let keys: Vec<u32> = self\n\
                   .segments\n\
                   .keys()\n\
                   .copied()\n\
                   .collect();\n\
                   keys\n\
                   }\n\
                   }\n";
        let r = scan_source("swift-shuffle", "m.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004]);
        assert_eq!(r.diagnostics[0].span.line, 6, "points at the .keys() line");
    }

    #[test]
    fn multiline_chain_on_untracked_name_is_fine() {
        let src = "struct S { segments: BTreeMap<u32, u32> }\n\
                   impl S {\n\
                   fn keys(&self) -> Vec<u32> {\n\
                   self.segments\n\
                   .keys()\n\
                   .copied()\n\
                   .collect()\n\
                   }\n\
                   }\n";
        let r = scan_source("swift-shuffle", "m.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn btreemap_is_fine() {
        let src = "struct S { m: BTreeMap<u32, u32> }\n\
                   fn f(s: &S) { for x in s.m.keys() { g(x); } }\n";
        let r = scan_source("swift-shuffle", "m.rs", src);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn float_sum_over_hashmap_flagged_with_sw004() {
        let src = "struct R { per_stage: HashMap<u32, f64> }\n\
                   impl R {\n\
                   fn total(&self) -> f64 { self.per_stage.values().sum::<f64>() }\n\
                   }\n";
        let r = scan_source("swift-scheduler", "r.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004, Code::SW109]);
        assert_eq!(r.diagnostics[1].span.line, 3);
    }

    #[test]
    fn float_sum_in_multiline_chain_points_at_the_sum_line() {
        let src = "struct R { per_stage: HashMap<u32, f64> }\n\
                   fn total(r: &R) -> f64 {\n\
                   r.per_stage\n\
                   .values()\n\
                   .copied()\n\
                   .sum::<f64>()\n\
                   }\n";
        let r = scan_source("swift-scheduler", "r.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004, Code::SW109]);
        assert_eq!(r.diagnostics[0].span.line, 4, "SW004 at .values()");
        assert_eq!(r.diagnostics[1].span.line, 6, "SW109 at .sum()");
    }

    #[test]
    fn float_fold_over_hashset_flagged() {
        let src = "fn f(weights: HashSet<u64>) -> f64 {\n\
                   weights.iter().fold(0.0, |a, w| a + *w as f64)\n\
                   }\n";
        let r = scan_source("swift-ft", "f.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004, Code::SW109]);
    }

    #[test]
    fn integer_sum_over_hashmap_is_only_sw004() {
        // Integer addition is associative: order nondeterminism is an
        // SW004 matter but the aggregate itself is stable.
        let src = "struct R { counts: HashMap<u32, u64> }\n\
                   fn total(r: &R) -> u64 { r.counts.values().sum::<u64>() }\n";
        let r = scan_source("swift-scheduler", "r.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004]);
    }

    #[test]
    fn float_sum_over_ordered_collection_is_fine() {
        let src = "struct R { per_stage: BTreeMap<u32, f64> }\n\
                   fn total(r: &R) -> f64 { r.per_stage.values().sum::<f64>() }\n";
        let r = scan_source("swift-scheduler", "r.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn float_sum_suppression_is_counted() {
        let src = "struct R { m: HashMap<u32, f64> }\n\
                   // swift-analyze: allow(SW004, SW109)\n\
                   fn t(r: &R) -> f64 { r.m.values().sum::<f64>() }\n";
        let r = scan_source("swift-scheduler", "r.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed, 2);
    }

    #[test]
    fn foreign_randomness_flagged() {
        let src = "fn f() { let x = rand::random::<u8>(); }\n";
        let r = scan_source("swift-sim", "r.rs", src);
        assert_eq!(codes(&r), vec![Code::SW005]);
    }

    #[test]
    fn pointer_ordering_flagged() {
        let src = "fn f(a: &u32) -> usize { a as *const u32 as usize }\n";
        let r = scan_source("swift-ft", "p.rs", src);
        assert_eq!(codes(&r), vec![Code::SW006]);
    }

    #[test]
    fn same_line_suppression_counts_as_suppressed() {
        let src = "fn f() { std::thread::sleep(d); } // swift-analyze: allow(SW002)\n";
        let r = scan_source("swift-sim", "x.rs", src);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn preceding_line_suppression_works() {
        let src = "// swift-analyze: allow(SW001)\nfn f() { let _ = Instant::now(); }\n";
        let r = scan_source("swift-scheduler", "x.rs", src);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn suppression_of_wrong_code_does_not_silence() {
        let src = "fn f() { let _ = Instant::now(); } // swift-analyze: allow(SW002)\n";
        let r = scan_source("swift-scheduler", "x.rs", src);
        assert_eq!(codes(&r), vec![Code::SW001]);
        assert_eq!(r.suppressed, 0);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   use std::collections::HashMap;\n\
                   fn t() { let m: HashMap<u32, u32> = HashMap::new(); for x in &m { g(x); } }\n\
                   fn u() { std::thread::sleep(d); }\n\
                   }\n";
        let r = scan_source("swift-scheduler", "x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn code_after_test_module_is_still_scanned() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\n\
                   fn late() { let _ = Instant::now(); }\n";
        let r = scan_source("swift-sim", "x.rs", src);
        assert_eq!(codes(&r), vec![Code::SW001]);
        assert_eq!(r.diagnostics[0].span.line, 3);
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_cleanly() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n\
                   const S: &str = r#\"Instant::now()\"#;\n";
        let r = scan_source("swift-sim", "x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn crate_inference_from_path() {
        assert_eq!(
            crate_of_path("crates/swift-sim/src/time.rs"),
            Some("swift-sim")
        );
        assert_eq!(
            crate_of_path("/root/repo/crates/swift-ft/src/lib.rs"),
            Some("swift-ft")
        );
        assert_eq!(crate_of_path("src/main.rs"), None);
    }
}
