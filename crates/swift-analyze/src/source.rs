//! Pass 1 — determinism lints over workspace Rust source.
//!
//! Two engines share one lexer ([`crate::lex`]) and one suppression
//! resolver:
//!
//! * **Lexical rules** for patterns where a line-local match is exact
//!   enough: wall clocks (SW001), threads (SW002), environment reads
//!   (SW003), foreign randomness (SW005), address ordering (SW006).
//! * **The determinism taint engine** ([`crate::taint`]) for everything
//!   order-related: unordered iteration whose order *survives* (SW004),
//!   order-tainted values reaching determinism sinks (SW007), shared
//!   mutable state on shard paths (SW008), and float accumulation over
//!   nondeterministic order (SW109). The engine is dataflow-aware: it
//!   tracks taint through bindings, method chains
//!   (`m.lock().unwrap().iter()`), `for` loops and helper returns
//!   ([`crate::summary`]), and *drops* findings that are immediately
//!   neutralized (`collect::<BTreeMap<_,_>>()`, `.count()`, a later
//!   `sort()`).
//!
//! ## Crate scoping
//!
//! The rules encode the repo's determinism contract (see DESIGN.md §8):
//!
//! * **sim-facing** crates (`swift-sim`, `swift-scheduler`, `swift-chaos`,
//!   `swift-trace`, `swift-service`) must be pure functions of the seed —
//!   no wall clocks (SW001), no threads (SW002), no environment reads
//!   (SW003);
//! * **determinism-sensitive** crates (the above plus `swift-shuffle` and
//!   `swift-ft`, whose ledgers and monitors feed chaos reports) get the
//!   full taint analysis on top.
//!
//! Suppress a finding with a trailing or preceding-line comment:
//! `// swift-analyze: allow(SW004)` (multiple codes comma-separated).
//! Suppressions are counted in the report so they stay visible, and an
//! allow that matches no diagnostic is itself reported (SW009) so stale
//! suppressions cannot linger after the code they excused is gone.

use std::collections::BTreeSet;

use crate::diag::{Code, Diagnostic, Report, Span};
use crate::lex::{boundary_matches, last_ident, lex, test_mask, LineInfo};
use crate::summary::{build_summaries, prepare, PreparedFile, Summaries};
use crate::taint::{taint_file, RawDiag};

/// Crates whose event flow must be a pure function of the seed.
/// `swift-cluster` joined when it grew the machine→shard map that routes
/// every event to a lane: a nondeterministic shard assignment would not
/// change the merged order (the `(time, seq)` key is shard-blind) but
/// would corrupt the per-shard telemetry counters.
pub const SIM_FACING_CRATES: [&str; 7] = [
    "swift-sim",
    "swift-scheduler",
    "swift-cluster",
    "swift-chaos",
    "swift-trace",
    "swift-metrics",
    "swift-service",
];

/// Crates where unordered iteration / foreign randomness / address
/// ordering can leak nondeterminism into reports and ledgers. The whole
/// set is also under the SW008 shard-safety lint: anything on the sim
/// step path may now run inside a parallel lane refill, so interior
/// mutability and `static mut` globals are flagged at the declaration.
pub const DETERMINISM_SENSITIVE_CRATES: [&str; 9] = [
    "swift-sim",
    "swift-scheduler",
    "swift-cluster",
    "swift-chaos",
    "swift-shuffle",
    "swift-ft",
    "swift-trace",
    "swift-metrics",
    "swift-service",
];

/// Scans one file. `crate_name` selects which rule groups apply;
/// `file_label` is used verbatim in spans. Single-file entry point:
/// cross-function summaries are built from this file alone (the
/// `--workspace` path builds them over every scanned file first and uses
/// [`scan_prepared`] directly).
pub fn scan_source(crate_name: &str, file_label: &str, content: &str) -> Report {
    let file = prepare(content);
    let summaries = build_summaries(&[&file]);
    scan_prepared(crate_name, file_label, &file, &summaries)
}

/// Scans one pre-lexed file against pre-built summaries.
pub(crate) fn scan_prepared(
    crate_name: &str,
    file_label: &str,
    file: &PreparedFile,
    summaries: &Summaries,
) -> Report {
    let sim_facing = SIM_FACING_CRATES.contains(&crate_name);
    let sensitive = DETERMINISM_SENSITIVE_CRATES.contains(&crate_name);
    if !sim_facing && !sensitive {
        return Report {
            files_scanned: 1,
            ..Report::default()
        };
    }
    let mut raw: Vec<RawDiag> = Vec::new();
    lexical_rules(&file.lines, &file.mask, sim_facing, sensitive, &mut raw);
    if sensitive {
        raw.extend(taint_file(file, summaries));
    }
    resolve(file_label, &file.lines, &file.mask, raw)
}

/// The line-local lexical rules (SW001–SW003, SW005, SW006).
fn lexical_rules(
    lines: &[LineInfo],
    mask: &[bool],
    sim_facing: bool,
    sensitive: bool,
    raw: &mut Vec<RawDiag>,
) {
    for (n, li) in lines.iter().enumerate() {
        if mask[n] {
            continue;
        }
        let code = &li.code;
        let line = n as u32;
        if sim_facing {
            for pat in ["Instant::now", "SystemTime", "std::time::Instant"] {
                if !boundary_matches(code, pat).is_empty() {
                    raw.push(RawDiag {
                        line,
                        code: Code::SW001,
                        msg: format!(
                            "`{pat}` reads the wall clock; sim-facing code must use SimTime so \
                             runs are a pure function of the seed"
                        ),
                    });
                    break;
                }
            }
            for pat in ["std::thread", "thread::spawn", "thread::sleep"] {
                if !boundary_matches(code, pat).is_empty() {
                    raw.push(RawDiag {
                        line,
                        code: Code::SW002,
                        msg: format!(
                            "`{pat}` introduces scheduling nondeterminism; the simulator is \
                             single-threaded by design"
                        ),
                    });
                    break;
                }
            }
            for pat in ["env::var", "env::vars"] {
                if !boundary_matches(code, pat).is_empty() {
                    raw.push(RawDiag {
                        line,
                        code: Code::SW003,
                        msg: format!(
                            "`{pat}` makes behavior depend on the environment; thread \
                             configuration through SimConfig instead"
                        ),
                    });
                    break;
                }
            }
        }
        if sensitive {
            for pat in ["rand::", "thread_rng", "RandomState", "DefaultHasher"] {
                if !boundary_matches(code, pat).is_empty() {
                    raw.push(RawDiag {
                        line,
                        code: Code::SW005,
                        msg: format!(
                            "`{pat}` is randomness outside SimRng; all stochastic choices must \
                             flow through the seeded generator"
                        ),
                    });
                    break;
                }
            }
            let ptr_order = (code.contains("as *const") && code.contains("as usize"))
                || code.contains(".as_ptr() as usize")
                || !boundary_matches(code, "addr_of!").is_empty();
            if ptr_order {
                raw.push(RawDiag {
                    line,
                    code: Code::SW006,
                    msg: "address-based ordering/keying: pointer values vary across runs; derive \
                          ordering from stable ids instead"
                        .to_string(),
                });
            }
        }
    }
}

/// Sorts, dedups and suppression-resolves raw findings into a [`Report`],
/// tracking which `allow(...)` directives actually fired so stale ones
/// surface as SW009.
fn resolve(file_label: &str, lines: &[LineInfo], mask: &[bool], mut raw: Vec<RawDiag>) -> Report {
    raw.sort_by(|a, b| {
        (a.line, a.code.as_str())
            .cmp(&(b.line, b.code.as_str()))
            .then_with(|| a.msg.cmp(&b.msg))
    });
    raw.dedup_by(|a, b| a.line == b.line && a.code == b.code);

    let mut report = Report {
        files_scanned: 1,
        ..Report::default()
    };
    let mut consumed: BTreeSet<(usize, Code)> = BTreeSet::new();
    for d in raw {
        let n = d.line as usize;
        let mut allowed = false;
        if lines.get(n).is_some_and(|li| li.allows.contains(&d.code)) {
            allowed = true;
            consumed.insert((n, d.code));
        }
        if n > 0
            && lines
                .get(n - 1)
                .is_some_and(|li| li.allows.contains(&d.code))
        {
            allowed = true;
            consumed.insert((n - 1, d.code));
        }
        if allowed {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(Diagnostic::new(
                d.code,
                Span::at(file_label, d.line + 1),
                d.msg,
            ));
        }
    }
    // Unused suppressions. An allow is "used" when a diagnostic of that
    // code landed on its line or the next one. SW009 is itself never
    // suppressible — a stale allow must be deleted, not excused.
    for (n, li) in lines.iter().enumerate() {
        if mask.get(n).copied().unwrap_or(false) {
            continue;
        }
        let mut seen: Vec<Code> = Vec::new();
        for &code in &li.allows {
            if code == Code::SW009 || seen.contains(&code) {
                continue;
            }
            seen.push(code);
            if !consumed.contains(&(n, code)) {
                report.diagnostics.push(Diagnostic::new(
                    Code::SW009,
                    Span::at(file_label, n as u32 + 1),
                    format!(
                        "unused suppression `allow({code})`: no {code} diagnostic on this line \
                         or the next — remove the stale allow"
                    ),
                ));
            }
        }
    }
    report
}

// ---- legacy lexical SW004 oracle ----

/// Iteration patterns of the pre-taint lexical SW004 rule.
const LEGACY_ITER_METHODS: [&str; 7] = [
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
];

/// Collects identifiers declared with `HashMap`/`HashSet` types in the
/// file the way the legacy scanner did: struct fields and let bindings
/// with annotations plus `let name = HashMap::new()` inference.
fn hash_typed_names(lines: &[LineInfo]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for li in lines {
        let code = &li.code;
        for ty in ["HashMap", "HashSet"] {
            for pos in boundary_matches(code, ty) {
                if code[pos..].starts_with(&format!("{ty}::")) {
                    if let Some(eq) = code[..pos].rfind('=') {
                        if let Some(name) = last_ident(&code[..eq]) {
                            push_unique(&mut names, name);
                            continue;
                        }
                    }
                }
                if let Some(colon) = code[..pos].rfind(':') {
                    if code[..pos].ends_with("::") {
                        continue;
                    }
                    if let Some(name) = last_ident(&code[..colon]) {
                        push_unique(&mut names, name);
                    }
                }
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: String) {
    if !names.contains(&name) {
        names.push(name);
    }
}

/// What the pre-taint *lexical* SW004 rule would have flagged (1-based
/// lines). Kept as a differential oracle: fixture tests assert the
/// dataflow engine catches shapes (`m.lock().unwrap().iter()`, taint
/// through re-binding, taint through helper returns) on which this
/// scanner stays silent.
pub fn legacy_sw004_lines(content: &str) -> Vec<u32> {
    let lines = lex(content);
    let mask = test_mask(&lines);
    let hash_names = hash_typed_names(&lines);
    let mut out = Vec::new();
    for (n, li) in lines.iter().enumerate() {
        if mask[n] {
            continue;
        }
        let code = &li.code;
        let mut hit = false;
        // Builder-style continuation lines: `.keys()` opening a line
        // iterates the previous line's trailing identifier.
        let trimmed = code.trim_start();
        if LEGACY_ITER_METHODS.iter().any(|m| trimmed.starts_with(m)) {
            let prev_ident = lines[..n]
                .iter()
                .rev()
                .find(|li| !li.code.trim().is_empty())
                .and_then(|li| last_ident(&li.code));
            if prev_ident.is_some_and(|name| hash_names.contains(&name)) {
                hit = true;
            }
        }
        if !hit {
            'outer: for name in &hash_names {
                for m in LEGACY_ITER_METHODS {
                    if !boundary_matches(code, &format!("{name}{m}")).is_empty() {
                        hit = true;
                        break 'outer;
                    }
                }
                if code.contains("for ") {
                    for pat in [
                        format!("in {name}"),
                        format!("in &{name}"),
                        format!("in &mut {name}"),
                    ] {
                        let found = boundary_matches(code, &pat).iter().any(|&p| {
                            let end = p + pat.len();
                            code[end..]
                                .chars()
                                .next()
                                .is_none_or(|c| !(c.is_alphanumeric() || c == '_'))
                        });
                        if found {
                            hit = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        if hit {
            out.push(n as u32 + 1);
        }
    }
    out
}

/// Infers the owning crate from a workspace-relative path like
/// `crates/swift-sim/src/time.rs`.
pub fn crate_of_path(path: &str) -> Option<&str> {
    let norm = path.replace('\\', "/");
    let idx = norm.find("crates/")?;
    let rest = &norm[idx + "crates/".len()..];
    let end = rest.find('/')?;
    // Safe: we return a slice of the original `path` with the same bounds.
    let start = idx + "crates/".len();
    Some(&path[start..start + end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn codes(r: &Report) -> Vec<Code> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_file_has_no_findings() {
        let r = scan_source("swift-sim", "x.rs", "fn f() -> u32 { 1 + 1 }\n");
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.files_scanned, 1);
    }

    #[test]
    fn out_of_scope_crates_are_skipped() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        let r = scan_source("swift-cli", "x.rs", src);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn wall_clock_flagged_with_line() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let r = scan_source("swift-scheduler", "s.rs", src);
        assert_eq!(codes(&r), vec![Code::SW001]);
        assert_eq!(r.diagnostics[0].span.line, 2);
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn mentions_in_comments_and_strings_are_ignored() {
        let src = "// Instant::now is banned\nfn f() { let s = \"SystemTime\"; let _ = s; }\n";
        let r = scan_source("swift-sim", "x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn threads_and_env_reads_flagged() {
        let src = "fn f() {\n    std::thread::sleep(d);\n    let _ = std::env::var(\"X\");\n}\n";
        let r = scan_source("swift-chaos", "c.rs", src);
        assert_eq!(codes(&r), vec![Code::SW002, Code::SW003]);
    }

    #[test]
    fn env_args_is_not_an_env_read() {
        let src = "fn f() { let _ = std::env::args(); }\n";
        let r = scan_source("swift-chaos", "c.rs", src);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn hashmap_iteration_flagged_only_when_iterated() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn get(&self) -> Option<&u32> { self.m.get(&1) }\n\
                   fn all(&self) -> Vec<u32> { self.m.keys().copied().collect() }\n\
                   }\n";
        let r = scan_source("swift-shuffle", "m.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004]);
        assert_eq!(r.diagnostics[0].span.line, 4);
    }

    #[test]
    fn for_loop_over_hashset_flagged() {
        let src = "fn f() {\n    let seen = HashSet::new();\n    for x in &seen { g(x); }\n}\n";
        let r = scan_source("swift-ft", "f.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004]);
        assert_eq!(r.diagnostics[0].span.line, 3);
    }

    #[test]
    fn lock_chain_iteration_is_now_caught() {
        // The shape the legacy lexical scanner documented as a miss:
        // `state.iter()` is not literally present (lock() intervenes). The
        // dataflow engine sees through the wrappers.
        let src = "struct S { state: Mutex<HashMap<u64, u64>> }\n\
                   fn f(s: &S) { for (k, v) in s.state.lock().unwrap().iter() { g(k, v); } }\n";
        let r = scan_source("swift-shuffle", "m.rs", src);
        // SW008 rides along: the Mutex field is shared mutable state.
        assert_eq!(codes(&r), vec![Code::SW008, Code::SW004]);
        assert_eq!(r.diagnostics[1].span.line, 2);
        assert!(
            legacy_sw004_lines(src).is_empty(),
            "the legacy scanner must stay silent here — that gap is why the taint engine exists"
        );
        // Direct iteration on the tracked name is still caught:
        let src2 = "struct S { state: Mutex<HashMap<u64, u64>> }\n\
                    fn f(st: &StInner) { let _ = st.state.keys(); }\n";
        let r2 = scan_source("swift-shuffle", "m.rs", src2);
        assert_eq!(codes(&r2), vec![Code::SW008, Code::SW004]);
    }

    #[test]
    fn multiline_builder_chain_iteration_flagged() {
        // The style the real codebase uses: receiver and method split
        // across lines.
        let src = "struct S { segments: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn keys(&self) -> Vec<u32> {\n\
                   let keys: Vec<u32> = self\n\
                   .segments\n\
                   .keys()\n\
                   .copied()\n\
                   .collect();\n\
                   keys\n\
                   }\n\
                   }\n";
        let r = scan_source("swift-shuffle", "m.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004]);
        assert_eq!(r.diagnostics[0].span.line, 6, "points at the .keys() line");
    }

    #[test]
    fn multiline_chain_on_untracked_name_is_fine() {
        let src = "struct S { segments: BTreeMap<u32, u32> }\n\
                   impl S {\n\
                   fn keys(&self) -> Vec<u32> {\n\
                   self.segments\n\
                   .keys()\n\
                   .copied()\n\
                   .collect()\n\
                   }\n\
                   }\n";
        let r = scan_source("swift-shuffle", "m.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn btreemap_is_fine() {
        let src = "struct S { m: BTreeMap<u32, u32> }\n\
                   fn f(s: &S) { for x in s.m.keys() { g(x); } }\n";
        let r = scan_source("swift-shuffle", "m.rs", src);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn float_sum_over_hashmap_flagged_with_sw004() {
        let src = "struct R { per_stage: HashMap<u32, f64> }\n\
                   impl R {\n\
                   fn total(&self) -> f64 { self.per_stage.values().sum::<f64>() }\n\
                   }\n";
        let r = scan_source("swift-scheduler", "r.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004, Code::SW109]);
        assert_eq!(r.diagnostics[1].span.line, 3);
    }

    #[test]
    fn float_sum_in_multiline_chain_points_at_the_sum_line() {
        let src = "struct R { per_stage: HashMap<u32, f64> }\n\
                   fn total(r: &R) -> f64 {\n\
                   r.per_stage\n\
                   .values()\n\
                   .copied()\n\
                   .sum::<f64>()\n\
                   }\n";
        let r = scan_source("swift-scheduler", "r.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004, Code::SW109]);
        assert_eq!(r.diagnostics[0].span.line, 4, "SW004 at .values()");
        assert_eq!(r.diagnostics[1].span.line, 6, "SW109 at .sum()");
    }

    #[test]
    fn float_fold_over_hashset_flagged() {
        let src = "fn f(weights: HashSet<u64>) -> f64 {\n\
                   weights.iter().fold(0.0, |a, w| a + *w as f64)\n\
                   }\n";
        let r = scan_source("swift-ft", "f.rs", src);
        assert_eq!(codes(&r), vec![Code::SW004, Code::SW109]);
    }

    #[test]
    fn integer_sum_over_hashmap_is_clean() {
        // Integer addition is associative and commutative: summing in
        // nondeterministic order still yields one stable aggregate, so
        // the dataflow engine treats it as an order-insensitive fold.
        // (The legacy lexical rule flagged this — a known false positive.)
        let src = "struct R { counts: HashMap<u32, u64> }\n\
                   fn total(r: &R) -> u64 { r.counts.values().sum::<u64>() }\n";
        let r = scan_source("swift-scheduler", "r.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(legacy_sw004_lines(src), vec![2], "legacy rule flagged it");
    }

    #[test]
    fn collect_into_btreemap_is_clean() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   impl S {\n\
                   fn snap(&self) -> BTreeMap<u32, u32> {\n\
                   self.m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>()\n\
                   }\n\
                   }\n";
        let r = scan_source("swift-shuffle", "m.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(legacy_sw004_lines(src), vec![4], "legacy rule flagged it");
    }

    #[test]
    fn float_sum_over_ordered_collection_is_fine() {
        let src = "struct R { per_stage: BTreeMap<u32, f64> }\n\
                   fn total(r: &R) -> f64 { r.per_stage.values().sum::<f64>() }\n";
        let r = scan_source("swift-scheduler", "r.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn float_sum_suppression_is_counted() {
        let src = "struct R { m: HashMap<u32, f64> }\n\
                   // swift-analyze: allow(SW004, SW109)\n\
                   fn t(r: &R) -> f64 { r.m.values().sum::<f64>() }\n";
        let r = scan_source("swift-scheduler", "r.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed, 2);
    }

    #[test]
    fn unused_allow_is_reported_as_sw009() {
        let src = "// swift-analyze: allow(SW004)\n\
                   fn f() -> u32 { 1 }\n";
        let r = scan_source("swift-scheduler", "x.rs", src);
        assert_eq!(codes(&r), vec![Code::SW009]);
        assert_eq!(r.diagnostics[0].span.line, 1);
        assert_eq!(r.diagnostics[0].severity, Severity::Warning);
        assert!(r.diagnostics[0].message.contains("SW004"));
    }

    #[test]
    fn used_allow_is_not_reported() {
        let src = "fn f() { std::thread::sleep(d); } // swift-analyze: allow(SW002)\n";
        let r = scan_source("swift-sim", "x.rs", src);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn partially_used_allow_reports_only_the_stale_code() {
        let src = "// swift-analyze: allow(SW001, SW002)\n\
                   fn f() { let _ = Instant::now(); }\n";
        let r = scan_source("swift-sim", "x.rs", src);
        assert_eq!(codes(&r), vec![Code::SW009]);
        assert!(
            r.diagnostics[0].message.contains("SW002"),
            "{}",
            r.diagnostics[0].message
        );
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn foreign_randomness_flagged() {
        let src = "fn f() { let x = rand::random::<u8>(); }\n";
        let r = scan_source("swift-sim", "r.rs", src);
        assert_eq!(codes(&r), vec![Code::SW005]);
    }

    #[test]
    fn pointer_ordering_flagged() {
        let src = "fn f(a: &u32) -> usize { a as *const u32 as usize }\n";
        let r = scan_source("swift-ft", "p.rs", src);
        assert_eq!(codes(&r), vec![Code::SW006]);
    }

    #[test]
    fn same_line_suppression_counts_as_suppressed() {
        let src = "fn f() { std::thread::sleep(d); } // swift-analyze: allow(SW002)\n";
        let r = scan_source("swift-sim", "x.rs", src);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn preceding_line_suppression_works() {
        let src = "// swift-analyze: allow(SW001)\nfn f() { let _ = Instant::now(); }\n";
        let r = scan_source("swift-scheduler", "x.rs", src);
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn suppression_of_wrong_code_does_not_silence() {
        let src = "fn f() { let _ = Instant::now(); } // swift-analyze: allow(SW002)\n";
        let r = scan_source("swift-scheduler", "x.rs", src);
        assert_eq!(codes(&r), vec![Code::SW001, Code::SW009]);
        assert_eq!(r.suppressed, 0);
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn prod() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   use std::collections::HashMap;\n\
                   fn t() { let m: HashMap<u32, u32> = HashMap::new(); for x in &m { g(x); } }\n\
                   fn u() { std::thread::sleep(d); }\n\
                   }\n";
        let r = scan_source("swift-scheduler", "x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn code_after_test_module_is_still_scanned() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\n\
                   fn late() { let _ = Instant::now(); }\n";
        let r = scan_source("swift-sim", "x.rs", src);
        assert_eq!(codes(&r), vec![Code::SW001]);
        assert_eq!(r.diagnostics[0].span.line, 3);
    }

    #[test]
    fn raw_strings_and_lifetimes_lex_cleanly() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n\
                   const S: &str = r#\"Instant::now()\"#;\n";
        let r = scan_source("swift-sim", "x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn crate_inference_from_path() {
        assert_eq!(
            crate_of_path("crates/swift-sim/src/time.rs"),
            Some("swift-sim")
        );
        assert_eq!(
            crate_of_path("/root/repo/crates/swift-ft/src/lib.rs"),
            Some("swift-ft")
        );
        assert_eq!(crate_of_path("src/main.rs"), None);
    }
}
