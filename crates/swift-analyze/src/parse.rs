//! A lightweight parser over the [`crate::lex`] output: a token stream
//! with line numbers, plus just enough item structure — `fn` signatures
//! with body ranges, `struct` fields, `impl` extents, `static`s — for the
//! determinism taint engine ([`crate::taint`]) to resolve names to types
//! and walk function bodies. This is deliberately not a full Rust
//! grammar: the workspace builds offline (no `syn`), and the taint
//! lattice only needs paths, calls, method chains and `let`/`for`/`return`
//! statement shapes.

use std::collections::BTreeMap;

use crate::lex::LineInfo;

/// One token: an identifier/number/lifetime or a punctuation run.
#[derive(Debug, Clone)]
pub(crate) struct Tok {
    /// Token text (`"name"`, `"::"`, `"->"`, `"{"`, ...).
    pub(crate) text: String,
    /// 0-based source line the token starts on.
    pub(crate) line: u32,
    /// True for identifier-like tokens (idents, numbers, `self`, ...).
    pub(crate) is_word: bool,
}

impl Tok {
    pub(crate) fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// Tokenizes lexed lines (comments/strings already blanked) into a flat
/// token stream. Multi-char operators that matter to the parser (`::`,
/// `->`, `=>`, `..`) are single tokens; everything else punctuates per
/// char. Numbers keep an embedded `.` only when it is followed by a digit
/// (`0.0` is one token, `x.0` is three).
pub(crate) fn tokenize(lines: &[LineInfo]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (lineno, li) in lines.iter().enumerate() {
        let chars: Vec<char> = li.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: lineno as u32,
                    is_word: true,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() {
                    let d = chars[i];
                    let in_number = d.is_alphanumeric()
                        || d == '_'
                        || (d == '.'
                            && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                            && !chars[start..i].contains(&'.'));
                    if !in_number {
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: lineno as u32,
                    is_word: true,
                });
                continue;
            }
            if c == '\'' {
                // Lifetime marker survived lexing (`'a`): glue it to the
                // following ident so type parsing can skip it whole.
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: lineno as u32,
                    is_word: false,
                });
                continue;
            }
            let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            if ["::", "->", "=>", ".."].contains(&two.as_str()) {
                toks.push(Tok {
                    text: two,
                    line: lineno as u32,
                    is_word: false,
                });
                i += 2;
                continue;
            }
            toks.push(Tok {
                text: c.to_string(),
                line: lineno as u32,
                is_word: false,
            });
            i += 1;
        }
    }
    toks
}

/// Index of the token matching the opener at `open` (one of `{ ( [ <`),
/// or `toks.len()` if unbalanced. `<` matching is only used for generics
/// and turbofish, where comparison operators cannot appear.
pub(crate) fn match_delim(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "<" => ("<", ">"),
        _ => return open,
    };
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is(o) {
            depth += 1;
        } else if t.is(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len()
}

/// A parsed `fn` item.
#[derive(Debug, Clone)]
pub(crate) struct FnItem {
    pub(crate) name: String,
    /// 0-based line of the `fn` keyword.
    pub(crate) line: u32,
    /// `(name, type-text)` per named parameter (`self` excluded).
    pub(crate) params: Vec<(String, String)>,
    /// Return type text, if any.
    pub(crate) ret: Option<String>,
    /// Token range of the body including its braces, if the fn has one.
    pub(crate) body: Option<(usize, usize)>,
    /// Declared inside an `impl`/`trait` block (has a `self` receiver or
    /// sits in method position).
    pub(crate) is_method: bool,
}

/// A parsed `static` item.
#[derive(Debug, Clone)]
pub(crate) struct StaticItem {
    pub(crate) name: String,
    pub(crate) line: u32,
    pub(crate) ty: String,
    pub(crate) is_mut: bool,
}

/// Everything the taint engine needs from one file.
#[derive(Debug, Default)]
pub(crate) struct ParsedFile {
    pub(crate) toks: Vec<Tok>,
    pub(crate) fns: Vec<FnItem>,
    /// Struct-field name → declared type texts (merged across all structs
    /// in the file; lookups are conservative about collisions).
    pub(crate) fields: BTreeMap<String, Vec<String>>,
    /// 0-based lines of field declarations, for SW008 spans.
    pub(crate) field_lines: BTreeMap<String, Vec<u32>>,
    pub(crate) statics: Vec<StaticItem>,
    /// 0-based lines of `thread_local!` invocations.
    pub(crate) thread_locals: Vec<u32>,
}

/// Renders a token range back to compact type text (`Mutex<HashMap<K,V>>`).
pub(crate) fn type_text(toks: &[Tok]) -> String {
    let mut out = String::new();
    for t in toks {
        if t.is_word
            && out
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

/// Scans forward from `i` over one type, stopping at a top-level token in
/// `stops`. Returns the exclusive end index.
fn skip_type(toks: &[Tok], mut i: usize, stops: &[&str]) -> usize {
    let mut depth = 0i64;
    while i < toks.len() {
        let t = &toks[i].text;
        if depth == 0 && stops.contains(&t.as_str()) {
            return i;
        }
        match t.as_str() {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses items out of a token stream.
pub(crate) fn parse_items(toks: &[Tok]) -> ParsedFile {
    let mut file = ParsedFile::default();
    let mut impl_ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "#" if toks.get(i + 1).is_some_and(|n| n.is("[")) => {
                i = match_delim(toks, i + 1) + 1;
            }
            "struct" => {
                i += 1;
                // Skip name + generics to the body.
                while i < toks.len() && !toks[i].is("{") && !toks[i].is(";") && !toks[i].is("(") {
                    i += 1;
                }
                if i < toks.len() && toks[i].is("{") {
                    let end = match_delim(toks, i);
                    parse_fields(&toks[i + 1..end], toks[i].line, &mut file);
                    i = end + 1;
                } else if i < toks.len() && toks[i].is("(") {
                    i = match_delim(toks, i) + 1;
                }
            }
            "impl" | "trait" => {
                // Find the block; everything inside is method position.
                let mut j = i + 1;
                let mut depth = 0i64;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" | "(" | "[" => depth += 1,
                        ">" | ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j < toks.len() && toks[j].is("{") {
                    impl_ranges.push((j, match_delim(toks, j)));
                }
                i = j + 1;
            }
            "fn" => {
                let is_method = impl_ranges.iter().any(|&(s, e)| i > s && i < e);
                if let Some((item, next)) = parse_fn(toks, i, is_method) {
                    i = next;
                    file.fns.push(item);
                } else {
                    i += 1;
                }
            }
            "static" => {
                let mut j = i + 1;
                let is_mut = toks.get(j).is_some_and(|t| t.is("mut"));
                if is_mut {
                    j += 1;
                }
                if let Some(name_tok) = toks.get(j).filter(|t| t.is_word) {
                    let name = name_tok.text.clone();
                    if toks.get(j + 1).is_some_and(|t| t.is(":")) {
                        let ty_end = skip_type(toks, j + 2, &["=", ";"]);
                        file.statics.push(StaticItem {
                            name,
                            line: t.line,
                            ty: type_text(&toks[j + 2..ty_end]),
                            is_mut,
                        });
                        i = ty_end;
                        continue;
                    }
                }
                i = j + 1;
            }
            "thread_local" if toks.get(i + 1).is_some_and(|n| n.is("!")) => {
                file.thread_locals.push(t.line);
                i += 2;
            }
            _ => i += 1,
        }
    }
    file.toks = toks.to_vec();
    file
}

/// Parses the fields of one struct body (tokens between its braces).
fn parse_fields(body: &[Tok], _line: u32, file: &mut ParsedFile) {
    let mut i = 0usize;
    while i < body.len() {
        // Skip attributes and visibility.
        if body[i].is("#") && body.get(i + 1).is_some_and(|n| n.is("[")) {
            i = match_delim(body, i + 1) + 1;
            continue;
        }
        if body[i].is("pub") {
            i += 1;
            if i < body.len() && body[i].is("(") {
                i = match_delim(body, i) + 1;
            }
            continue;
        }
        if body[i].is_word && body.get(i + 1).is_some_and(|n| n.is(":")) {
            let name = body[i].text.clone();
            let line = body[i].line;
            let ty_end = skip_type(body, i + 2, &[","]);
            let ty = type_text(&body[i + 2..ty_end]);
            file.fields.entry(name.clone()).or_default().push(ty);
            file.field_lines.entry(name).or_default().push(line);
            i = ty_end + 1;
            continue;
        }
        i += 1;
    }
}

/// Parses one `fn` starting at the `fn` keyword; returns the item and the
/// token index to resume at (past the body or terminating `;`).
fn parse_fn(toks: &[Tok], fn_idx: usize, is_method: bool) -> Option<(FnItem, usize)> {
    let name_tok = toks.get(fn_idx + 1)?;
    if !name_tok.is_word {
        return None;
    }
    let mut i = fn_idx + 2;
    if toks.get(i).is_some_and(|t| t.is("<")) {
        i = match_delim(toks, i) + 1;
    }
    if !toks.get(i).is_some_and(|t| t.is("(")) {
        return None;
    }
    let params_end = match_delim(toks, i);
    let params = parse_params(&toks[i + 1..params_end]);
    let has_self = toks[i + 1..params_end].iter().any(|t| t.is("self"));
    i = params_end + 1;
    let mut ret = None;
    if toks.get(i).is_some_and(|t| t.is("->")) {
        let ty_end = skip_type(toks, i + 1, &["{", ";", "where"]);
        ret = Some(type_text(&toks[i + 1..ty_end]));
        i = ty_end;
    }
    if toks.get(i).is_some_and(|t| t.is("where")) {
        while i < toks.len() && !toks[i].is("{") && !toks[i].is(";") {
            // Skip over delimited groups inside the where clause.
            if ["<", "(", "["].contains(&toks[i].text.as_str()) {
                i = match_delim(toks, i);
            }
            i += 1;
        }
    }
    let body = if toks.get(i).is_some_and(|t| t.is("{")) {
        let end = match_delim(toks, i);
        let b = (i, end);
        i = end + 1;
        Some(b)
    } else {
        i += 1;
        None
    };
    Some((
        FnItem {
            name: name_tok.text.clone(),
            line: toks[fn_idx].line,
            params,
            ret,
            body,
            is_method: is_method || has_self,
        },
        i,
    ))
}

/// Parses `name: Type` pairs out of a parameter list (self receivers and
/// pattern params are skipped).
fn parse_params(toks: &[Tok]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let start = i;
        let end = skip_type(toks, i, &[","]);
        // A simple `name: Type` param: optional `mut`, ident, colon.
        let mut j = start;
        if toks.get(j).is_some_and(|t| t.is("mut")) {
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_word && !t.is("self"))
            && toks.get(j + 1).is_some_and(|t| t.is(":"))
        {
            out.push((
                toks[j].text.clone(),
                type_text(&toks[j + 2..end.min(toks.len())]),
            ));
        }
        i = end + 1;
    }
    out
}

// ---- type classification ----

/// Wrappers the analysis sees through when deciding what a value really
/// is: `Mutex<HashMap<..>>` is still an unordered map for ordering
/// purposes — `.lock()` hands out the same container.
const TRANSPARENT_WRAPPERS: [&str; 15] = [
    "Option",
    "Some",
    "Box",
    "Rc",
    "Arc",
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "MutexGuard",
    "Ref",
    "RefMut",
    "Pin",
    "ManuallyDrop",
];

/// Interior-mutability markers for the SW008 shard-safety lint.
const INTERIOR_MUTABLE: [&str; 6] = [
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "Condvar",
];

/// What a type means for the order-taint lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TypeClass {
    /// `HashMap`/`HashSet` (possibly behind transparent wrappers):
    /// iterating it is an order-taint source.
    Unordered,
    /// Deterministically ordered container (`BTreeMap`, `Vec`, ...).
    Ordered,
    /// Anything else.
    Other,
}

/// Classifies a type text by peeling transparent wrappers down to the
/// head container.
pub(crate) fn classify_type(ty: &str) -> TypeClass {
    let mut head = ty;
    for _ in 0..8 {
        let Some(h) = head_segment(head) else {
            return TypeClass::Other;
        };
        match h.0.as_str() {
            "HashMap" | "HashSet" => return TypeClass::Unordered,
            "BTreeMap" | "BTreeSet" | "Vec" | "VecDeque" | "BinaryHeap" | "String" => {
                return TypeClass::Ordered
            }
            w if TRANSPARENT_WRAPPERS.contains(&w) => match h.1 {
                Some(inner) => head = inner,
                None => return TypeClass::Other,
            },
            _ => return TypeClass::Other,
        }
    }
    TypeClass::Other
}

/// True if the type (at any nesting depth) contains an interior-mutability
/// marker or an atomic — the SW008 trigger.
pub(crate) fn is_interior_mutable(ty: &str) -> bool {
    ident_tokens(ty)
        .iter()
        .any(|w| INTERIOR_MUTABLE.contains(&w.as_str()) || w.starts_with("Atomic"))
}

/// Splits type text into its identifier tokens.
fn ident_tokens(ty: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in ty.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The head path segment of a type text plus the text of its first
/// generic argument, e.g. `Mutex<HashMap<K,V>>` → (`Mutex`,
/// `Some("HashMap<K,V>")`). References, `dyn`/`impl` and lifetimes are
/// skipped.
fn head_segment(ty: &str) -> Option<(String, Option<&str>)> {
    let mut rest = ty.trim_start();
    loop {
        rest = rest.trim_start();
        if let Some(s) = rest.strip_prefix('&') {
            rest = s;
            continue;
        }
        for kw in ["mut ", "dyn ", "impl "] {
            if let Some(s) = rest.strip_prefix(kw) {
                rest = s;
            }
        }
        if rest.starts_with('\'') {
            let end = rest
                .char_indices()
                .skip(1)
                .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            rest = &rest[end..];
            continue;
        }
        break;
    }
    // Read path segments up to `<` / end; head is the last segment.
    let mut head = String::new();
    let mut chars = rest.char_indices().peekable();
    let mut angle_at = None;
    while let Some((i, c)) = chars.next() {
        if c.is_alphanumeric() || c == '_' {
            head.push(c);
        } else if c == ':' && matches!(chars.peek(), Some((_, ':'))) {
            chars.next();
            head.clear();
        } else if c == '<' {
            angle_at = Some(i);
            break;
        } else {
            break;
        }
    }
    if head.is_empty() {
        return None;
    }
    let inner = angle_at.map(|i| {
        let inner = &rest[i + 1..];
        // First top-level generic argument.
        let mut depth = 0i64;
        let mut end = inner.len();
        for (j, c) in inner.char_indices() {
            match c {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => {
                    if depth == 0 {
                        end = j;
                        break;
                    }
                    depth -= 1;
                }
                ',' if depth == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
        }
        inner[..end].trim()
    });
    Some((head, inner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_items(&tokenize(&lex(src)))
    }

    #[test]
    fn tokenizer_handles_numbers_and_chains() {
        let toks = tokenize(&lex("let x = 0.0; m.0.fold(1_000, f)"));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "let", "x", "=", "0.0", ";", "m", ".", "0", ".", "fold", "(", "1_000", ",", "f",
                ")"
            ]
        );
    }

    #[test]
    fn fn_signature_and_body_parsed() {
        let f = parse("fn total(r: &Report, n: usize) -> f64 { 0.0 }\n");
        assert_eq!(f.fns.len(), 1);
        let item = &f.fns[0];
        assert_eq!(item.name, "total");
        assert_eq!(item.params.len(), 2);
        assert_eq!(item.params[0], ("r".to_string(), "&Report".to_string()));
        assert_eq!(item.ret.as_deref(), Some("f64"));
        assert!(item.body.is_some());
        assert!(!item.is_method);
    }

    #[test]
    fn methods_and_fields_parsed() {
        let f = parse(
            "struct S { state: Mutex<HashMap<u64, u64>>, n: u32 }\n\
             impl S {\n  fn get(&self) -> u32 { self.n }\n}\n",
        );
        assert_eq!(f.fields["state"], vec!["Mutex<HashMap<u64,u64>>"]);
        assert_eq!(f.fields["n"], vec!["u32"]);
        assert_eq!(f.fns.len(), 1);
        assert!(f.fns[0].is_method);
    }

    #[test]
    fn statics_parsed_with_mut_flag() {
        let f = parse("static COUNTER: AtomicU64 = AtomicU64::new(0);\nstatic mut RAW: u64 = 0;\n");
        assert_eq!(f.statics.len(), 2);
        assert_eq!(f.statics[0].name, "COUNTER");
        assert_eq!(f.statics[0].ty, "AtomicU64");
        assert!(!f.statics[0].is_mut);
        assert!(f.statics[1].is_mut);
    }

    #[test]
    fn type_classification_peels_wrappers() {
        assert_eq!(classify_type("HashMap<u32, u32>"), TypeClass::Unordered);
        assert_eq!(
            classify_type("Mutex<HashMap<SegmentKey, Bytes>>"),
            TypeClass::Unordered
        );
        assert_eq!(
            classify_type("Rc<RefCell<HashSet<u64>>>"),
            TypeClass::Unordered
        );
        assert_eq!(classify_type("&'a mut HashMap<K, V>"), TypeClass::Unordered);
        assert_eq!(
            classify_type("std::collections::HashMap<K, V>"),
            TypeClass::Unordered
        );
        assert_eq!(classify_type("BTreeMap<u32, u32>"), TypeClass::Ordered);
        assert_eq!(classify_type("Vec<HashMap<u32, u32>>"), TypeClass::Ordered);
        assert_eq!(
            classify_type("Option<&HashMap<K, V>>"),
            TypeClass::Unordered
        );
        assert_eq!(classify_type("u64"), TypeClass::Other);
    }

    #[test]
    fn interior_mutability_detected() {
        assert!(is_interior_mutable("Mutex<StoreState>"));
        assert!(is_interior_mutable("Rc<RefCell<RecorderState>>"));
        assert!(is_interior_mutable("AtomicU64"));
        assert!(is_interior_mutable("sync::Mutex<T>"));
        assert!(!is_interior_mutable("MutexGuardLike"));
        assert!(!is_interior_mutable("BTreeMap<u32, Vec<u8>>"));
    }
}
