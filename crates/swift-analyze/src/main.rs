//! The `swift-analyze` binary: thin wrapper over [`swift_analyze::run_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(swift_analyze::run_cli(&args) as u8)
}
