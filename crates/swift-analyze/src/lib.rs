//! `swift-analyze` — dual-pass static analysis for the Swift workspace.
//!
//! * **Pass 1** ([`source`]): determinism lints over the sim-facing crates'
//!   Rust source — lexical rules (`SW001`–`SW003`, `SW005`, `SW006`) plus
//!   the dataflow-aware determinism taint engine ([`taint`]) with
//!   cross-function summaries ([`summary`]) for order-taint findings
//!   (`SW004`, `SW007`, `SW109`), shard-safety (`SW008`) and stale
//!   suppressions (`SW009`);
//! * **Pass 2** ([`plan`]): structural validation of DAGs, graphlet
//!   partitions, shuffle-scheme choices, recovery plans and
//!   scheduling-template instantiation (`SW100`–`SW108`, `SW110`),
//!   including the `.dag` fixture format ([`dagfile`]).
//!
//! Both passes share one diagnostics engine ([`diag`]) and one CLI
//! ([`run_cli`]) that also backs the `swift-sql-shell analyze` subcommand.
//! The chaos harness reuses the pass-2 validators as a pre-flight before
//! every campaign seed.

pub mod dagfile;
pub mod diag;
mod lex;
mod parse;
pub mod plan;
pub mod source;
mod summary;
mod taint;

pub use dagfile::validate_dag_file;
pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use plan::{
    validate_gang, validate_partition, validate_plan_versions, validate_recovery_plan_shape,
    validate_schemes, validate_schemes_sized, validate_template_roundtrip, SpanMap,
};
pub use source::{
    legacy_sw004_lines, scan_source, DETERMINISM_SENSITIVE_CRATES, SIM_FACING_CRATES,
};

use std::path::{Path, PathBuf};
use swift_dag::{partition, JobDag, StageId};
use swift_shuffle::{AdaptiveThresholds, ShuffleScheme};

/// Walks up from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// scan order.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Pass 1 over the workspace: scans `crates/<crate>/src/**/*.rs` for every
/// determinism-sensitive crate under `root`. Cross-function summaries are
/// built over *all* scanned files first, so taint flows through helpers
/// across module and crate boundaries.
pub fn analyze_source_tree(root: &Path) -> Report {
    let mut prepared: Vec<(&str, String, summary::PreparedFile)> = Vec::new();
    for krate in DETERMINISM_SENSITIVE_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        rs_files(&src_dir, &mut files);
        for file in files {
            let Ok(content) = std::fs::read_to_string(&file) else {
                continue;
            };
            let label = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            prepared.push((krate, label, summary::prepare(&content)));
        }
    }
    let summaries =
        summary::build_summaries(&prepared.iter().map(|(_, _, f)| f).collect::<Vec<_>>());
    let mut report = Report::default();
    for (krate, label, file) in &prepared {
        report.merge(source::scan_prepared(krate, label, file, &summaries));
    }
    report
}

/// The built-in workload DAGs pass 2 audits when run with `--workspace`:
/// a representative TPC-H slice plus TeraSort.
pub fn builtin_dags() -> Vec<JobDag> {
    let mut dags: Vec<JobDag> = [1usize, 3, 5, 9, 13, 18]
        .iter()
        .map(|&q| swift_workload::tpch_sim_dag(q, q as u64))
        .collect();
    dags.push(swift_workload::terasort_dag(100, 40, 40, 64 << 20));
    dags
}

/// Validates one in-memory DAG the way the Swift policy would run it: the
/// library partition as the claimed partition, adaptive scheme selection
/// (with the barrier-edge Remote promotion) as the claimed schemes, and
/// the SW110 template roundtrip (a plan instantiated from the
/// scheduling-template cache must equal from-scratch planning).
pub fn analyze_dag(dag: &JobDag) -> Report {
    let spans = SpanMap::object(format!("dag:{}", dag.name));
    let claimed: Vec<Vec<StageId>> = partition(dag)
        .graphlets()
        .iter()
        .map(|g| g.stages.clone())
        .collect();
    let mut report = validate_partition(dag, &claimed, &spans);
    let thresholds = AdaptiveThresholds::default();
    let schemes: Vec<(usize, ShuffleScheme)> = dag
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let mut s = thresholds.select(dag.edge_shuffle_size(e));
            if e.kind == swift_dag::EdgeKind::Barrier && !s.uses_cache_worker() {
                s = ShuffleScheme::Remote;
            }
            (i, s)
        })
        .collect();
    report.merge(validate_schemes(dag, &schemes, thresholds, &spans));
    report.merge(validate_template_roundtrip(
        dag,
        &swift_scheduler::PolicyConfig::swift(),
        &[],
        &spans,
    ));
    report
}

/// Runs both passes over the workspace at `root`.
pub fn analyze_workspace(root: &Path) -> Report {
    let mut report = analyze_source_tree(root);
    for dag in builtin_dags() {
        report.merge(analyze_dag(&dag));
    }
    report.sort();
    report
}

/// Output format for [`run_cli`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

const USAGE: &str = "usage: swift-analyze [--workspace] [--root DIR] [--deny-warnings] \
                     [--deny-unused-allows] [--time-budget-ms N] \
                     [--format text|json] [--list-codes] [PATH...]\n\
                     \n\
                     PATHs may be .rs files (pass 1, crate inferred from crates/<name>/) \
                     or .dag files (pass 2).\n\
                     --deny-unused-allows fails the run on stale SW009 suppressions; \
                     --time-budget-ms fails it when analysis wall time exceeds N ms (CI \
                     latency guard).";

/// Shared CLI driver for the `swift-analyze` binary and the
/// `swift-sql-shell analyze` subcommand. Returns the process exit code:
/// `0` clean, `1` diagnostics failed the run, `2` usage error.
pub fn run_cli(args: &[String]) -> i32 {
    let started = std::time::Instant::now();
    let mut workspace = false;
    let mut deny_warnings = false;
    let mut deny_unused_allows = false;
    let mut time_budget_ms: Option<u64> = None;
    let mut format = Format::Text;
    let mut root_override: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny-warnings" => deny_warnings = true,
            "--deny-unused-allows" => deny_unused_allows = true,
            "--time-budget-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => time_budget_ms = Some(ms),
                None => {
                    eprintln!("swift-analyze: --time-budget-ms needs an integer value\n{USAGE}");
                    return 2;
                }
            },
            "--root" => match it.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("swift-analyze: --root needs a value\n{USAGE}");
                    return 2;
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "swift-analyze: --format must be text or json (got {other:?})\n{USAGE}"
                    );
                    return 2;
                }
            },
            "--list-codes" => {
                for c in Code::ALL {
                    println!("{}  {:<7}  {}", c, c.severity(), c.description());
                }
                return 0;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            flag if flag.starts_with('-') => {
                eprintln!("swift-analyze: unknown flag {flag:?}\n{USAGE}");
                return 2;
            }
            path => paths.push(path.to_string()),
        }
    }
    if !workspace && paths.is_empty() {
        eprintln!("swift-analyze: nothing to do (pass --workspace or PATHs)\n{USAGE}");
        return 2;
    }

    let mut report = Report::default();
    if workspace {
        let root = match root_override.clone().or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| find_workspace_root(&d))
        }) {
            Some(r) => r,
            None => {
                eprintln!("swift-analyze: cannot locate the workspace root (try --root DIR)");
                return 2;
            }
        };
        report.merge(analyze_workspace(&root));
    }
    for path in &paths {
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("swift-analyze: cannot read {path}: {e}");
                return 2;
            }
        };
        if path.ends_with(".dag") {
            report.merge(validate_dag_file(path, &content));
        } else {
            let krate = source::crate_of_path(path)
                .unwrap_or("swift-sim")
                .to_string();
            report.merge(scan_source(&krate, path, &content));
        }
    }
    report.sort();

    match format {
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}", d.render_human());
            }
            println!(
                "swift-analyze: {} file(s) scanned, {} object(s) checked, {} error(s), \
                 {} warning(s), {} suppressed",
                report.files_scanned,
                report.objects_checked,
                report.error_count(),
                report.warning_count(),
                report.suppressed
            );
        }
        Format::Json => {
            let items: Vec<String> = report
                .diagnostics
                .iter()
                .map(Diagnostic::render_json)
                .collect();
            println!(
                "{{\"diagnostics\":[{}],\"errors\":{},\"warnings\":{},\"suppressed\":{},\
                 \"files_scanned\":{},\"objects_checked\":{}}}",
                items.join(","),
                report.error_count(),
                report.warning_count(),
                report.suppressed,
                report.files_scanned,
                report.objects_checked
            );
        }
    }
    let stale_allows =
        deny_unused_allows && report.diagnostics.iter().any(|d| d.code == Code::SW009);
    if stale_allows {
        eprintln!("swift-analyze: stale suppressions present (SW009) and --deny-unused-allows set");
    }
    let elapsed_ms = started.elapsed().as_millis() as u64;
    let over_budget = time_budget_ms.is_some_and(|budget| elapsed_ms > budget);
    if over_budget {
        eprintln!(
            "swift-analyze: analysis took {elapsed_ms} ms, over the --time-budget-ms {} guard",
            time_budget_ms.unwrap_or(0)
        );
    }
    if report.failed(deny_warnings) || stale_allows || over_budget {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_dags_are_clean_under_pass2() {
        for dag in builtin_dags() {
            let r = analyze_dag(&dag);
            assert!(
                r.diagnostics.is_empty(),
                "dag {} raised {:?}",
                dag.name,
                r.diagnostics
            );
        }
    }

    #[test]
    fn workspace_root_is_found_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn workspace_analysis_reports_no_unsuppressed_errors() {
        // The acceptance bar for the whole PR: the analyzer over the live
        // workspace is clean.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let report = analyze_workspace(&root);
        assert!(
            report.diagnostics.is_empty(),
            "workspace has unsuppressed diagnostics:\n{}",
            report
                .diagnostics
                .iter()
                .map(Diagnostic::render_human)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            report.files_scanned > 10,
            "scanned {}",
            report.files_scanned
        );
        assert!(report.objects_checked > 5);
    }
}
