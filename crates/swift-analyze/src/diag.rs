//! The shared diagnostics engine: error codes, severities, spans,
//! suppression accounting and human/machine rendering.
//!
//! Both passes — the source lints ([`crate::source`]: `SW001`–`SW006`
//! plus `SW109`) and the plan/DAG validator ([`crate::plan`]:
//! `SW100`–`SW108` plus `SW110`) — emit [`Diagnostic`]s
//! through this module so CLI output, suppression handling and exit-code
//! policy are identical everywhere the analyzer is embedded (the
//! `swift-analyze` binary, `swift-cli analyze`, and the chaos pre-flight).

use std::fmt;

/// Every diagnostic the analyzer can produce. `SW001`–`SW006` and
/// `SW109` come from the source-lint pass, `SW100`–`SW108` and `SW110`
/// from the plan/DAG validator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Wall-clock time source (`Instant::now`, `SystemTime`) in a
    /// sim-facing crate.
    SW001,
    /// `std::thread` use in a sim-facing crate.
    SW002,
    /// Environment read (`env::var*`) in a sim-facing crate.
    SW003,
    /// Iteration over a `HashMap`/`HashSet` in a determinism-sensitive
    /// crate (must sort or use an ordered collection).
    SW004,
    /// Randomness that does not flow through `SimRng`.
    SW005,
    /// Address/pointer-based ordering or keying.
    SW006,
    /// An order-tainted value (produced by unordered iteration, a wall
    /// clock, an env read or pointer ordering — possibly laundered through
    /// bindings, method chains or helper returns) reaches a determinism
    /// sink: event scheduling, a digest/hash update or trace emission.
    /// The diagnostic carries the source→sink step trace.
    SW007,
    /// Shared mutable state (interior mutability: `Mutex`, `RwLock`,
    /// `RefCell`, `Cell`, `UnsafeCell`, atomics — or a `static mut`-like
    /// global) declared in a crate on the `Simulation` step path. A
    /// sharded event loop (ROADMAP item 4) cannot prove exclusive access
    /// across shard boundaries for such state.
    SW008,
    /// A `swift-analyze: allow(SWxxx)` suppression that matched no
    /// diagnostic — stale after the underlying finding was fixed, or
    /// mistargeted. Not itself suppressible.
    SW009,
    /// DAG fails basic structural validation (cycle, self-loop,
    /// duplicate edge, zero tasks, unknown stage, parse error).
    SW100,
    /// A stage is not assigned to exactly one graphlet.
    SW101,
    /// A pipeline edge crosses graphlets (only barrier edges may).
    SW102,
    /// The graphlet quotient graph is cyclic (scheduler would deadlock).
    SW103,
    /// A graphlet's gang exceeds the declared cluster size (degrades to
    /// wave-mode scheduling).
    SW104,
    /// Shuffle scheme choice inconsistent with the adaptive thresholds.
    SW105,
    /// Recovery plan references a task version the ledger never saw, or a
    /// superseded version with no regeneration scheduled.
    SW106,
    /// Direct Shuffle selected on a barrier edge (barrier data must be
    /// staged in a Cache Worker).
    SW107,
    /// Recovery plan structurally malformed (abort with work attached,
    /// unsorted/duplicate rerun set, out-of-bounds task references).
    SW108,
    /// Float summation over unordered iteration in report aggregation
    /// (a pass-1 source lint, numbered after the validators it was added
    /// behind): float addition is not associative, so summing over a
    /// `HashMap`/`HashSet` changes the aggregate bitwise run-to-run even
    /// when the visited *set* is identical.
    SW109,
    /// A plan instantiated from the scheduling-template cache diverges
    /// from from-scratch planning (partition, unit plan or scheme
    /// priors), or the canonical signature fails to unify two
    /// equal-shape DAGs.
    SW110,
}

impl Code {
    /// All codes, in numeric order.
    pub const ALL: [Code; 20] = [
        Code::SW001,
        Code::SW002,
        Code::SW003,
        Code::SW004,
        Code::SW005,
        Code::SW006,
        Code::SW007,
        Code::SW008,
        Code::SW009,
        Code::SW100,
        Code::SW101,
        Code::SW102,
        Code::SW103,
        Code::SW104,
        Code::SW105,
        Code::SW106,
        Code::SW107,
        Code::SW108,
        Code::SW109,
        Code::SW110,
    ];

    /// Stable textual name (`"SW001"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::SW001 => "SW001",
            Code::SW002 => "SW002",
            Code::SW003 => "SW003",
            Code::SW004 => "SW004",
            Code::SW005 => "SW005",
            Code::SW006 => "SW006",
            Code::SW007 => "SW007",
            Code::SW008 => "SW008",
            Code::SW009 => "SW009",
            Code::SW100 => "SW100",
            Code::SW101 => "SW101",
            Code::SW102 => "SW102",
            Code::SW103 => "SW103",
            Code::SW104 => "SW104",
            Code::SW105 => "SW105",
            Code::SW106 => "SW106",
            Code::SW107 => "SW107",
            Code::SW108 => "SW108",
            Code::SW109 => "SW109",
            Code::SW110 => "SW110",
        }
    }

    /// Parses `"SW004"` (case-insensitive) back into a code.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL
            .iter()
            .copied()
            .find(|c| c.as_str().eq_ignore_ascii_case(s.trim()))
    }

    /// Default severity. Everything is an error except gang-size overflow
    /// (which the scheduler tolerates by degrading to wave mode) and
    /// unused suppressions (hygiene, escalated by `--deny-unused-allows`).
    pub fn severity(self) -> Severity {
        match self {
            Code::SW104 | Code::SW009 => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line description for `--list-codes` and the README table.
    pub fn description(self) -> &'static str {
        match self {
            Code::SW001 => "wall-clock time source (Instant/SystemTime) in a sim-facing crate",
            Code::SW002 => "std::thread use in a sim-facing crate",
            Code::SW003 => "environment read (env::var*) in a sim-facing crate",
            Code::SW004 => "HashMap/HashSet iteration in a determinism-sensitive crate",
            Code::SW005 => "randomness not drawn from SimRng",
            Code::SW006 => "address/pointer-based ordering or keying",
            Code::SW007 => {
                "order-tainted value reaches a determinism sink (scheduling, digest, trace)"
            }
            Code::SW008 => "shared mutable state (interior mutability/static) on the sim step path",
            Code::SW009 => "swift-analyze: allow(...) suppression that matched no diagnostic",
            Code::SW100 => {
                "malformed DAG (cycle, self-loop, duplicate edge, zero tasks, parse error)"
            }
            Code::SW101 => "stage not assigned to exactly one graphlet",
            Code::SW102 => "pipeline edge crosses graphlets",
            Code::SW103 => "graphlet quotient graph is cyclic",
            Code::SW104 => "graphlet gang exceeds declared cluster size (wave-mode degradation)",
            Code::SW105 => "shuffle scheme inconsistent with adaptive thresholds",
            Code::SW106 => "recovery plan references an unknown or superseded task version",
            Code::SW107 => "Direct Shuffle on a barrier edge (data must be staged)",
            Code::SW108 => "recovery plan structurally malformed",
            Code::SW109 => {
                "float summation over unordered HashMap/HashSet iteration (order-dependent result)"
            }
            Code::SW110 => "template-instantiated plan diverges from from-scratch planning",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but tolerated (exit 0 unless `--deny-warnings`).
    Warning,
    /// Definite violation; the analyzer exits non-zero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where a diagnostic points. `line == 0` means "the whole object" (used
/// for in-memory domain objects that have no source text).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// File path, or a logical name like `dag:tpch-q9` for in-memory
    /// objects.
    pub file: String,
    /// 1-based line; 0 = whole object.
    pub line: u32,
}

impl Span {
    /// Span covering a whole in-memory object.
    pub fn object(name: impl Into<String>) -> Span {
        Span {
            file: name.into(),
            line: 0,
        }
    }

    /// Span at `file:line`.
    pub fn at(file: impl Into<String>, line: u32) -> Span {
        Span {
            file: file.into(),
            line,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.file)
        } else {
            write!(f, "{}:{}", self.file, self.line)
        }
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: Code,
    /// Severity (normally [`Code::severity`]).
    pub severity: Severity,
    /// Where.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic with the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
        }
    }

    /// Renders the rustc-style human form.
    pub fn render_human(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}",
            self.severity, self.code, self.message, self.span
        )
    }

    /// Renders one machine-readable JSON object (no external deps, so the
    /// encoder is hand-rolled; strings are escaped per RFC 8259).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.code,
            self.severity,
            escape_json(&self.span.file),
            self.span.line,
            escape_json(&self.message)
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Accumulated result of an analyzer run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics silenced by `swift-analyze: allow(...)` comments.
    pub suppressed: usize,
    /// Source files scanned by pass 1.
    pub files_scanned: usize,
    /// Domain objects (DAGs, partitions, plans) checked by pass 2.
    pub objects_checked: usize,
}

impl Report {
    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
        self.suppressed += other.suppressed;
        self.files_scanned += other.files_scanned;
        self.objects_checked += other.objects_checked;
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether the run should fail: any error, or any warning when
    /// `deny_warnings` is set.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.error_count() > 0 || (deny_warnings && self.warning_count() > 0)
    }

    /// Sorts diagnostics by span then code, for stable output.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.span, a.code, &a.message).cmp(&(&b.span, b.code, &b.message)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_have_metadata() {
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            assert!(!c.description().is_empty());
        }
        assert_eq!(Code::parse("sw004"), Some(Code::SW004));
        assert_eq!(Code::parse("SW999"), None);
    }

    #[test]
    fn only_gang_overflow_and_unused_allows_are_warnings() {
        for c in Code::ALL {
            let expect = if c == Code::SW104 || c == Code::SW009 {
                Severity::Warning
            } else {
                Severity::Error
            };
            assert_eq!(c.severity(), expect, "{c}");
        }
    }

    #[test]
    fn human_and_json_rendering() {
        let d = Diagnostic::new(
            Code::SW001,
            Span::at("crates/swift-sim/src/lib.rs", 7),
            "Instant::now() in sim code",
        );
        assert_eq!(
            d.render_human(),
            "error[SW001]: Instant::now() in sim code\n  --> crates/swift-sim/src/lib.rs:7"
        );
        assert_eq!(
            d.render_json(),
            "{\"code\":\"SW001\",\"severity\":\"error\",\"file\":\"crates/swift-sim/src/lib.rs\",\
             \"line\":7,\"message\":\"Instant::now() in sim code\"}"
        );
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let d = Diagnostic::new(Code::SW100, Span::object("x"), "bad \"name\"\nline");
        assert!(d.render_json().contains("bad \\\"name\\\"\\nline"));
    }

    #[test]
    fn object_spans_render_without_line() {
        assert_eq!(Span::object("dag:tpch-q9").to_string(), "dag:tpch-q9");
        assert_eq!(Span::at("f.rs", 3).to_string(), "f.rs:3");
    }

    #[test]
    fn report_failure_policy() {
        let mut r = Report::default();
        assert!(!r.failed(true));
        r.diagnostics
            .push(Diagnostic::new(Code::SW104, Span::object("g"), "big gang"));
        assert!(!r.failed(false));
        assert!(r.failed(true));
        r.diagnostics.push(Diagnostic::new(
            Code::SW101,
            Span::object("g"),
            "unassigned",
        ));
        assert!(r.failed(false));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
    }
}
